//! Match-making **without broadcast** (§2.2's closing pointer to
//! Mullender & Vitányi, "Distributed Match-Making for Processes in
//! Computer Networks", 1984).
//!
//! On networks with no broadcast, LOCATE cannot flood. Instead a set of
//! well-known **rendezvous nodes** is agreed on; a server *posts*
//! (port → my machine) at the node selected by hashing the port, and a
//! client *queries* the same node — both sides hash to the same place,
//! so they meet without any global search. (The cited paper's √n grid
//! generalises this to posting at a row and querying a column; with a
//! single hash-selected node per port the meeting set is a singleton,
//! which suffices to reproduce the mechanism.)
//!
//! ```text
//! server ── Post(P) ──► node[h(P)]  ◄── Locate(P) ── client
//! ```
//!
//! # Replica sets (the cluster registry)
//!
//! Since the cluster subsystem a node stores a **set** of registrations
//! per port: each replica of a service posts `(port, my machine, my
//! load)` with [`Matchmaker::post_load`] and withdraws with
//! [`Matchmaker::unpost`]. A plain `LOCATE` is still answered with the
//! single least-loaded replica (the frozen v0 exchange), while
//! `LOCATE_ALL` returns the whole live set in one
//! `LOCATE_REPLY_MULTI` frame — see `docs/PROTOCOL.md`, "Cluster
//! frames". Client-side, resolved sets land in a
//! [`ReplicaCache`] shared with the broadcast
//! [`Locator`](crate::Locator), including its
//! invalidate-on-transport-error path.
//!
//! # Demultiplexing
//!
//! A LOCATE query claims a fresh private reply port and matches the
//! answering `LOCATE_REPLY` by `(reply port, queried port)` — the same
//! private-reply-port discipline the RPC client uses for transactions
//! (and, with a batch id added to the key, for batch transactions; see
//! `docs/PROTOCOL.md`, "Demultiplexing keys"). Stale or foreign
//! packets on the reply port are ignored, not errors: ports are cheap
//! and noise is expected on a broadcast medium.

use crate::frame::{Frame, ReplicaInfo, MAX_LOCATE_REPLICAS};
use crate::locate::{PlacementPolicy, Replica, ReplicaCache};
use amoeba_net::{Endpoint, Header, MachineId, Port, RecvError, Timestamp};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running rendezvous node: stores per-port replica registrations and
/// answers unicast LOCATE / LOCATE_ALL queries for them.
///
/// Registrations are **leases**: a registration not refreshed (by
/// re-posting) within the node's TTL is dropped, so a replica that
/// crashes without an `UNPOST` eventually disappears from answers
/// instead of being handed out forever. Live replicas under a changing
/// load re-post anyway; idle ones must re-post at least once per TTL.
#[derive(Debug)]
pub struct RendezvousNode {
    service_port: Port,
    /// For waking the reactor-parked node thread at shutdown.
    reactor: Arc<amoeba_net::Reactor>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RendezvousNode {
    /// Default registration lease. Generous next to the clients' cache
    /// TTL: expiry here is the backstop for crashed replicas (clients
    /// drop them faster by invalidating on timeout), not the primary
    /// liveness signal.
    pub const REGISTRATION_TTL: Duration = Duration::from_secs(30);

    /// Binds `get_port` on `endpoint` and serves registrations and
    /// queries on a background thread, with the default
    /// [`REGISTRATION_TTL`](Self::REGISTRATION_TTL).
    pub fn spawn(endpoint: Endpoint, get_port: Port) -> RendezvousNode {
        Self::spawn_with_ttl(endpoint, get_port, Self::REGISTRATION_TTL)
    }

    /// Like [`spawn`](Self::spawn) with an explicit registration lease.
    pub fn spawn_with_ttl(endpoint: Endpoint, get_port: Port, ttl: Duration) -> RendezvousNode {
        let service_port = endpoint.claim(get_port);
        let reactor = Arc::clone(endpoint.reactor());
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            // port → (machine → (advertised load, lease refresh time)).
            // The registration binds the *source* machine —
            // unforgeable, so nobody can register a port at somebody
            // else's address... or rather, they can only divert lookups
            // to themselves, which the port system already defends
            // (knowing where a put-port lives does not let you claim
            // it).
            // Lease bookkeeping runs on the network's timeline (the
            // reactor clock), so registration expiry is exercised in
            // virtual time exactly like every other cluster timer.
            let mut registry: HashMap<Port, BTreeMap<MachineId, (u32, Timestamp)>> = HashMap::new();
            let live = |registry: &mut HashMap<Port, BTreeMap<MachineId, (u32, Timestamp)>>,
                        port: Port,
                        now: Timestamp|
             -> Option<Vec<(MachineId, u32)>> {
                let set = registry.get_mut(&port)?;
                set.retain(|_, &mut (_, at)| now.saturating_duration_since(at) <= ttl);
                if set.is_empty() {
                    registry.remove(&port);
                    return None;
                }
                Some(set.iter().map(|(&m, &(l, _))| (m, l)).collect())
            };
            let mut last_sweep = endpoint.now();
            while !stop.load(Ordering::Relaxed) {
                // Periodic full sweep: lazy pruning on lookups alone
                // would let registrations for never-queried ports
                // accumulate without bound (a hostile poster streaming
                // POSTs for distinct ports, or ordinary churn of
                // short-lived services nobody resolves).
                let sweep_now = endpoint.now();
                if sweep_now.saturating_duration_since(last_sweep) > ttl {
                    registry.retain(|_, set| {
                        set.retain(|_, &mut (_, at)| {
                            sweep_now.saturating_duration_since(at) <= ttl
                        });
                        !set.is_empty()
                    });
                    last_sweep = sweep_now;
                }
                // Event-parked under the virtual clock (a re-arming
                // 20 ms poll tick would hand the idle virtual timeline
                // a sleeper ladder to climb); bounded poll on the wall
                // clock so the shutdown flag is still observed.
                let reactor = endpoint.reactor();
                let pkt = if reactor.is_virtual() {
                    enum Wake {
                        Packet(amoeba_net::Packet),
                        Cancelled,
                    }
                    let woke = reactor.park_until(None, || {
                        if stop.load(Ordering::Relaxed) {
                            return Some(Wake::Cancelled);
                        }
                        endpoint.poll_arrival().map(Wake::Packet)
                    });
                    match woke {
                        Some(Wake::Packet(p)) => {
                            reactor.deliver(&p);
                            p
                        }
                        Some(Wake::Cancelled) | None => continue,
                    }
                } else {
                    match endpoint.recv_timeout(Duration::from_millis(20)) {
                        Ok(p) => p,
                        Err(RecvError::Timeout) => continue,
                        Err(RecvError::Disconnected) => break,
                    }
                };
                let now = endpoint.now();
                match Frame::decode(&pkt.payload) {
                    Some(Frame::Post(port)) => {
                        registry
                            .entry(port)
                            .or_default()
                            .insert(pkt.source, (0, now));
                    }
                    Some(Frame::PostLoad(port, load)) => {
                        registry
                            .entry(port)
                            .or_default()
                            .insert(pkt.source, (load, now));
                    }
                    Some(Frame::Unpost(port)) => {
                        if let Some(set) = registry.get_mut(&port) {
                            set.remove(&pkt.source);
                            if set.is_empty() {
                                registry.remove(&port);
                            }
                        }
                    }
                    Some(Frame::Locate(port)) if !pkt.header.reply.is_null() => {
                        // The frozen v0 exchange: one machine. With
                        // several replicas, hand out the least loaded.
                        if let Some((machine, _)) = live(&mut registry, port, now)
                            .and_then(|set| set.into_iter().min_by_key(|&(m, l)| (l, m)))
                        {
                            let reply = Frame::LocateReply(port, machine).encode();
                            endpoint.send(Header::to(pkt.header.reply), reply);
                        }
                        // Unknown ports: silence; the client times out.
                    }
                    Some(Frame::LocateAll(port)) if !pkt.header.reply.is_null() => {
                        if let Some(set) = live(&mut registry, port, now) {
                            let mut replicas: Vec<ReplicaInfo> = set
                                .into_iter()
                                .map(|(machine, load)| ReplicaInfo { machine, load })
                                .collect();
                            replicas.sort_by_key(|r| (r.load, r.machine));
                            replicas.truncate(MAX_LOCATE_REPLICAS);
                            let reply = Frame::LocateReplyMulti { port, replicas }.encode();
                            endpoint.send(Header::to(pkt.header.reply), reply);
                        }
                    }
                    _ => {}
                }
            }
        });
        RendezvousNode {
            service_port,
            reactor,
            shutdown,
            handle: Some(handle),
        }
    }

    /// The wire port clients and servers address this node by.
    pub fn service_port(&self) -> Port {
        self.service_port
    }

    /// Stops the node.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // The node thread may be event-parked on the reactor.
        self.reactor.notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RendezvousNode {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Client/server side of rendezvous match-making: knows the agreed node
/// list and hashes ports onto it.
#[derive(Debug)]
pub struct Matchmaker {
    nodes: Vec<Port>,
    cache: ReplicaCache,
    policy: PlacementPolicy,
    rng: Mutex<StdRng>,
    timeout: Duration,
    /// Serialises cache-miss queries: two threads awaiting replies on
    /// one endpoint would consume each other's answers (see
    /// [`Locator`](crate::Locator)'s matching lock).
    resolving: Mutex<()>,
}

impl Matchmaker {
    /// A matchmaker over the agreed rendezvous nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<Port>) -> Matchmaker {
        assert!(!nodes.is_empty(), "at least one rendezvous node required");
        Matchmaker {
            nodes,
            cache: ReplicaCache::new(crate::Locator::DEFAULT_TTL),
            policy: PlacementPolicy::default(),
            resolving: Mutex::new(()),
            rng: Mutex::new(StdRng::from_entropy()),
            timeout: Duration::from_millis(200),
        }
    }

    /// Builder knob: replaces the replica-set cache TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Matchmaker {
        self.cache = ReplicaCache::new(ttl);
        self
    }

    /// Builder knob: replaces the placement policy. The registry path
    /// carries per-replica loads, so [`PlacementPolicy::LeastLoad`] is
    /// meaningful here.
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Matchmaker {
        self.policy = policy;
        self
    }

    /// Which rendezvous node is responsible for `port`.
    fn node_for(&self, port: Port) -> Port {
        // FNV-style mix; both sides must agree, nothing else matters.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in port.value().to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        self.nodes[(h % self.nodes.len() as u64) as usize]
    }

    /// Server side: registers `served_port` (which `endpoint`'s machine
    /// serves) at its rendezvous node.
    pub fn post(&self, endpoint: &Endpoint, served_port: Port) {
        let node = self.node_for(served_port);
        endpoint.send(Header::to(node), Frame::Post(served_port).encode());
    }

    /// Server side: registers `served_port` with an advertised load
    /// gauge. Re-posting refreshes the load — replicas under a changing
    /// load re-post periodically.
    pub fn post_load(&self, endpoint: &Endpoint, served_port: Port, load: u32) {
        let node = self.node_for(served_port);
        endpoint.send(
            Header::to(node),
            Frame::PostLoad(served_port, load).encode(),
        );
    }

    /// Server side: withdraws this machine's registration for
    /// `served_port` (planned shutdown; crashes are instead discovered
    /// by clients timing out and invalidating).
    pub fn unpost(&self, endpoint: &Endpoint, served_port: Port) {
        let node = self.node_for(served_port);
        endpoint.send(Header::to(node), Frame::Unpost(served_port).encode());
    }

    /// Client side: resolves which machine serves `port` by querying the
    /// responsible rendezvous node (no broadcast anywhere). Cached; with
    /// several live replicas the configured [`PlacementPolicy`] picks
    /// one per call.
    pub fn locate(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        if let Some(r) = self.cache.pick(port, self.policy, endpoint.now()) {
            return Some(r.machine);
        }
        let _querying = self.resolving.lock();
        // A peer may have resolved this port while we waited.
        if let Some(r) = self.cache.pick(port, self.policy, endpoint.now()) {
            return Some(r.machine);
        }
        self.cache
            .insert(port, self.resolve_all(endpoint, port), endpoint.now());
        self.cache
            .pick(port, self.policy, endpoint.now())
            .map(|r| r.machine)
    }

    /// Picks a replica from the cache alone — no network round-trip
    /// (the endpoint only supplies the timeline point for TTL expiry).
    /// `None` means uncached or expired; see
    /// [`Locator::pick_cached`](crate::Locator::pick_cached).
    pub fn pick_cached(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        self.cache
            .pick(port, self.policy, endpoint.now())
            .map(|r| r.machine)
    }

    /// Client side: resolves the **full** live replica set for `port`
    /// (cache or one `LOCATE_ALL` round-trip). Empty if the node knows
    /// nobody or does not answer.
    pub fn locate_all(&self, endpoint: &Endpoint, port: Port) -> Vec<Replica> {
        if let Some(set) = self.cache.all(port, endpoint.now()) {
            return set;
        }
        let _querying = self.resolving.lock();
        if let Some(set) = self.cache.all(port, endpoint.now()) {
            return set; // a peer resolved while we waited
        }
        let found = self.resolve_all(endpoint, port);
        // Must copy: the cache keeps its own set while the caller gets
        // the fresh one (small Copy structs — a short memcpy).
        self.cache.insert(port, found.clone(), endpoint.now());
        found
    }

    /// One `LOCATE_ALL` round-trip to the responsible node.
    fn resolve_all(&self, endpoint: &Endpoint, port: Port) -> Vec<Replica> {
        let node = self.node_for(port);
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = endpoint.claim(reply_get);
        endpoint.send(
            Header::to(node).with_reply(reply_get),
            Frame::LocateAll(port).encode(),
        );
        let deadline = endpoint.now() + self.timeout;
        let found = loop {
            if endpoint.now() >= deadline {
                break Vec::new();
            }
            match endpoint.recv_deadline(deadline) {
                Ok(pkt) if pkt.header.dest == reply_wire => {
                    match Frame::decode(&pkt.payload) {
                        // Only answers for the port we asked about.
                        Some(Frame::LocateReplyMulti { port: p, replicas }) if p == port => {
                            break replicas.into_iter().map(Replica::from).collect();
                        }
                        _ => continue, // noise or hostile: keep waiting
                    }
                }
                Ok(_) => continue,
                Err(_) => break Vec::new(),
            }
        };
        endpoint.release(reply_get);
        found
    }

    /// Drops a cached replica set.
    pub fn invalidate(&self, port: Port) {
        self.cache.invalidate(port);
    }

    /// Drops one machine from a port's cached set — the shared
    /// invalidate-on-transport-error path (see
    /// [`Locator::invalidate_machine`](crate::Locator::invalidate_machine)).
    pub fn invalidate_machine(&self, port: Port, machine: MachineId) {
        self.cache.invalidate_machine(port, machine);
    }

    /// Direct access to the replica-set cache.
    pub fn cache(&self) -> &ReplicaCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::Network;

    fn nodes(net: &Network, n: usize) -> (Vec<RendezvousNode>, Vec<Port>) {
        let running: Vec<RendezvousNode> = (0..n)
            .map(|i| {
                RendezvousNode::spawn(net.attach_open(), Port::new(0xAA00 + i as u64).unwrap())
            })
            .collect();
        let ports = running.iter().map(|r| r.service_port()).collect();
        (running, ports)
    }

    #[test]
    fn post_then_locate_without_any_broadcast() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 3);
        let mm = Matchmaker::new(node_ports);

        let server = net.attach_open();
        let served = Port::new(0x5E21CE).unwrap();
        server.claim(served);
        mm.post(&server, served);

        let client = net.attach_open();
        let before = net.stats().snapshot();
        let found = mm.locate(&client, served);
        let after = net.stats().snapshot();
        assert_eq!(found, Some(server.id()));
        assert_eq!(
            after.broadcasts_sent - before.broadcasts_sent,
            0,
            "rendezvous match-making must not broadcast"
        );
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn unknown_port_times_out() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Matchmaker::new(node_ports);
        let client = net.attach_open();
        assert_eq!(mm.locate(&client, Port::new(0xDEAD).unwrap()), None);
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn cache_answers_repeat_lookups_locally() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 1);
        let mm = Matchmaker::new(node_ports);
        let server = net.attach_open();
        let served = Port::new(0xCACE).unwrap();
        mm.post(&server, served);
        let client = net.attach_open();
        assert!(mm.locate(&client, served).is_some());
        let before = net.stats().snapshot();
        assert!(mm.locate(&client, served).is_some());
        let after = net.stats().snapshot();
        assert_eq!(after.packets_sent - before.packets_sent, 0);
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn ports_spread_across_nodes() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 4);
        let mm = Matchmaker::new(node_ports.clone());
        let mut used = std::collections::HashSet::new();
        for v in 1..200u64 {
            used.insert(mm.node_for(Port::new(v).unwrap()));
        }
        assert_eq!(used.len(), 4, "hashing should use every node");
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn repost_overrides_after_migration() {
        // A service migrating to another machine re-posts; lookups after
        // cache invalidation find the new home (§2.2's "process
        // migration" pointer).
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Matchmaker::new(node_ports);
        let served = Port::new(0x111333).unwrap();

        let home1 = net.attach_open();
        mm.post(&home1, served);
        let client = net.attach_open();
        assert_eq!(mm.locate(&client, served), Some(home1.id()));

        let home2 = net.attach_open();
        mm.post(&home2, served);
        mm.unpost(&home1, served);
        mm.invalidate(served);
        assert_eq!(mm.locate(&client, served), Some(home2.id()));
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn locate_all_returns_every_registered_replica_with_loads() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Matchmaker::new(node_ports);
        let served = Port::new(0xC1A5).unwrap();

        let replicas: Vec<Endpoint> = (0..3).map(|_| net.attach_open()).collect();
        for (i, ep) in replicas.iter().enumerate() {
            mm.post_load(ep, served, 10 - i as u32);
        }
        let client = net.attach_open();
        let found = mm.locate_all(&client, served);
        assert_eq!(found.len(), 3);
        let by_machine: std::collections::HashMap<MachineId, u32> =
            found.iter().map(|r| (r.machine, r.load)).collect();
        for (i, ep) in replicas.iter().enumerate() {
            assert_eq!(by_machine.get(&ep.id()), Some(&(10 - i as u32)));
        }
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn least_load_policy_follows_reposts() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 1);
        let mm = Matchmaker::new(node_ports).with_policy(PlacementPolicy::LeastLoad);
        let served = Port::new(0x10AD).unwrap();

        let busy = net.attach_open();
        let idle = net.attach_open();
        mm.post_load(&busy, served, 50);
        mm.post_load(&idle, served, 1);
        let client = net.attach_open();
        assert_eq!(mm.locate(&client, served), Some(idle.id()));

        // The idle machine gets busy and re-posts; after invalidation
        // the other replica wins.
        mm.post_load(&idle, served, 90);
        mm.invalidate(served);
        assert_eq!(mm.locate(&client, served), Some(busy.id()));
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn unpost_removes_only_the_departing_replica() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 1);
        let mm = Matchmaker::new(node_ports);
        let served = Port::new(0xDEAF).unwrap();

        let stay = net.attach_open();
        let leave = net.attach_open();
        mm.post_load(&stay, served, 0);
        mm.post_load(&leave, served, 0);
        mm.unpost(&leave, served);

        let client = net.attach_open();
        let found = mm.locate_all(&client, served);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].machine, stay.id());
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn stale_registrations_expire_without_unpost() {
        // A replica that crashes never unposts; its lease must lapse
        // so the registry stops handing it out.
        let net = Network::new();
        let node = RendezvousNode::spawn_with_ttl(
            net.attach_open(),
            Port::new(0xAA10).unwrap(),
            Duration::from_millis(40),
        );
        let mm = Matchmaker::new(vec![node.service_port()]);
        let served = Port::new(0x0DD).unwrap();

        let crashed = net.attach_open();
        let alive = net.attach_open();
        mm.post_load(&crashed, served, 0);
        mm.post_load(&alive, served, 5);
        let client = net.attach_open();
        assert_eq!(mm.locate_all(&client, served).len(), 2);

        // Only the live replica refreshes its lease.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            mm.post_load(&alive, served, 5);
        }
        mm.invalidate(served);
        let found = mm.locate_all(&client, served);
        assert_eq!(found.len(), 1, "stale lease must lapse: {found:?}");
        assert_eq!(found[0].machine, alive.id());

        // A restarted replica re-posts and is immediately back.
        mm.post_load(&crashed, served, 1);
        mm.invalidate(served);
        assert_eq!(mm.locate_all(&client, served).len(), 2);
        node.stop();
    }

    #[test]
    fn registration_churn_under_concurrent_lookups() {
        // Replicas join and leave while clients resolve: every answer
        // must be a subset of the machines that were ever registered,
        // and once the churn settles lookups see exactly the survivors.
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Arc::new(Matchmaker::new(node_ports.clone()));
        let served = Port::new(0xC414).unwrap();
        let churners: Vec<Endpoint> = (0..4).map(|_| net.attach_open()).collect();
        let ever: std::collections::HashSet<MachineId> = churners.iter().map(|e| e.id()).collect();

        let stop = Arc::new(AtomicBool::new(false));
        let churn_threads: Vec<_> = churners
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                let mm = Arc::clone(&mm);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut joined = false;
                    let mut round = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        if joined {
                            mm.unpost(&ep, served);
                        } else {
                            mm.post_load(&ep, served, round);
                        }
                        joined = !joined;
                        round += 1;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    // Settle: everyone registered at the end.
                    mm.post_load(&ep, served, i as u32);
                })
            })
            .collect();

        let lookup_threads: Vec<_> = (0..3)
            .map(|_| {
                let mm = Arc::new(Matchmaker::new(node_ports.clone()));
                let net = net.clone();
                let ever = ever.clone();
                std::thread::spawn(move || {
                    let client = net.attach_open();
                    for _ in 0..30 {
                        mm.invalidate(served);
                        for r in mm.locate_all(&client, served) {
                            assert!(
                                ever.contains(&r.machine),
                                "locate_all returned a never-registered machine"
                            );
                        }
                    }
                })
            })
            .collect();
        for t in lookup_threads {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for t in churn_threads {
            t.join().unwrap();
        }

        // After the dust settles every churner is registered again.
        let client = net.attach_open();
        mm.invalidate(served);
        let final_set: std::collections::HashSet<MachineId> = mm
            .locate_all(&client, served)
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert_eq!(final_set, ever, "survivors must all be resolvable");
        for r in running {
            r.stop();
        }
    }
}
