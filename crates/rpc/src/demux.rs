//! The lock-free reply demultiplexer: slot table, pooled mailboxes,
//! and the recycled-port freelists.
//!
//! PR 5 left the client demux as a `Mutex<HashMap<Port, Sender>>`
//! insert/remove per transaction plus a freshly constructed mailbox
//! channel per call. This module replaces both with a fixed **slot
//! table** (the ObjectTable low-bits trick applied to reply ports):
//!
//! * Each in-flight transaction owns one of [`SLOTS`] slots. The
//!   minted reply get-port engraves the slot index and an 8-bit
//!   **generation tag** in its low bits (see [`encode_reply_port`]) —
//!   `[ salt:32 | gen:8 | slot:8 ]` — so owner-side bookkeeping
//!   (parking, recycling, leasing) is a direct index, never a scan.
//! * What arrives on the wire is the **F-transformed** port `F(G′)`,
//!   whose bits carry no trace of the engraving (that is the point of
//!   F). Incoming replies therefore resolve through a fixed
//!   open-addressed **index**: one `AtomicU64` per entry packing
//!   `[ wire:48 | gen:8 | slot:8 ]`, probed from the wire value's low
//!   bits. A resolve is one load + one compare — no lock, no hash
//!   table, no allocation.
//! * Each slot owns one **pooled mailbox** (created once, in a
//!   `OnceLock`, reused by every transaction that occupies the slot),
//!   so `trans_async` performs zero channel construction in steady
//!   state.
//! * Recycled bindings park on an **indexed freelist** — a Treiber
//!   stack of slot indices whose head packs a version counter against
//!   ABA (`[ version:32 | index+1:32 ]`, safe-Rust atomics only) — so
//!   claiming a recycled reply port is O(1) however many are parked,
//!   replacing PR 5's linear-scan `Mutex<Vec>`.
//!
//! # Generation tags and straggler soundness
//!
//! A slot's generation survives parking and is bumped on every
//! **burn** (port release). A depositor routing a foreign reply
//! validates `(wire, gen)` from the index against the live slot
//! *before and after* the deposit; the owner flips the slot state
//! *before* draining on teardown. Between the two, any packet can be
//! drained by exactly one side, so no gated packet is ever orphaned
//! (which would wedge the virtual timeline) and no stale deposit can
//! be accepted: the accepting completion still compares the packet's
//! full 48-bit wire port against its own binding, so even a mailbox
//! reused across bindings cannot alias transactions. The PR 5
//! recycling rules (only a machine-targeted, single-transmit,
//! stragglerless completion may park its port) are unchanged and are
//! what make port reuse — in-client or via the lease broker — sound.
//!
//! Overflow (more concurrent transactions than free slots, or a full
//! probe window) falls back to a mutex-guarded map. The mutex is a
//! counted [`HotMutex`] and the fallback is gated by an atomic
//! counter, so the steady state neither takes the lock nor pays for
//! checking the map.

use amoeba_net::{HotMutex, LockMeter, Packet, Port, Reactor};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of demux slots — the engraving budget of the 8 slot bits.
pub(crate) const SLOTS: usize = 256;

/// Entries in the wire-value index. Twice the slot count keeps the
/// load factor at or below one half, so a bounded probe suffices.
const INDEX_SLOTS: usize = 512;

/// Linear-probe window for the wire index. With load ≤ 0.5 a run of
/// 16 occupied entries is vanishingly rare; a full window falls back
/// to the overflow map rather than probing further.
const PROBE_WINDOW: usize = 16;

/// Slot lifecycle states.
const EMPTY: u32 = 0;
/// Claimed by an owner mid-bind (or mid-teardown); not yet resolvable.
const RESERVED: u32 = 1;
/// Bound to an in-flight transaction; deposits accepted.
const ACTIVE: u32 = 2;
/// Bound to a recycled (claimed, quiescent) port awaiting reuse.
const PARKED: u32 = 3;

/// Mints a reply get-port engraving `(slot, gen)` in its low 16 bits:
/// `[ salt:32 | gen:8 | slot:8 ]`. Salt values 0 and `u32::MAX` are
/// remapped (to 1 and `u32::MAX - 1`) so the result can never collide
/// with the reserved broadcast/null port values; slot and generation
/// always round-trip exactly.
pub(crate) fn encode_reply_port(slot: u8, gen: u8, salt: u32) -> Port {
    let salt = match salt {
        0 => 1,
        u32::MAX => u32::MAX - 1,
        s => s,
    };
    let value = (u64::from(salt) << 16) | (u64::from(gen) << 8) | u64::from(slot);
    Port::new(value).expect("salt remap keeps the value off the reserved ports")
}

/// Recovers `(slot, gen, salt)` from a port minted by
/// [`encode_reply_port`].
pub(crate) fn decode_reply_port(port: Port) -> (u8, u8, u32) {
    let v = port.value();
    ((v & 0xFF) as u8, ((v >> 8) & 0xFF) as u8, (v >> 16) as u32)
}

/// One demux slot. All fields are atomics (or write-once); the slot is
/// never guarded by a lock.
struct Slot {
    state: AtomicU32,
    /// Generation of the current (or next) binding. Survives parking;
    /// bumped on burn. The low 8 bits are what ports engrave and the
    /// index carries.
    gen: AtomicU32,
    /// The secret get-port value of the current binding (0 when empty).
    get: AtomicU64,
    /// The wire (F-transformed) reply-port value of the current
    /// binding (0 when empty).
    wire: AtomicU64,
    /// Freelist link: index+1 of the next stacked slot, 0 = end. A
    /// slot is on at most one freelist at a time.
    next: AtomicU32,
    /// The pooled mailbox: constructed once per slot, reused by every
    /// binding that occupies it. Peers deposit via the sender; the
    /// owner drains via (a clone of) the receiver.
    mailbox: OnceLock<(Sender<Packet>, Receiver<Packet>)>,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            state: AtomicU32::new(EMPTY),
            gen: AtomicU32::new(0),
            get: AtomicU64::new(0),
            wire: AtomicU64::new(0),
            next: AtomicU32::new(0),
            mailbox: OnceLock::new(),
        }
    }

    fn mailbox(&self) -> &(Sender<Packet>, Receiver<Packet>) {
        self.mailbox.get_or_init(unbounded)
    }

    /// Drains every queued deposit, releasing its delivery gate.
    /// Callers flip `state`/`gen` first, so a concurrent depositor
    /// either loses the race (we drain its packet) or observes the
    /// change and drains its own.
    fn drain_discard(&self, reactor: &Reactor) -> bool {
        let mut any = false;
        if let Some((_, rx)) = self.mailbox.get() {
            while let Ok(pkt) = rx.try_recv() {
                any = true;
                reactor.discard(&pkt);
            }
        }
        any
    }
}

/// A Treiber stack of slot indices, ABA-proof via a packed version:
/// `[ version:32 | index+1:32 ]` in one `AtomicU64`. Push/pop are
/// O(1) and lock-free — this is the "indexed freelist" that replaces
/// the linear-scan parked-port vector.
struct SlotStack {
    head: AtomicU64,
}

impl SlotStack {
    const fn new() -> SlotStack {
        SlotStack {
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, slots: &[Slot], idx: usize) {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            slots[idx].next.store(head as u32, Ordering::Relaxed);
            let next = ((head >> 32).wrapping_add(1) << 32) | (idx as u64 + 1);
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Pops the top index, counting loop iterations into `steps` (the
    /// O(1)-recycling regression probe).
    fn pop(&self, slots: &[Slot], steps: &AtomicU64) -> Option<usize> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            steps.fetch_add(1, Ordering::Relaxed);
            let top = (head & 0xFFFF_FFFF) as u32;
            if top == 0 {
                return None;
            }
            let idx = top as usize - 1;
            let next_link = u64::from(slots[idx].next.load(Ordering::Relaxed));
            let next = ((head >> 32).wrapping_add(1) << 32) | next_link;
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }
}

/// The owner-side handle to a bound slot, kept in a `Completion`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotToken {
    pub idx: usize,
    /// The generation this binding was created under; teardown
    /// validates it defensively.
    pub gen: u32,
}

/// The packed wire-index entry: `[ wire:48 | gen:8 | slot:8 ]`.
fn pack_index(wire: u64, gen8: u8, slot: usize) -> u64 {
    (wire << 16) | (u64::from(gen8) << 8) | slot as u64
}

/// The client demultiplexer (see the module docs).
pub(crate) struct DemuxTable {
    slots: Vec<Slot>,
    /// Open-addressed wire-value index; 0 = empty (a wire reply port
    /// is never 0 — the broadcast value is unmintable and F outputs
    /// are remapped off it).
    index: Vec<AtomicU64>,
    /// Slots available for fresh bindings.
    free: SlotStack,
    /// Slots holding recycled (parked) bindings, ready for O(1) reuse.
    parked: SlotStack,
    parked_count: AtomicU32,
    active_count: AtomicU32,
    /// Pop-loop iterations on the parked stack — the O(1) recycling
    /// regression probe (`tests` assert it stays flat as the parked
    /// set grows).
    pub(crate) recycle_pop_steps: AtomicU64,
    /// Overflow registrations: wire value → depositor. Guarded by a
    /// counted lock; `overflow_count` lets the steady state skip it
    /// without locking.
    overflow: HotMutex<HashMap<u64, Sender<Packet>>>,
    overflow_count: AtomicU32,
}

impl std::fmt::Debug for DemuxTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemuxTable")
            .field("active", &self.active_count.load(Ordering::Relaxed))
            .field("parked", &self.parked_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl DemuxTable {
    pub(crate) fn new(meter: LockMeter) -> DemuxTable {
        let slots: Vec<Slot> = (0..SLOTS).map(|_| Slot::new()).collect();
        let table = DemuxTable {
            index: (0..INDEX_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            free: SlotStack::new(),
            parked: SlotStack::new(),
            parked_count: AtomicU32::new(0),
            active_count: AtomicU32::new(0),
            recycle_pop_steps: AtomicU64::new(0),
            overflow: HotMutex::with_meter(HashMap::new(), meter),
            overflow_count: AtomicU32::new(0),
            slots,
        };
        // Stack in reverse so early bindings get low slot indices.
        for idx in (0..SLOTS).rev() {
            table.free.push(&table.slots, idx);
        }
        table
    }

    /// In-flight (ACTIVE) transactions right now.
    pub(crate) fn active(&self) -> u32 {
        self.active_count.load(Ordering::Relaxed)
    }

    /// Parked recycled bindings right now.
    pub(crate) fn parked(&self) -> u32 {
        self.parked_count.load(Ordering::Relaxed)
    }

    /// Reserves a free slot for a fresh binding and returns
    /// `(index, gen)` — the caller mints the port from these, claims
    /// it, then calls [`activate_fresh`](Self::activate_fresh).
    pub(crate) fn reserve_fresh(&self) -> Option<(usize, u8)> {
        let idx = self.free.pop(&self.slots, &self.recycle_pop_steps)?;
        let slot = &self.slots[idx];
        slot.state.store(RESERVED, Ordering::Release);
        let gen8 = (slot.gen.load(Ordering::Relaxed) & 0xFF) as u8;
        Some((idx, gen8))
    }

    /// Overwrites a reserved slot's generation — used when adopting a
    /// leased port, whose binding carries the generation engraved at
    /// its original mint.
    pub(crate) fn set_reserved_gen(&self, idx: usize, gen8: u8) {
        debug_assert_eq!(self.slots[idx].state.load(Ordering::Relaxed), RESERVED);
        self.slots[idx]
            .gen
            .store(u32::from(gen8), Ordering::Relaxed);
    }

    /// Binds a reserved slot to `(get, wire)` and makes it resolvable.
    /// Returns the owner token, or `None` if the index probe window is
    /// full (the caller should abort the binding and go overflow).
    pub(crate) fn activate_fresh(&self, idx: usize, get: Port, wire: Port) -> Option<SlotToken> {
        let slot = &self.slots[idx];
        let gen = slot.gen.load(Ordering::Relaxed);
        let packed = pack_index(wire.value(), (gen & 0xFF) as u8, idx);
        if !self.index_insert(wire.value(), packed) {
            return None;
        }
        slot.get.store(get.value(), Ordering::Relaxed);
        slot.wire.store(wire.value(), Ordering::Relaxed);
        // Defensive: a fresh binding must start with an empty mailbox.
        debug_assert!(slot.mailbox.get().is_none_or(|(_, rx)| rx.is_empty()));
        slot.state.store(ACTIVE, Ordering::Release);
        self.active_count.fetch_add(1, Ordering::Relaxed);
        Some(SlotToken { idx, gen })
    }

    /// Rolls back a reservation whose bind failed.
    pub(crate) fn abort_reserved(&self, idx: usize) {
        self.slots[idx].state.store(EMPTY, Ordering::Release);
        self.free.push(&self.slots, idx);
    }

    /// Claims a parked recycled binding — O(1) regardless of how many
    /// are parked. The port is already claimed on the interface and
    /// already resolvable in the index; this just flips it live.
    pub(crate) fn claim_parked(&self, reactor: &Reactor) -> Option<(SlotToken, Port, Port)> {
        let idx = self.parked.pop(&self.slots, &self.recycle_pop_steps)?;
        self.parked_count.fetch_sub(1, Ordering::Relaxed);
        let slot = &self.slots[idx];
        // Defensive drain: a parked binding is quiescent by the
        // recycling invariant, but noise injected at its port must not
        // leak into the new transaction (or wedge the timeline).
        slot.drain_discard(reactor);
        let gen = slot.gen.load(Ordering::Relaxed);
        let get = Port::from_raw(slot.get.load(Ordering::Relaxed));
        let wire = Port::from_raw(slot.wire.load(Ordering::Relaxed));
        slot.state.store(ACTIVE, Ordering::Release);
        self.active_count.fetch_add(1, Ordering::Relaxed);
        Some((SlotToken { idx, gen }, get, wire))
    }

    /// Parks a completed binding for reuse: the port stays claimed and
    /// resolvable, the slot leaves ACTIVE. Returns `false` (leaving
    /// the slot RESERVED) if a stale deposit raced in — the binding is
    /// then not quiescent and the caller must burn it — or if the
    /// parked set is at `cap`.
    pub(crate) fn try_park(&self, token: SlotToken, reactor: &Reactor, cap: u32) -> bool {
        let slot = &self.slots[token.idx];
        debug_assert_eq!(
            slot.gen.load(Ordering::Relaxed),
            token.gen,
            "a token must only tear down its own binding"
        );
        // Leave ACTIVE first: depositors observing RESERVED either
        // skip (pre-send check) or self-drain (post-send re-check).
        slot.state.store(RESERVED, Ordering::Release);
        self.active_count.fetch_sub(1, Ordering::Relaxed);
        if slot.drain_discard(reactor) {
            return false; // straggler observed: caller burns
        }
        if self.parked_count.load(Ordering::Relaxed) >= cap {
            return false;
        }
        slot.state.store(PARKED, Ordering::Release);
        self.parked_count.fetch_add(1, Ordering::Relaxed);
        self.parked.push(&self.slots, token.idx);
        true
    }

    /// Tears down a binding completely: unresolvable, generation
    /// bumped (so in-flight deposits self-drain), mailbox drained,
    /// slot freed. The caller releases the port on the interface.
    ///
    /// Accepts a slot in ACTIVE (abandon/burn) or RESERVED (a failed
    /// park). The currently-active count is only decremented for the
    /// former.
    pub(crate) fn burn(&self, token: SlotToken, reactor: &Reactor) {
        let slot = &self.slots[token.idx];
        let was_active = slot.state.swap(RESERVED, Ordering::AcqRel) == ACTIVE;
        if was_active {
            self.active_count.fetch_sub(1, Ordering::Relaxed);
        }
        // Invalidate before draining: a depositor that already
        // resolved re-checks the generation after its send and drains
        // its own packet if it lost this race.
        slot.gen.fetch_add(1, Ordering::Release);
        let wire = slot.wire.swap(0, Ordering::Relaxed);
        if wire != 0 {
            self.index_remove(wire);
        }
        slot.get.store(0, Ordering::Relaxed);
        slot.drain_discard(reactor);
        slot.state.store(EMPTY, Ordering::Release);
        self.free.push(&self.slots, token.idx);
    }

    /// A clone of the pooled mailbox receiver for an owned binding.
    pub(crate) fn receiver(&self, token: SlotToken) -> Receiver<Packet> {
        self.slots[token.idx].mailbox().1.clone()
    }

    /// The binding a parked slot holds, without claiming it — used by
    /// `Client::drop` to export parked ports as leases.
    pub(crate) fn drain_parked_for_export(&self, reactor: &Reactor) -> Vec<(Port, Port)> {
        let mut out = Vec::new();
        while let Some(idx) = self.parked.pop(&self.slots, &self.recycle_pop_steps) {
            self.parked_count.fetch_sub(1, Ordering::Relaxed);
            let slot = &self.slots[idx];
            slot.state.store(RESERVED, Ordering::Release);
            let quiet = !slot.drain_discard(reactor);
            let get = Port::from_raw(slot.get.load(Ordering::Relaxed));
            let wire = Port::from_raw(slot.wire.load(Ordering::Relaxed));
            // Tear the slot down either way (the client is dying);
            // only quiescent bindings are worth exporting.
            self.burn(
                SlotToken {
                    idx,
                    gen: slot.gen.load(Ordering::Relaxed),
                },
                reactor,
            );
            if quiet {
                out.push((get, wire));
            }
        }
        out
    }

    /// Releases every remaining gated deposit (client teardown).
    pub(crate) fn drain_all(&self, reactor: &Reactor) {
        for slot in &self.slots {
            slot.drain_discard(reactor);
        }
    }

    /// Deposits a foreign reply with the transaction that owns its
    /// wire port. Returns `false` if nobody owns it (stale noise; the
    /// caller discards). Lock-free on the slot path; the overflow map
    /// is consulted — under its counted lock — only while overflow
    /// registrations exist.
    pub(crate) fn deposit(&self, mut pkt: Packet, reactor: &Reactor) -> bool {
        let wire = pkt.header.dest.value();
        if let Some((idx, gen8)) = self.index_resolve(wire) {
            let slot = &self.slots[idx];
            let live = |s: &Slot| {
                s.state.load(Ordering::Acquire) == ACTIVE
                    && (s.gen.load(Ordering::Acquire) & 0xFF) as u8 == gen8
                    && s.wire.load(Ordering::Relaxed) == wire
            };
            if !live(slot) {
                return false;
            }
            // Re-gate: the virtual timeline may not run past this
            // packet's arrival until the owner consumes it.
            reactor.regate(&mut pkt);
            let (tx, _) = slot.mailbox();
            if tx.send(pkt).is_err() {
                // Unreachable (the OnceLock keeps a receiver alive),
                // but a lost packet must still release its gate.
                return false;
            }
            // Post-send validation: if the owner tore the binding down
            // while we were depositing, it may have drained before our
            // packet landed — drain ourselves so no gate is orphaned.
            if !live(slot) {
                slot.drain_discard(reactor);
            }
            reactor.notify();
            return true;
        }
        if self.overflow_count.load(Ordering::Acquire) > 0 {
            let overflow = self.overflow.lock();
            if let Some(tx) = overflow.get(&wire) {
                reactor.regate(&mut pkt);
                match tx.send(pkt) {
                    Ok(()) => {
                        drop(overflow);
                        reactor.notify();
                        return true;
                    }
                    Err(e) => reactor.discard(&e.0),
                }
                return true;
            }
        }
        false
    }

    /// Registers an overflow binding (no slot available). Returns the
    /// mailbox the owner drains.
    pub(crate) fn register_overflow(&self, wire: Port) -> Receiver<Packet> {
        let (tx, rx) = unbounded();
        self.overflow_count.fetch_add(1, Ordering::AcqRel);
        self.overflow.lock().insert(wire.value(), tx);
        rx
    }

    /// Removes an overflow binding.
    pub(crate) fn remove_overflow(&self, wire: Port) {
        self.overflow.lock().remove(&wire.value());
        self.overflow_count.fetch_sub(1, Ordering::AcqRel);
    }

    fn index_insert(&self, wire: u64, packed: u64) -> bool {
        let start = (wire as usize) & (INDEX_SLOTS - 1);
        for i in 0..PROBE_WINDOW {
            let entry = &self.index[(start + i) & (INDEX_SLOTS - 1)];
            if entry
                .compare_exchange(0, packed, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    fn index_resolve(&self, wire: u64) -> Option<(usize, u8)> {
        let start = (wire as usize) & (INDEX_SLOTS - 1);
        for i in 0..PROBE_WINDOW {
            let packed = self.index[(start + i) & (INDEX_SLOTS - 1)].load(Ordering::Acquire);
            if packed >> 16 == wire {
                return Some(((packed & 0xFF) as usize, ((packed >> 8) & 0xFF) as u8));
            }
        }
        None
    }

    fn index_remove(&self, wire: u64) {
        let start = (wire as usize) & (INDEX_SLOTS - 1);
        for i in 0..PROBE_WINDOW {
            let entry = &self.index[(start + i) & (INDEX_SLOTS - 1)];
            let packed = entry.load(Ordering::Acquire);
            if packed >> 16 == wire {
                // Only the owner removes its own entry; a plain store
                // suffices (no concurrent writer targets this entry).
                entry.store(0, Ordering::Release);
                return;
            }
        }
    }
}

/// The §2.1 kernel route cache, lock-free: put-port → the machine that
/// last answered it. "To avoid having to broadcast the LOCATE message
/// for every transaction, each kernel maintains a cache of
/// (port, machine) pairs." A fixed open-addressed array of atomic
/// `(key, value)` pairs; the two words of an entry are not read or
/// written atomically *together*, which is sound because the cache is
/// a **hint, never load-bearing**: a torn entry at worst targets the
/// wrong single machine, and that attempt times out, evicts the entry
/// and retransmits associatively. Insertion clobbers the probe-start
/// entry when the window is full (the memo-table idiom: correctness
/// unaffected, the displaced port just goes associative once).
pub(crate) struct RouteCache {
    /// Port values; 0 = never used.
    keys: Vec<AtomicU64>,
    /// Machine id + 1; 0 = no route (empty or evicted).
    vals: Vec<AtomicU64>,
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("len", &self.len())
            .finish()
    }
}

/// Route-cache capacity. Clients talk to a bounded service fleet in
/// practice, so the cap is generous.
pub(crate) const MAX_CACHED_ROUTES: usize = 1024;

/// Route-cache probe window.
const ROUTE_PROBE: usize = 8;

impl RouteCache {
    pub(crate) fn new() -> RouteCache {
        RouteCache {
            keys: (0..MAX_CACHED_ROUTES).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..MAX_CACHED_ROUTES).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn probe(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = (key as usize) & (MAX_CACHED_ROUTES - 1);
        (0..ROUTE_PROBE).map(move |i| (start + i) & (MAX_CACHED_ROUTES - 1))
    }

    /// The cached machine (as `id + 1`) for `key`, if any.
    pub(crate) fn lookup(&self, key: u64) -> Option<u64> {
        for i in self.probe(key) {
            if self.keys[i].load(Ordering::Acquire) == key {
                let val = self.vals[i].load(Ordering::Acquire);
                return (val != 0).then_some(val);
            }
        }
        None
    }

    /// Records `key → val` (val must be machine id + 1, nonzero).
    pub(crate) fn insert(&self, key: u64, val: u64) {
        debug_assert_ne!(val, 0);
        let mut fallback = None;
        for i in self.probe(key) {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                self.vals[i].store(val, Ordering::Release);
                return;
            }
            if k == 0
                && self.keys[i]
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.vals[i].store(val, Ordering::Release);
                return;
            }
            fallback.get_or_insert(i);
        }
        // Window full of other ports: clobber the probe-start entry.
        if let Some(i) = fallback {
            self.vals[i].store(0, Ordering::Release);
            self.keys[i].store(key, Ordering::Release);
            self.vals[i].store(val, Ordering::Release);
        }
    }

    /// Evicts `key`'s route, but only if it still names `stale` — a
    /// peer may have learned a newer answer meanwhile.
    pub(crate) fn evict_if(&self, key: u64, stale: u64) {
        for i in self.probe(key) {
            if self.keys[i].load(Ordering::Acquire) == key {
                let _ =
                    self.vals[i].compare_exchange(stale, 0, Ordering::AcqRel, Ordering::Acquire);
                return;
            }
        }
    }

    /// Occupied (valued) entries — O(capacity), for tests and lease
    /// export only.
    pub(crate) fn len(&self) -> usize {
        self.vals
            .iter()
            .filter(|v| v.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Snapshot of up to `cap` live routes, for lease export.
    pub(crate) fn export(&self, cap: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..MAX_CACHED_ROUTES {
            if out.len() >= cap {
                break;
            }
            let val = self.vals[i].load(Ordering::Relaxed);
            if val != 0 {
                let key = self.keys[i].load(Ordering::Relaxed);
                if key != 0 {
                    out.push((key, val));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::{Header, LockMeter};
    use bytes::Bytes;
    use proptest::prelude::*;

    fn wall_reactor() -> std::sync::Arc<Reactor> {
        amoeba_net::Network::new().reactor().clone()
    }

    fn pkt_to(wire: Port) -> Packet {
        // Build a packet through a real network so its bookkeeping
        // (source, deliver_at) is well-formed; gates only exist under
        // the virtual clock, so discard paths are exercised separately
        // in the client integration tests.
        let net = amoeba_net::Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(wire);
        a.send(Header::to(wire), Bytes::from_static(b"x"));
        b.recv().expect("delivery")
    }

    #[test]
    fn fresh_bind_resolve_and_burn() {
        let reactor = wall_reactor();
        let table = DemuxTable::new(LockMeter::new());
        let (idx, gen8) = table.reserve_fresh().expect("slots available");
        let get = encode_reply_port(idx as u8, gen8, 0xABCD_1234);
        let wire = Port::new(0x9999).unwrap();
        let token = table.activate_fresh(idx, get, wire).expect("index room");
        assert_eq!(table.active(), 1);

        assert!(table.deposit(pkt_to(wire), &reactor), "owner must resolve");
        let rx = table.receiver(token);
        let got = rx.try_recv().expect("deposited packet");
        assert_eq!(got.header.dest, wire);
        reactor.deliver(&got);

        table.burn(token, &reactor);
        assert_eq!(table.active(), 0);
        assert!(
            !table.deposit(pkt_to(wire), &reactor),
            "burned binding must be unresolvable"
        );
    }

    #[test]
    fn stale_generation_deposits_are_rejected() {
        let reactor = wall_reactor();
        let table = DemuxTable::new(LockMeter::new());
        let (idx, gen8) = table.reserve_fresh().unwrap();
        let get = encode_reply_port(idx as u8, gen8, 7);
        let wire = Port::new(0xABC0).unwrap();
        let token = table.activate_fresh(idx, get, wire).unwrap();
        table.burn(token, &reactor);

        // Rebind the same slot (new generation) at a different wire.
        let (idx2, gen8_2) = table.reserve_fresh().unwrap();
        assert_eq!(idx2, idx, "freelist must hand the slot back");
        assert_ne!(gen8_2, gen8, "burn must bump the generation");
        let get2 = encode_reply_port(idx2 as u8, gen8_2, 8);
        let wire2 = Port::new(0xABC1).unwrap();
        let token2 = table.activate_fresh(idx2, get2, wire2).unwrap();

        // A straggler addressed to the OLD wire finds nothing.
        assert!(!table.deposit(pkt_to(wire), &reactor));
        // The live binding still resolves.
        assert!(table.deposit(pkt_to(wire2), &reactor));
        let rx = table.receiver(token2);
        let got = rx.try_recv().unwrap();
        reactor.deliver(&got);
        table.burn(token2, &reactor);
    }

    #[test]
    fn parked_bindings_recycle_in_constant_steps() {
        // The satellite regression: claiming a recycled port must stay
        // O(1) however many bindings are parked (the PR 5 code scanned
        // a Vec under a lock).
        let reactor = wall_reactor();
        let table = DemuxTable::new(LockMeter::new());
        let park = |n: usize| {
            for k in 0..n {
                let (idx, gen8) = table.reserve_fresh().unwrap();
                let get = encode_reply_port(idx as u8, gen8, k as u32 + 1);
                let wire = Port::new(0x4_0000 + k as u64).unwrap();
                let token = table.activate_fresh(idx, get, wire).unwrap();
                assert!(table.try_park(token, &reactor, 64));
            }
        };
        park(4);
        let before = table.recycle_pop_steps.load(Ordering::Relaxed);
        assert!(table.claim_parked(&reactor).is_some());
        let small = table.recycle_pop_steps.load(Ordering::Relaxed) - before;

        park(60);
        assert_eq!(table.parked(), 63);
        let before = table.recycle_pop_steps.load(Ordering::Relaxed);
        assert!(table.claim_parked(&reactor).is_some());
        let large = table.recycle_pop_steps.load(Ordering::Relaxed) - before;
        assert_eq!(
            small, large,
            "recycling cost must not grow with the parked set"
        );
        assert_eq!(small, 1, "an uncontended pop is one step");
    }

    #[test]
    fn park_cap_refuses_and_caller_burns() {
        let reactor = wall_reactor();
        let table = DemuxTable::new(LockMeter::new());
        let mut tokens = Vec::new();
        for k in 0..3u64 {
            let (idx, gen8) = table.reserve_fresh().unwrap();
            let get = encode_reply_port(idx as u8, gen8, 99);
            let wire = Port::new(0x5_0000 + k).unwrap();
            tokens.push(table.activate_fresh(idx, get, wire).unwrap());
        }
        assert!(table.try_park(tokens[0], &reactor, 2));
        assert!(table.try_park(tokens[1], &reactor, 2));
        assert!(!table.try_park(tokens[2], &reactor, 2), "cap must refuse");
        table.burn(tokens[2], &reactor);
        assert_eq!(table.parked(), 2);
    }

    #[test]
    fn overflow_path_still_routes() {
        let reactor = wall_reactor();
        let table = DemuxTable::new(LockMeter::new());
        let wire = Port::new(0xFACE).unwrap();
        let rx = table.register_overflow(wire);
        assert!(table.deposit(pkt_to(wire), &reactor));
        let got = rx.try_recv().unwrap();
        reactor.deliver(&got);
        table.remove_overflow(wire);
        assert!(!table.deposit(pkt_to(wire), &reactor));
    }

    #[test]
    fn route_cache_bounds_and_eviction() {
        let cache = RouteCache::new();
        for k in 1..=(MAX_CACHED_ROUTES as u64 + 64) {
            cache.insert(k, 7);
        }
        assert!(cache.len() <= MAX_CACHED_ROUTES);
        cache.insert(42, 9);
        assert_eq!(cache.lookup(42), Some(9));
        cache.evict_if(42, 3); // wrong stale value: keep
        assert_eq!(cache.lookup(42), Some(9));
        cache.evict_if(42, 9); // right stale value: evict
        assert_eq!(cache.lookup(42), None);
    }

    proptest! {
        /// Slot and generation round-trip through the port encoding
        /// for ALL values — the engraving the freelists index by.
        #[test]
        fn port_code_roundtrips_slot_and_gen(slot: u8, gen: u8, salt: u32) {
            let port = encode_reply_port(slot, gen, salt);
            let (s, g, sa) = decode_reply_port(port);
            prop_assert_eq!(s, slot);
            prop_assert_eq!(g, gen);
            // Salt round-trips except for the two reserved-value
            // remaps.
            if salt != 0 && salt != u32::MAX {
                prop_assert_eq!(sa, salt);
            }
            prop_assert!(!port.is_broadcast() && !port.is_null());
        }

        /// Forged wire ports — any value not currently bound — never
        /// resolve, and a burned binding's port (stale generation)
        /// never resolves again even though the slot was rebound.
        #[test]
        fn forged_and_stale_ports_never_resolve(forged in 1u64..0xFFFF_FFFF_FFFFu64, salt: u32) {
            let reactor = wall_reactor();
            let table = DemuxTable::new(LockMeter::new());
            let (idx, gen8) = table.reserve_fresh().unwrap();
            let get = encode_reply_port(idx as u8, gen8, salt);
            let wire = Port::new(0xB0B0).unwrap();
            let token = table.activate_fresh(idx, get, wire).unwrap();

            if forged != wire.value() {
                let forged_port = Port::from_raw(forged);
                prop_assert!(
                    !table.deposit(pkt_to(forged_port), &reactor),
                    "forged port must not resolve"
                );
            }

            // Burn, rebind the same slot elsewhere: the old wire is a
            // stale-generation port now and must stay dead.
            table.burn(token, &reactor);
            let (idx2, gen8_2) = table.reserve_fresh().unwrap();
            let get2 = encode_reply_port(idx2 as u8, gen8_2, salt ^ 1);
            let wire2 = Port::new(0xB0B1).unwrap();
            let token2 = table.activate_fresh(idx2, get2, wire2).unwrap();
            prop_assert!(!table.deposit(pkt_to(wire), &reactor));
            table.burn(token2, &reactor);
        }

        /// Expired lease offers — any batch of engraved ports — are
        /// pruned, never granted, so a successor client mints fresh
        /// and a straggler addressed to any expired port's wire value
        /// meets only the forged-port rejection path in the
        /// successor's table. (The live-lease aliasing guards —
        /// generation continuity and the full wire compare — are
        /// covered by the integration tests in `client`.)
        #[test]
        fn expired_lease_stragglers_never_alias(
            offers in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u32>()),
                1..8,
            ),
            straggler in 1u64..0xFFFF_FFFF_FFFFu64,
        ) {
            let broker =
                crate::lease::PortLeaseBroker::with_ttl(std::time::Duration::ZERO);
            for &(slot, gen, salt) in &offers {
                broker.offer_port(encode_reply_port(slot, gen, salt));
            }
            prop_assert_eq!(
                broker.available_ports(),
                0,
                "expired offers must be pruned"
            );
            prop_assert!(broker.lease().is_none(), "expired offer granted");

            // The successor finds no lease and binds a fresh port of
            // its own; the straggler's wire value resolves nowhere in
            // its table.
            let reactor = wall_reactor();
            let table = DemuxTable::new(LockMeter::new());
            let (idx, gen8) = table.reserve_fresh().unwrap();
            let get = encode_reply_port(idx as u8, gen8, 7);
            let wire = Port::new(0xFEED).unwrap();
            let token = table.activate_fresh(idx, get, wire).unwrap();
            if straggler != wire.value() {
                prop_assert!(
                    !table.deposit(pkt_to(Port::from_raw(straggler)), &reactor),
                    "straggler resolved in a table that never bound it"
                );
            }
            table.burn(token, &reactor);
        }
    }
}
