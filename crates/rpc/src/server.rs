//! The server side: GET on a port, loop over requests, reply.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, MachineId, Port, RecvError};
use bytes::Bytes;
use std::time::Duration;

/// A request as seen by the server.
#[derive(Debug, Clone)]
pub struct IncomingRequest {
    /// Opaque request body (the capability, opcode and parameters, as
    /// encoded by `amoeba-server`).
    pub payload: Bytes,
    /// The wire put-port to reply to — already `F(G′)`, transformed by
    /// the *client's* F-box in transit.
    pub reply_to: Port,
    /// The transmitted signature field, `F(S)` of the sender's secret
    /// signature, or `None` if the request was unsigned. Compare against
    /// the principal's published `F(S)`.
    pub signature: Option<Port>,
    /// The (unforgeable) source machine.
    pub source: MachineId,
}

/// A bound server port: the result of `GET(G)`.
///
/// The server loop also transparently answers broadcast LOCATE queries
/// for its port, implementing the software match-making of §2.2.
///
/// A `ServerPort` is safe to share (e.g. in an `Arc`) across a pool of
/// dispatch workers: the endpoint's packet queue is an MPMC channel, so
/// concurrent [`next_request`](Self::next_request) calls each claim a
/// distinct request, and [`reply`](Self::reply) is a stateless send.
#[derive(Debug)]
pub struct ServerPort {
    endpoint: Endpoint,
    get_port: Port,
    wire_port: Port,
}

// The worker-pool dispatch engine shares one bound port across
// threads; keep that property from regressing silently.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<ServerPort>();
};

impl ServerPort {
    /// `GET(G)`: claims the get-port on the endpoint's interface and
    /// returns the bound server.
    pub fn bind(endpoint: Endpoint, get_port: Port) -> ServerPort {
        let wire_port = endpoint.claim(get_port);
        ServerPort {
            endpoint,
            get_port,
            wire_port,
        }
    }

    /// The put-port clients should send to (`F(G)` under an F-box;
    /// `G` itself on an open interface).
    pub fn put_port(&self) -> Port {
        self.wire_port
    }

    /// The secret get-port (never goes on the wire).
    pub fn get_port(&self) -> Port {
        self.get_port
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Blocks for the next client request, transparently answering
    /// LOCATE broadcasts in the meantime.
    ///
    /// # Errors
    /// [`RecvError::Disconnected`] if the endpoint is detached.
    pub fn next_request(&self) -> Result<IncomingRequest, RecvError> {
        loop {
            let pkt = self.endpoint.recv()?;
            if let Some(req) = self.process(pkt) {
                return Ok(req);
            }
        }
    }

    /// Like [`next_request`](Self::next_request) with a deadline.
    ///
    /// # Errors
    /// [`RecvError::Timeout`] on expiry; [`RecvError::Disconnected`] if
    /// detached.
    pub fn next_request_timeout(&self, timeout: Duration) -> Result<IncomingRequest, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvError::Timeout);
            }
            let pkt = self.endpoint.recv_timeout(remaining)?;
            if let Some(req) = self.process(pkt) {
                return Ok(req);
            }
        }
    }

    fn process(&self, pkt: amoeba_net::Packet) -> Option<IncomingRequest> {
        match Frame::decode(&pkt.payload) {
            Some(Frame::Request(body)) if pkt.header.dest == self.wire_port => {
                Some(IncomingRequest {
                    payload: body,
                    reply_to: pkt.header.reply,
                    signature: (!pkt.header.signature.is_null()).then_some(pkt.header.signature),
                    source: pkt.source,
                })
            }
            Some(Frame::Locate(port)) if pkt.header.dest.is_broadcast() => {
                // Someone is looking for a port; answer if it is ours.
                if port == self.wire_port && !pkt.header.reply.is_null() {
                    let reply = Frame::LocateReply(self.wire_port, self.endpoint.id()).encode();
                    self.endpoint.send(Header::to(pkt.header.reply), reply);
                }
                None
            }
            _ => None,
        }
    }

    /// Sends a reply for `request`.
    pub fn reply(&self, request: &IncomingRequest, body: Bytes) {
        if request.reply_to.is_null() {
            return; // one-way request
        }
        self.endpoint
            .send(Header::to(request.reply_to), Frame::Reply(body).encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, RpcConfig};
    use amoeba_net::Network;

    fn fast() -> RpcConfig {
        RpcConfig {
            timeout: Duration::from_millis(100),
            attempts: 2,
        }
    }

    #[test]
    fn request_reply_roundtrip_open_nics() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x11).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            assert_eq!(&req.payload[..], b"ping");
            server.reply(&req, Bytes::from_static(b"pong"));
        });
        let client = Client::with_config(net.attach_open(), fast());
        let reply = client.trans(p, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&reply[..], b"pong");
        t.join().unwrap();
    }

    #[test]
    fn open_nic_put_port_equals_get_port() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x22).unwrap());
        assert_eq!(server.put_port(), server.get_port());
    }

    #[test]
    fn unsigned_requests_have_no_signature() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x33).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            assert!(req.signature.is_none());
            server.reply(&req, Bytes::new());
        });
        let client = Client::with_config(net.attach_open(), fast());
        client.trans(p, Bytes::new()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn next_request_timeout_expires() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x44).unwrap());
        assert_eq!(
            server
                .next_request_timeout(Duration::from_millis(10))
                .unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn shared_port_workers_claim_disjoint_requests() {
        // Two threads drain one bound port; every request is answered
        // exactly once no matter which worker claims it.
        use std::sync::Arc;
        let net = Network::new();
        let server = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0x66).unwrap(),
        ));
        let p = server.put_port();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut served = 0u32;
                    while let Ok(req) = server.next_request_timeout(Duration::from_millis(200)) {
                        server.reply(&req, req.payload.clone()); // echo
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let mut clients = Vec::new();
        for i in 0..8u32 {
            let net = net.clone();
            clients.push(std::thread::spawn(move || {
                let client = Client::with_config(
                    net.attach_open(),
                    RpcConfig {
                        timeout: Duration::from_millis(500),
                        attempts: 3,
                    },
                );
                let body = Bytes::from(i.to_be_bytes().to_vec());
                let reply = client.trans(p, body.clone()).unwrap();
                assert_eq!(reply, body);
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 8, "each request claimed by exactly one worker");
    }

    #[test]
    fn retransmission_reaches_server_after_loss() {
        let net = Network::new();
        net.reseed(7);
        let server = ServerPort::bind(net.attach_open(), Port::new(0x55).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            server.reply(&req, Bytes::from_static(b"ok"));
            // Absorb a possible duplicate from the retry.
            let _ = server.next_request_timeout(Duration::from_millis(50));
        });
        // Drop everything for the first attempt...
        net.set_drop_rate(1.0);
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(30),
                attempts: 10,
            },
        );
        let net2 = net.clone();
        let heal = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(45));
            net2.set_drop_rate(0.0);
        });
        let reply = client.trans(p, Bytes::from_static(b"once more")).unwrap();
        assert_eq!(&reply[..], b"ok");
        heal.join().unwrap();
        t.join().unwrap();
    }
}
