//! The server side: GET on a port, loop over requests, reply.
//!
//! # Dispatch model
//!
//! A [`ServerPort`] is shared (via `Arc`) by every worker of a dispatch
//! pool. Internally it separates **pumping** from **serving**:
//!
//! * At most one worker at a time is the *pump* (a lock-free atomic
//!   flag decides — a single compare-exchange, no mutex): it drains
//!   the endpoint's packet queue, decodes frames, and pushes
//!   ready-to-serve [`IncomingRequest`]s onto an internal MPMC queue.
//!   A single-frame request yields one entry; a `BATCH_REQUEST` frame
//!   is **exploded** into one entry per batch element, so the elements
//!   fan out across the whole pool.
//! * Every other worker blocks on the ready queue (waking instantly
//!   when the pump pushes) and periodically — every
//!   [`PUMP_TAKEOVER_TICK`] — retries the pump role, so it migrates
//!   when its holder goes off to execute a handler.
//!
//! # Batch fan-in
//!
//! Each exploded batch entry carries a shared accumulator.
//! [`ServerPort::reply`] deposits the entry's reply body there instead
//! of sending a frame; whichever worker deposits the **last** body
//! encodes the complete `BATCH_REPLY` frame and transmits it. One frame
//! in, one frame out, regardless of how many workers served the
//! entries. If any entry is never replied to, no batch reply is sent
//! and the client's retransmission machinery takes over — identical to
//! the single-frame contract.
//!
//! The server loop also transparently answers broadcast LOCATE queries
//! for its port, implementing the software match-making of §2.2.

use crate::client::CodecConfig;
use crate::frame::{self, BatchReplyEntry, BatchStatus, Frame, TransferOp};
use amoeba_net::{
    BufPool, Endpoint, Gate, Header, HotMutex, MachineId, Port, RecvError, Timestamp,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often a worker blocked on the ready queue retries the pump role.
/// Bounds the hand-off gap when the current pump leaves for a handler:
/// packets sit undecoded for at most this long while blocked workers
/// are available.
pub const PUMP_TAKEOVER_TICK: Duration = Duration::from_millis(1);

/// A request as seen by the server.
#[derive(Debug, Clone)]
pub struct IncomingRequest {
    /// Opaque request body (the capability, opcode and parameters, as
    /// encoded by `amoeba-server`).
    pub payload: Bytes,
    /// The wire put-port to reply to — already `F(G′)`, transformed by
    /// the *client's* F-box in transit.
    pub reply_to: Port,
    /// The transmitted signature field, `F(S)` of the sender's secret
    /// signature, or `None` if the request was unsigned. Compare against
    /// the principal's published `F(S)`.
    pub signature: Option<Port>,
    /// The (unforgeable) source machine.
    pub source: MachineId,
    /// Present when this request arrived as one entry of a batch frame;
    /// routes the reply into the batch's fan-in accumulator.
    batch: Option<BatchSlot>,
    /// Present when this request arrived as a transfer frame (shard
    /// migration); `payload` is empty and the dispatch layer routes the
    /// op to the service's migrator instead of its request handler.
    transfer: Option<TransferOp>,
    /// Virtual-clock delivery gate, held while the decoded request
    /// waits in the ready queue and released when a worker claims it.
    gate: Option<Gate>,
}

impl IncomingRequest {
    /// `(batch id, entry index)` when this request arrived inside a
    /// `BATCH_REQUEST` frame, `None` for a single-frame request.
    pub fn batch_context(&self) -> Option<(u32, u16)> {
        self.batch.as_ref().map(|s| (s.acc.id, s.index))
    }

    /// The shard-migration op when this "request" arrived as a transfer
    /// frame, `None` for an ordinary request. Transfer ops are answered
    /// with [`ServerPort::reply`] like any other request.
    pub fn transfer_op(&self) -> Option<&TransferOp> {
        self.transfer.as_ref()
    }
}

/// One entry's handle into its batch's reply accumulator.
#[derive(Debug, Clone)]
struct BatchSlot {
    acc: Arc<BatchAccumulator>,
    index: u16,
}

/// Collects per-entry replies until the batch is complete. The slot
/// lock is a counted [`HotMutex`] (metered against the server's pool):
/// batch fan-in is inherently a rendezvous, so its cost is accounted,
/// not hidden — the lock-free single-frame path never touches it.
#[derive(Debug)]
struct BatchAccumulator {
    id: u32,
    reply_to: Port,
    slots: HotMutex<BatchSlots>,
}

#[derive(Debug)]
struct BatchSlots {
    entries: Vec<Option<(BatchStatus, Bytes)>>,
    filled: usize,
    /// Set once the final entry fan-in has consumed the slots. The
    /// rebuild takes the bodies out of the slots (so their buffers can
    /// be retired), which means emptiness no longer distinguishes
    /// "never deposited" from "already shipped" — this flag does, and
    /// keeps a post-completion duplicate deposit a no-op.
    done: bool,
}

impl BatchAccumulator {
    fn new(id: u32, reply_to: Port, count: usize, pool: &BufPool) -> BatchAccumulator {
        BatchAccumulator {
            id,
            reply_to,
            slots: HotMutex::with_meter(
                BatchSlots {
                    entries: vec![None; count],
                    filled: 0,
                    done: false,
                },
                pool.lock_meter(),
            ),
        }
    }

    /// Deposits one entry's reply; returns the encoded `BATCH_REPLY`
    /// frame when this was the last outstanding entry, built in a
    /// pooled buffer with the entry bodies retired back to the pool.
    /// Duplicate deposits for an index — before or after the batch
    /// completed — are ignored (a retransmitted batch can race its
    /// original through two workers).
    fn submit(
        &self,
        index: u16,
        status: BatchStatus,
        body: Bytes,
        pool: &BufPool,
    ) -> Option<Bytes> {
        let mut slots = self.slots.lock();
        if slots.done {
            return None;
        }
        let slot = slots.entries.get_mut(index as usize)?;
        if slot.is_some() {
            return None;
        }
        *slot = Some((status, body));
        slots.filled += 1;
        if slots.filled < slots.entries.len() {
            return None;
        }
        slots.done = true;
        let entries: Vec<BatchReplyEntry> = slots
            .entries
            .iter_mut()
            .enumerate()
            .map(|(i, s)| {
                let (status, body) = s.take().expect("all slots filled");
                BatchReplyEntry {
                    index: i as u16,
                    status,
                    body,
                }
            })
            .collect();
        let reply = Frame::BatchReply {
            id: self.id,
            entries,
        };
        let mut buf = pool.take();
        reply.encode_into(&mut buf);
        // The frame now carries copies of every body. The bodies are
        // foreign handles (handler threads own their storage), so
        // *release* them — reclaim-if-unique — rather than parking
        // still-shared buffers on this thread.
        if let Frame::BatchReply { entries, .. } = reply {
            for e in entries {
                pool.release(e.body);
            }
        }
        Some(buf.freeze())
    }
}

/// A bound server port: the result of `GET(G)`.
///
/// A `ServerPort` is safe to share (e.g. in an `Arc`) across a pool of
/// dispatch workers: concurrent [`next_request`](Self::next_request)
/// calls each claim a distinct request (batch entries included), and
/// [`reply`](Self::reply) is stateless for single frames and
/// internally synchronised for batch fan-in. See the module docs for
/// the pump/serve split.
#[derive(Debug)]
pub struct ServerPort {
    endpoint: Endpoint,
    get_port: Port,
    wire_port: Port,
    /// Decoded, ready-to-serve requests (MPMC: each claimed once).
    ready_tx: Sender<IncomingRequest>,
    ready_rx: Receiver<IncomingRequest>,
    /// `true` while one worker holds the pump role (drains the
    /// endpoint). A bare atomic, not a mutex: acquisition is a single
    /// compare-exchange and probing is a load, so the hot receive path
    /// takes no lock.
    pump: AtomicBool,
    /// Reply frames (and handler-built bodies) are encoded into and
    /// retired back to this pool; steady-state replies allocate
    /// nothing.
    pool: BufPool,
}

// The worker-pool dispatch engine shares one bound port across
// threads; keep that property from regressing silently.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<ServerPort>();
};

/// RAII ownership of the pump role: releases the flag on drop, so every
/// early-return path in the pump loop hands the role back correctly.
#[derive(Debug)]
struct PumpGuard<'a> {
    role: &'a AtomicBool,
}

impl Drop for PumpGuard<'_> {
    fn drop(&mut self) {
        self.role.store(false, Ordering::Release);
    }
}

impl ServerPort {
    /// `GET(G)`: claims the get-port on the endpoint's interface and
    /// returns the bound server (default codec: pooled buffers).
    pub fn bind(endpoint: Endpoint, get_port: Port) -> ServerPort {
        Self::bind_with_codec(endpoint, get_port, CodecConfig::default())
    }

    /// [`bind`](Self::bind) with explicit hot-path codec knobs — pass
    /// [`CodecConfig::legacy`] to measure the pre-pool baseline, or a
    /// shared [`BufPool`] handle to aggregate allocation counters
    /// across parties. (Reply-port recycling is a client knob; only the
    /// pool applies here.)
    pub fn bind_with_codec(endpoint: Endpoint, get_port: Port, codec: CodecConfig) -> ServerPort {
        let wire_port = endpoint.claim(get_port);
        let (ready_tx, ready_rx) = unbounded();
        ServerPort {
            endpoint,
            get_port,
            wire_port,
            ready_tx,
            ready_rx,
            pump: AtomicBool::new(false),
            pool: codec.pool,
        }
    }

    /// The frame-buffer pool replies are encoded into. Handlers can
    /// take/retire body buffers here so body allocations ride the same
    /// recycling as frame allocations.
    pub fn buf_pool(&self) -> &BufPool {
        &self.pool
    }

    /// The put-port clients should send to (`F(G)` under an F-box;
    /// `G` itself on an open interface).
    pub fn put_port(&self) -> Port {
        self.wire_port
    }

    /// The secret get-port (never goes on the wire).
    pub fn get_port(&self) -> Port {
        self.get_port
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Blocks for the next client request, transparently answering
    /// LOCATE broadcasts in the meantime.
    ///
    /// # Errors
    /// [`RecvError::Disconnected`] if the endpoint is detached.
    pub fn next_request(&self) -> Result<IncomingRequest, RecvError> {
        loop {
            match self.next_request_deadline(None) {
                Err(RecvError::Timeout) => continue, // pump tick, not a real deadline
                other => return other,
            }
        }
    }

    /// Like [`next_request`](Self::next_request) with a deadline.
    ///
    /// # Errors
    /// [`RecvError::Timeout`] on expiry; [`RecvError::Disconnected`] if
    /// detached.
    pub fn next_request_timeout(&self, timeout: Duration) -> Result<IncomingRequest, RecvError> {
        self.next_request_deadline(Some(self.endpoint.now() + timeout))
    }

    /// Gates a decoded request while it waits in the ready queue
    /// (virtual clock only): the timeline may not pass its arrival
    /// instant until a worker claims it, so a slow hand-off cannot
    /// distort other flows' timing.
    fn ready_gate(&self, pkt: &amoeba_net::Packet) -> Option<Gate> {
        let reactor = self.endpoint.reactor();
        reactor
            .uses_gates()
            .then(|| reactor.register_gate(pkt.deliver_at()))
    }

    /// Tries to become the pump. A single compare-exchange; the
    /// returned guard releases the role on drop.
    fn try_pump(&self) -> Option<PumpGuard<'_>> {
        self.pump
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
            .then(|| PumpGuard { role: &self.pump })
    }

    /// Whether the pump role is currently unheld. A probe only (a
    /// plain load, no acquisition) — the answer may be stale by the
    /// time the caller acts on it, which every call site tolerates by
    /// retrying.
    fn pump_is_free(&self) -> bool {
        !self.pump.load(Ordering::Acquire)
    }

    /// Claims a request off the ready queue, releasing its gate. Every
    /// receive path funnels through here, so it is also where the
    /// flight recorder sees a request leave the queue for a worker.
    fn claim(&self, req: IncomingRequest) -> IncomingRequest {
        if let Some(gate) = req.gate {
            self.endpoint.reactor().release_gate(gate);
        }
        let obs = self.endpoint.obs();
        if obs.enabled() {
            obs.record(
                amoeba_net::EventKind::PumpDequeue,
                self.endpoint.now().since_epoch().as_nanos() as u64,
                0,
                req.reply_to.value(),
                u64::from(req.source.as_u32()),
            );
        }
        req
    }

    /// Non-blocking receive for reactor driver loops: serves an
    /// already-decoded request if one is ready, otherwise (if the pump
    /// role is free) drains every queued packet into the ready queue
    /// and tries again. Never parks the thread (though under a virtual
    /// clock consuming a delivery may briefly wait for earlier
    /// deliveries to be consumed); a driver multiplexing many bound
    /// ports calls this in a scan and parks on the reactor only when
    /// every port comes up empty.
    pub fn poll_request(&self) -> Option<IncomingRequest> {
        if let Ok(req) = self.ready_rx.try_recv() {
            return Some(self.claim(req));
        }
        if let Some(_pumping) = self.try_pump() {
            while let Some(pkt) = self.endpoint.poll_arrival() {
                // Consume the delivery (ordered under the virtual
                // clock) before decoding.
                self.endpoint.reactor().deliver(&pkt);
                self.process(pkt);
            }
        }
        self.ready_rx.try_recv().ok().map(|req| self.claim(req))
    }

    /// Whether a call to [`poll_request`](Self::poll_request) could
    /// make progress right now: a decoded request is ready, or
    /// undecoded arrivals are queued **and** the pump role is free to
    /// claim (a held pump means another worker is already draining —
    /// waking for that would be a busy-spin). The pump probe is a
    /// plain atomic load, never a block and never an acquisition.
    pub fn has_claimable_work(&self) -> bool {
        if !self.ready_rx.is_empty() {
            return true;
        }
        self.endpoint.has_arrivals() && self.pump_is_free()
    }

    /// The pump/serve loop shared by both receive paths. `None` means
    /// "no deadline" (but the caller must treat a `Timeout` result as
    /// "keep looping": the pump still wakes periodically).
    fn next_request_deadline(
        &self,
        deadline: Option<Timestamp>,
    ) -> Result<IncomingRequest, RecvError> {
        loop {
            // Serve decoded work first — the pump may have queued
            // several entries from one batch frame.
            match self.ready_rx.try_recv() {
                Ok(req) => return Ok(self.claim(req)),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => unreachable!("we hold a ready sender"),
            }
            let now = self.endpoint.now();
            if deadline.is_some_and(|d| now >= d) {
                return Err(RecvError::Timeout);
            }
            // Wall-clock paths bound an undeadlined wait so the pump
            // still re-checks the ready queue now and then
            // (next_request() loops on the Timeout). Virtual paths
            // must NOT synthesize a deadline: it would register a
            // re-arming far-future sleeper that drags the virtual
            // timeline forward whenever the system idles.
            let wall_wait_until = deadline.unwrap_or(now + Duration::from_secs(60));
            enum Outcome {
                Return(Result<IncomingRequest, RecvError>),
                Pumped,
                NotPump,
            }
            let outcome = match self.try_pump() {
                Some(_pumping) => {
                    // The previous pump may have pushed entries between
                    // our ready-queue check above and winning the role;
                    // serve those before blocking on the wire (only the
                    // role holder can push, so this check cannot race).
                    if let Ok(req) = self.ready_rx.try_recv() {
                        Outcome::Return(Ok(self.claim(req)))
                    } else {
                        // We are the pump: drain the wire into the
                        // ready queue (event-parked when undeadlined
                        // on the virtual clock).
                        let pumped = match (self.endpoint.reactor().is_virtual(), deadline) {
                            (true, None) => self.endpoint.recv(),
                            (true, Some(d)) => self.endpoint.recv_deadline(d),
                            (false, _) => self.endpoint.recv_deadline(wall_wait_until),
                        };
                        match pumped {
                            Ok(pkt) => {
                                self.process(pkt);
                                Outcome::Pumped
                            }
                            Err(RecvError::Timeout) => {
                                if deadline.is_some() {
                                    Outcome::Return(Err(RecvError::Timeout))
                                } else {
                                    Outcome::Pumped
                                }
                            }
                            Err(RecvError::Disconnected) => {
                                Outcome::Return(Err(RecvError::Disconnected))
                            }
                        }
                    }
                    // The pump guard drops here — every path below runs
                    // with the role released.
                }
                None => Outcome::NotPump,
            };
            match outcome {
                Outcome::Return(result) => {
                    // We just released the pump role; if undecoded
                    // arrivals remain, wake a successor explicitly — a
                    // delivery may have jumped the (virtual) clock past
                    // every waiter's takeover tick.
                    if self.endpoint.has_arrivals() {
                        self.endpoint.reactor().notify();
                    }
                    return result;
                }
                Outcome::Pumped => {
                    if self.endpoint.has_arrivals() {
                        self.endpoint.reactor().notify();
                    }
                    continue;
                }
                Outcome::NotPump => {}
            }
            // Someone else pumps; wait for them to feed the ready
            // queue, but retry the pump role periodically in case
            // they left for a handler.
            let reactor = self.endpoint.reactor();
            if reactor.is_virtual() {
                // Reactor wakeup instead of a parked OS thread, and no
                // takeover tick: re-arming sub-millisecond tick
                // deadlines would hand the virtual clock a ladder to
                // climb. Takeover is purely event-driven — two wake
                // conditions: a ready push (the pump notifies on every
                // one), or *undecoded arrivals with the pump role
                // free* (the previous pump released it on the way to a
                // handler and notified). The role-free check keeps
                // this edge-triggered: while somebody actively pumps,
                // waiters stay parked instead of spinning.
                enum Wake {
                    Ready(IncomingRequest),
                    Takeover,
                }
                let woke = reactor.park_until(deadline, || {
                    if let Ok(req) = self.ready_rx.try_recv() {
                        return Some(Wake::Ready(req));
                    }
                    if self.endpoint.has_arrivals() && self.pump_is_free() {
                        // A load-only probe (never blocks, so the
                        // reactor lock held here cannot deadlock
                        // against a pump holder taking it later).
                        return Some(Wake::Takeover);
                    }
                    None
                });
                if let Some(Wake::Ready(req)) = woke {
                    return Ok(self.claim(req));
                }
                // Takeover signal or deadline expiry: loop and retry
                // the pump lock.
            } else {
                let tick_deadline = wall_wait_until.min(now + PUMP_TAKEOVER_TICK);
                let real = reactor
                    .clock()
                    .real_instant(tick_deadline)
                    .expect("wall clocks map to real instants");
                match self.ready_rx.recv_deadline(real) {
                    Ok(req) => return Ok(self.claim(req)),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("we hold a ready sender")
                    }
                }
            }
        }
    }

    /// Decodes one packet into zero or more ready requests.
    fn process(&self, pkt: amoeba_net::Packet) {
        match Frame::decode(&pkt.payload) {
            Some(Frame::Request(body)) if pkt.header.dest == self.wire_port => {
                let _ = self.ready_tx.send(IncomingRequest {
                    payload: body,
                    reply_to: pkt.header.reply,
                    signature: signature_of(&pkt),
                    source: pkt.source,
                    batch: None,
                    transfer: None,
                    gate: self.ready_gate(&pkt),
                });
                // Ready pushes are not network events; wake
                // reactor-parked workers explicitly.
                self.endpoint.reactor().notify();
            }
            Some(Frame::Transfer(op)) if pkt.header.dest == self.wire_port => {
                let _ = self.ready_tx.send(IncomingRequest {
                    payload: Bytes::new(),
                    reply_to: pkt.header.reply,
                    signature: signature_of(&pkt),
                    source: pkt.source,
                    batch: None,
                    transfer: Some(op),
                    gate: self.ready_gate(&pkt),
                });
                self.endpoint.reactor().notify();
            }
            Some(Frame::BatchRequest { id, entries }) if pkt.header.dest == self.wire_port => {
                // One-way batches (null reply port) are dispatched with
                // no accumulator: every entry is served, nothing is
                // sent back — mirroring one-way single frames.
                let acc = (!pkt.header.reply.is_null()).then(|| {
                    Arc::new(BatchAccumulator::new(
                        id,
                        pkt.header.reply,
                        entries.len(),
                        &self.pool,
                    ))
                });
                for (index, body) in entries.into_iter().enumerate() {
                    let _ = self.ready_tx.send(IncomingRequest {
                        payload: body,
                        reply_to: pkt.header.reply,
                        signature: signature_of(&pkt),
                        source: pkt.source,
                        batch: acc.as_ref().map(|acc| BatchSlot {
                            acc: Arc::clone(acc),
                            index: index as u16,
                        }),
                        transfer: None,
                        gate: self.ready_gate(&pkt),
                    });
                }
                self.endpoint.reactor().notify();
            }
            // Someone broadcast a LOCATE for our port; answer it.
            Some(Frame::Locate(port))
                if pkt.header.dest.is_broadcast()
                    && port == self.wire_port
                    && !pkt.header.reply.is_null() =>
            {
                let mut buf = self.pool.take();
                Frame::LocateReply(self.wire_port, self.endpoint.id()).encode_into(&mut buf);
                let reply = buf.freeze();
                self.endpoint
                    .send(Header::to(pkt.header.reply), reply.clone());
                self.pool.retire(reply);
            }
            _ => {}
        }
    }

    /// Sends a reply for `request`. For a batch entry this deposits the
    /// body in the batch's accumulator; the worker depositing the final
    /// entry transmits the whole `BATCH_REPLY` frame.
    ///
    /// Reply frames are encoded into pooled buffers and retired after
    /// transmission, so a steady-state server replies without touching
    /// the allocator.
    pub fn reply(&self, request: &IncomingRequest, body: Bytes) {
        match &request.batch {
            Some(slot) => {
                if let Some(frame) = slot
                    .acc
                    .submit(slot.index, BatchStatus::Ok, body, &self.pool)
                {
                    self.endpoint
                        .send(Header::to(slot.acc.reply_to), frame.clone());
                    self.pool.retire(frame);
                }
            }
            None => {
                if request.reply_to.is_null() {
                    // One-way request: nothing goes on the wire, but
                    // the (typically pooled) body buffer still
                    // recycles.
                    self.pool.retire(body);
                    return;
                }
                let mut buf = self.pool.take();
                frame::encode_reply_into(&mut buf, &body);
                self.pool.retire(body);
                let frame = buf.freeze();
                self.endpoint
                    .send(Header::to(request.reply_to), frame.clone());
                self.pool.retire(frame);
            }
        }
    }

    /// Relays `request` to another server port, preserving the client's
    /// reply port (and signature) so the new owner replies *straight to
    /// the client* — the client's demultiplexer correlates on the reply
    /// port alone, so the relayed reply completes the original
    /// transaction with no gap and no extra hop back through us.
    ///
    /// Only sound on **open interfaces** (every cluster deployment in
    /// this repository): an F-box would transform the relayed reply and
    /// signature fields a second time on our egress, breaking the
    /// correlation. Batch entries cannot be relayed either — their
    /// replies fan into this server's accumulator — so they are
    /// rejected instead ([`BatchStatus::Rejected`], which the client
    /// surfaces as a retryable transport error). Returns `true` when
    /// the request actually went to `dest`.
    pub fn forward(&self, request: &IncomingRequest, dest: Port) -> bool {
        if request.batch.is_some() {
            self.reject(request);
            return false;
        }
        let mut buf = self.pool.take();
        frame::encode_request_into(&mut buf, &request.payload);
        let frame = buf.freeze();
        let mut header = Header::to(dest).with_reply(request.reply_to);
        if let Some(sig) = request.signature {
            header = header.with_signature(sig);
        }
        self.endpoint.send(header, frame.clone());
        self.pool.retire(frame);
        let obs = self.endpoint.obs();
        if obs.enabled() {
            obs.record(
                amoeba_net::EventKind::RequestForwarded,
                self.endpoint.now().since_epoch().as_nanos() as u64,
                0,
                dest.value(),
                request.reply_to.value(),
            );
        }
        true
    }

    /// Declines `request` without serving it. A batch entry deposits
    /// [`BatchStatus::Rejected`] (the client sees a retryable transport
    /// error); a single-frame request is simply dropped, so the
    /// client's retransmission machinery retries it — the contract a
    /// sealed shard relies on during the migration cutover window.
    pub fn reject(&self, request: &IncomingRequest) {
        if let Some(slot) = &request.batch {
            if let Some(frame) =
                slot.acc
                    .submit(slot.index, BatchStatus::Rejected, Bytes::new(), &self.pool)
            {
                self.endpoint
                    .send(Header::to(slot.acc.reply_to), frame.clone());
                self.pool.retire(frame);
            }
        }
    }
}

impl Drop for ServerPort {
    fn drop(&mut self) {
        // Decoded requests never claimed would otherwise hold their
        // ready-queue gates forever and wedge the virtual timeline.
        while let Ok(req) = self.ready_rx.try_recv() {
            if let Some(gate) = req.gate {
                self.endpoint.reactor().release_gate(gate);
            }
        }
    }
}

fn signature_of(pkt: &amoeba_net::Packet) -> Option<Port> {
    (!pkt.header.signature.is_null()).then_some(pkt.header.signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, RpcConfig};
    use amoeba_net::Network;

    fn fast() -> RpcConfig {
        RpcConfig {
            timeout: Duration::from_millis(100),
            attempts: 2,
        }
    }

    #[test]
    fn request_reply_roundtrip_open_nics() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x11).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            assert_eq!(&req.payload[..], b"ping");
            assert!(req.batch_context().is_none());
            server.reply(&req, Bytes::from_static(b"pong"));
        });
        let client = Client::with_config(net.attach_open(), fast());
        let reply = client.trans(p, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&reply[..], b"pong");
        t.join().unwrap();
    }

    #[test]
    fn open_nic_put_port_equals_get_port() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x22).unwrap());
        assert_eq!(server.put_port(), server.get_port());
    }

    #[test]
    fn unsigned_requests_have_no_signature() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x33).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            assert!(req.signature.is_none());
            server.reply(&req, Bytes::new());
        });
        let client = Client::with_config(net.attach_open(), fast());
        client.trans(p, Bytes::new()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn next_request_timeout_expires() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x44).unwrap());
        assert_eq!(
            server
                .next_request_timeout(Duration::from_millis(10))
                .unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn shared_port_workers_claim_disjoint_requests() {
        // Two threads drain one bound port; every request is answered
        // exactly once no matter which worker claims it.
        use std::sync::Arc;
        let net = Network::new();
        let server = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0x66).unwrap(),
        ));
        let p = server.put_port();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut served = 0u32;
                    while let Ok(req) = server.next_request_timeout(Duration::from_millis(200)) {
                        server.reply(&req, req.payload.clone()); // echo
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let mut clients = Vec::new();
        for i in 0..8u32 {
            let net = net.clone();
            clients.push(std::thread::spawn(move || {
                let client = Client::with_config(
                    net.attach_open(),
                    RpcConfig {
                        timeout: Duration::from_millis(500),
                        attempts: 3,
                    },
                );
                let body = Bytes::from(i.to_be_bytes().to_vec());
                let reply = client.trans(p, body.clone()).unwrap();
                assert_eq!(reply, body);
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 8, "each request claimed by exactly one worker");
    }

    #[test]
    fn batch_entries_fan_out_across_workers_and_fan_in_one_reply() {
        use std::sync::Arc;
        let net = Network::new();
        let server = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0x77).unwrap(),
        ));
        let p = server.put_port();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut served = 0u32;
                    while let Ok(req) = server.next_request_timeout(Duration::from_millis(300)) {
                        assert!(req.batch_context().is_some());
                        server.reply(&req, req.payload.clone());
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        let before = net.stats().snapshot();
        let bodies: Vec<Bytes> = (0..12u8).map(|i| Bytes::from(vec![i])).collect();
        let results = client.trans_batch(p, bodies.clone()).unwrap();
        for (expect, got) in bodies.iter().zip(&results) {
            assert_eq!(got.as_ref().unwrap(), expect);
        }
        assert_eq!(
            net.stats().snapshot().packets_sent - before.packets_sent,
            2,
            "12 entries, 1 frame each way"
        );
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 12, "every batch entry claimed exactly once");
    }

    #[test]
    fn duplicate_batch_deposit_after_completion_is_ignored() {
        // A retransmitted batch can race its original through two
        // workers, so deposits may land *after* the reply frame
        // shipped (when the slots have been consumed for body
        // retirement). They must be no-ops — not panics, not second
        // frames.
        let pool = amoeba_net::BufPool::new();
        let acc = BatchAccumulator::new(7, Port::new(0x99).unwrap(), 2, &pool);
        assert!(acc
            .submit(0, BatchStatus::Ok, Bytes::from_static(b"a"), &pool)
            .is_none());
        assert!(acc
            .submit(1, BatchStatus::Ok, Bytes::from_static(b"b"), &pool)
            .is_some());
        assert!(acc
            .submit(0, BatchStatus::Ok, Bytes::from_static(b"a"), &pool)
            .is_none());
        assert!(acc
            .submit(1, BatchStatus::Rejected, Bytes::new(), &pool)
            .is_none());
        // Out-of-range duplicates stay harmless too.
        assert!(acc
            .submit(9, BatchStatus::Ok, Bytes::new(), &pool)
            .is_none());
    }

    #[test]
    fn retransmission_reaches_server_after_loss() {
        let net = Network::new();
        net.reseed(7);
        let server = ServerPort::bind(net.attach_open(), Port::new(0x55).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            server.reply(&req, Bytes::from_static(b"ok"));
            // Absorb a possible duplicate from the retry.
            let _ = server.next_request_timeout(Duration::from_millis(50));
        });
        // Drop everything for the first attempt...
        net.set_drop_rate(1.0);
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(30),
                attempts: 10,
            },
        );
        let net2 = net.clone();
        let heal = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(45));
            net2.set_drop_rate(0.0);
        });
        let reply = client.trans(p, Bytes::from_static(b"once more")).unwrap();
        assert_eq!(&reply[..], b"ok");
        heal.join().unwrap();
        t.join().unwrap();
    }
}
