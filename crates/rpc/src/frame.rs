//! The wire framing used above raw packets — the repository's **wire
//! protocol**, documented byte-for-byte in `docs/PROTOCOL.md` (the two
//! must stay in sync; `documented_example_frames` below parses the
//! spec's example frames verbatim).
//!
//! # Frame families
//!
//! * **Single frames** (tags `0x00`–`0x04`, protocol v0): one tag byte
//!   distinguishes requests, replies, the two LOCATE messages and the
//!   rendezvous POST; everything else (capabilities, opcodes,
//!   parameters) lives in the opaque body and is defined by
//!   `amoeba-server`. These are unchanged since the first protocol
//!   version, and every peer must accept them forever.
//! * **Batch frames** (tags `0x05`–`0x06`, added in batch-format
//!   version 1): a length-prefixed multi-request container that carries
//!   up to [`MAX_BATCH_ENTRIES`] request (or reply) bodies in one
//!   packet, amortising the per-packet channel hops that dominate the
//!   zero-latency profile. A batch is identified by a 32-bit **batch
//!   id** chosen by the client; reply entries are matched to request
//!   entries by `(batch id, entry index)`.
//! * **Cluster frames** (tags `0x07`–`0x0A`, added in cluster-format
//!   version 1): load-aware replica registration (`POST_LOAD` /
//!   `UNPOST`) and the multi-replica LOCATE (`LOCATE_ALL` /
//!   `LOCATE_REPLY_MULTI`) that let one put-port be served by several
//!   machines at once — the §3.4 transparent-distribution story scaled
//!   horizontally. Each carries an explicit version byte
//!   ([`CLUSTER_VERSION`]) after the tag.
//! * **Transfer frames** (tags `0x0B`–`0x0D`, added in transfer-format
//!   version 1): the shard-migration stream. `TRANSFER_BEGIN` opens a
//!   transfer for one table shard, `TRANSFER_CHUNK` carries a batch of
//!   serialised object records, and `TRANSFER_COMMIT` asks the target
//!   to install the staged records and take ownership. Each is
//!   acknowledged with an ordinary REPLY frame (the client machinery
//!   correlates on the reply port alone), so the migration driver rides
//!   the existing at-least-once transaction layer; every transfer op is
//!   idempotent on the receiving side to make retransmission safe. Each
//!   carries an explicit version byte ([`TRANSFER_VERSION`]) after the
//!   tag.
//!
//! # Versioning policy
//!
//! Single frames carry no version byte — their layout is frozen. Batch
//! frames carry an explicit format version ([`BATCH_VERSION`]) right
//! after the tag; decoders **drop** frames with an unknown version
//! exactly as they drop unknown tags. Any incompatible change to the
//! batch layout must bump the version byte, and peers that do not
//! understand it simply never reply, which the client's retransmission
//! logic already handles (the sender can then fall back to single
//! frames). New frame *kinds* take new tag values; tags are never
//! reused.
//!
//! # Robustness
//!
//! Malformed frames are *dropped*, not errors: on a broadcast network,
//! noise addressed to your port is an expected condition. The batch
//! decoder additionally enforces [`MAX_BATCH_ENTRIES`] and exact buffer
//! consumption so hostile frames (truncated entry tables, oversized
//! counts, trailing garbage) are rejected without panicking and without
//! amplification — entry bodies are zero-copy slices of the received
//! buffer, never fresh allocations sized from attacker-controlled
//! lengths.

use amoeba_net::{MachineId, Port};
use bytes::{Bytes, BytesMut};

/// Frame discriminator tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A client request; body is server-defined.
    Request = 0,
    /// A server reply; body is server-defined.
    Reply = 1,
    /// Broadcast "who serves this port?"; body is the 48-bit port.
    Locate = 2,
    /// Answer to a LOCATE; body is the port and the answering machine.
    LocateReply = 3,
    /// Rendezvous registration: "the sending machine serves this port"
    /// (match-making without broadcast). Body is the 48-bit port.
    Post = 4,
    /// A batch of client requests sharing one packet (batch-format v1).
    BatchRequest = 5,
    /// The batch of replies answering a [`FrameKind::BatchRequest`].
    BatchReply = 6,
    /// Replica registration with a load gauge: "the sending machine
    /// serves this port at this load" (cluster-format v1).
    PostLoad = 7,
    /// Replica deregistration: "the sending machine no longer serves
    /// this port" (cluster-format v1).
    Unpost = 8,
    /// "Send me *every* live replica of this port" — the multi-replica
    /// LOCATE a placement-aware client sends a registry node
    /// (cluster-format v1).
    LocateAll = 9,
    /// Answer to a [`FrameKind::LocateAll`]: the full replica set with
    /// per-replica loads (cluster-format v1).
    LocateReplyMulti = 10,
    /// Opens a shard transfer: "stage records for this transfer id,
    /// covering this table shard" (transfer-format v1).
    TransferBegin = 11,
    /// One batch of serialised object records within an open transfer
    /// (transfer-format v1).
    TransferChunk = 12,
    /// Closes a transfer: "install the staged records and take
    /// ownership of the shard" (transfer-format v1).
    TransferCommit = 13,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Reply),
            2 => Some(FrameKind::Locate),
            3 => Some(FrameKind::LocateReply),
            4 => Some(FrameKind::Post),
            5 => Some(FrameKind::BatchRequest),
            6 => Some(FrameKind::BatchReply),
            7 => Some(FrameKind::PostLoad),
            8 => Some(FrameKind::Unpost),
            9 => Some(FrameKind::LocateAll),
            10 => Some(FrameKind::LocateReplyMulti),
            11 => Some(FrameKind::TransferBegin),
            12 => Some(FrameKind::TransferChunk),
            13 => Some(FrameKind::TransferCommit),
            _ => None,
        }
    }
}

/// The batch-frame format version this implementation speaks. Bumped on
/// any incompatible layout change; decoders drop unknown versions.
pub const BATCH_VERSION: u8 = 1;

/// Upper bound on entries per batch frame, enforced by both encoder and
/// decoder. Keeps a hostile `count` field from driving large allocations
/// and bounds the per-frame work a server commits to before replying.
pub const MAX_BATCH_ENTRIES: usize = 1024;

/// The cluster-frame format version this implementation speaks
/// (tags `0x07`–`0x0A`). Same policy as [`BATCH_VERSION`]: bumped on
/// any incompatible layout change; decoders drop unknown versions.
pub const CLUSTER_VERSION: u8 = 1;

/// Upper bound on replicas per [`Frame::LocateReplyMulti`], enforced by
/// encoder and decoder alike. One service rarely needs more than a
/// handful of replicas per port; the cap keeps a hostile count field
/// from driving allocations.
pub const MAX_LOCATE_REPLICAS: usize = 32;

/// The transfer-frame format version this implementation speaks
/// (tags `0x0B`–`0x0D`). Same policy as [`BATCH_VERSION`]: bumped on
/// any incompatible layout change; decoders drop unknown versions.
pub const TRANSFER_VERSION: u8 = 1;

/// One shard-migration operation, as carried by the transfer frames
/// (tags `0x0B`–`0x0D`). The `xfer` id is chosen by the migration
/// driver and keys the target's staging area, which is what makes every
/// op idempotent under the at-least-once transaction layer: a repeated
/// `Begin` resets the same staging entry, a repeated `Chunk` with an
/// already-staged `seq` is acknowledged without re-staging, and a
/// repeated `Commit` for an already-installed transfer acknowledges
/// success again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferOp {
    /// Open (or reset) the staging area for transfer `xfer`, covering
    /// table shard `shard` on the source.
    Begin {
        /// Driver-chosen transfer identifier.
        xfer: u64,
        /// The table shard index being migrated.
        shard: u8,
    },
    /// Stage chunk `seq` of transfer `xfer`; `records` is an opaque
    /// concatenation of serialised object records (defined by
    /// `amoeba-server`'s export surface, not by this layer).
    Chunk {
        /// Driver-chosen transfer identifier.
        xfer: u64,
        /// Chunk sequence number, starting at 0.
        seq: u32,
        /// Serialised object records (zero-copy slice of the frame).
        records: Bytes,
    },
    /// Install the staged records of transfer `xfer` — all `chunks`
    /// of them — and take ownership of the shard named by the `Begin`.
    Commit {
        /// Driver-chosen transfer identifier.
        xfer: u64,
        /// Total number of chunks the transfer carried.
        chunks: u32,
    },
}

/// One live replica of a port, as carried in a
/// [`Frame::LocateReplyMulti`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaInfo {
    /// The machine serving the port.
    pub machine: MachineId,
    /// The machine's advertised load gauge at registration/answer time
    /// (0 when unknown — e.g. converted from a plain `LOCATE_REPLY`).
    pub load: u32,
}

/// Per-entry outcome carried in a [`Frame::BatchReply`].
///
/// This is **transport-level** status only: it says whether the server's
/// RPC layer produced a reply body for the entry at all. Application
/// failures (bad capability, rights violation, …) travel as ordinary
/// reply bodies with `status == Ok` here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BatchStatus {
    /// The entry was dispatched and its body is the service's reply.
    Ok = 0,
    /// The entry was rejected before dispatch (e.g. its body could not
    /// be decoded); the body is empty.
    Rejected = 1,
}

impl BatchStatus {
    fn from_u8(v: u8) -> Option<BatchStatus> {
        match v {
            0 => Some(BatchStatus::Ok),
            1 => Some(BatchStatus::Rejected),
            _ => None,
        }
    }
}

/// One reply inside a [`Frame::BatchReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReplyEntry {
    /// Index of the request entry this answers (position in the
    /// [`Frame::BatchRequest`] entry table).
    pub index: u16,
    /// Transport-level outcome for this entry.
    pub status: BatchStatus,
    /// The reply body (empty when `status` is
    /// [`BatchStatus::Rejected`]).
    pub body: Bytes,
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client request carrying an opaque body.
    Request(Bytes),
    /// A server reply carrying an opaque body.
    Reply(Bytes),
    /// "Which machine serves `port`?"
    Locate(Port),
    /// "`machine` serves `port`."
    LocateReply(Port, MachineId),
    /// "I (the packet's source) serve `port`" — sent to a rendezvous
    /// node instead of broadcast.
    Post(Port),
    /// A batch of request bodies identified by a client-chosen id.
    BatchRequest {
        /// Client-chosen identifier echoed by the reply; with the reply
        /// port it keys the client's demultiplexer.
        id: u32,
        /// The request bodies, in entry-index order.
        entries: Vec<Bytes>,
    },
    /// The replies for a batch, in any entry order.
    BatchReply {
        /// The id of the [`Frame::BatchRequest`] being answered.
        id: u32,
        /// One entry per request entry, each tagged with its index.
        entries: Vec<BatchReplyEntry>,
    },
    /// "I (the packet's source) serve `port` at this load" — the
    /// load-aware replica registration a cluster member sends its
    /// registry node.
    PostLoad(Port, u32),
    /// "I (the packet's source) no longer serve `port`" — replica
    /// departure.
    Unpost(Port),
    /// "Which machines serve `port`? Send them all."
    LocateAll(Port),
    /// The live replica set for `port`, least-loaded first.
    LocateReplyMulti {
        /// The port the replicas serve.
        port: Port,
        /// All live replicas (at most [`MAX_LOCATE_REPLICAS`]).
        replicas: Vec<ReplicaInfo>,
    },
    /// A shard-migration operation (tags `0x0B`–`0x0D`), answered with
    /// an ordinary [`Frame::Reply`].
    Transfer(TransferOp),
}

impl Frame {
    /// Encodes the frame for transmission into a fresh buffer.
    ///
    /// Thin compatibility wrapper over
    /// [`encode_into`](Self::encode_into); hot paths take a recycled
    /// buffer from a [`BufPool`](amoeba_net::BufPool) and call
    /// `encode_into` directly so steady-state sends allocate nothing.
    /// Both produce byte-identical wire frames.
    ///
    /// # Panics
    /// As for [`encode_into`](Self::encode_into).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes the frame for transmission, appending to `buf`.
    ///
    /// # Panics
    /// Panics if a batch frame has zero entries, more than
    /// [`MAX_BATCH_ENTRIES`], or an entry longer than `u32::MAX` —
    /// all programming errors on the sending side, never reachable
    /// from received (attacker-controlled) data.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Frame::Request(body) => encode_request_into(buf, body),
            Frame::Reply(body) => encode_reply_into(buf, body),
            Frame::Locate(port) => {
                buf.extend_from_slice(&[FrameKind::Locate as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
            Frame::LocateReply(port, machine) => {
                buf.extend_from_slice(&[FrameKind::LocateReply as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
                buf.extend_from_slice(&machine.as_u32().to_be_bytes());
            }
            Frame::Post(port) => {
                buf.extend_from_slice(&[FrameKind::Post as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
            Frame::BatchRequest { id, entries } => {
                encode_batch_request_into(buf, *id, entries);
            }
            Frame::BatchReply { id, entries } => {
                batch_preamble(buf, FrameKind::BatchReply, *id, entries.len());
                for e in entries {
                    buf.extend_from_slice(&e.index.to_be_bytes());
                    buf.extend_from_slice(&[e.status as u8]);
                    let len = u32::try_from(e.body.len()).expect("batch entry fits in u32");
                    buf.extend_from_slice(&len.to_be_bytes());
                    buf.extend_from_slice(&e.body);
                }
            }
            Frame::PostLoad(port, load) => {
                buf.extend_from_slice(&[FrameKind::PostLoad as u8, CLUSTER_VERSION]);
                buf.extend_from_slice(&port.value().to_be_bytes());
                buf.extend_from_slice(&load.to_be_bytes());
            }
            Frame::Unpost(port) => {
                buf.extend_from_slice(&[FrameKind::Unpost as u8, CLUSTER_VERSION]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
            Frame::LocateAll(port) => {
                buf.extend_from_slice(&[FrameKind::LocateAll as u8, CLUSTER_VERSION]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
            Frame::LocateReplyMulti { port, replicas } => {
                assert!(
                    !replicas.is_empty(),
                    "multi locate replies must carry at least one replica"
                );
                assert!(
                    replicas.len() <= MAX_LOCATE_REPLICAS,
                    "multi locate replies carry at most {MAX_LOCATE_REPLICAS} replicas"
                );
                buf.extend_from_slice(&[FrameKind::LocateReplyMulti as u8, CLUSTER_VERSION]);
                buf.extend_from_slice(&port.value().to_be_bytes());
                buf.extend_from_slice(&[replicas.len() as u8]);
                for r in replicas {
                    buf.extend_from_slice(&r.machine.as_u32().to_be_bytes());
                    buf.extend_from_slice(&r.load.to_be_bytes());
                }
            }
            Frame::Transfer(op) => encode_transfer_into(buf, op),
        }
    }

    /// Decodes a frame, or `None` for malformed input.
    ///
    /// Malformed frames are *dropped*, not errors: on a broadcast
    /// network, noise addressed to your port is an expected condition.
    /// Batch frames with an unknown version byte, a zero or oversized
    /// entry count, a truncated entry table, or trailing bytes are all
    /// rejected here.
    pub fn decode(data: &Bytes) -> Option<Frame> {
        let (&tag, rest) = data.split_first()?;
        match FrameKind::from_u8(tag)? {
            FrameKind::Request => Some(Frame::Request(data.slice(1..))),
            FrameKind::Reply => Some(Frame::Reply(data.slice(1..))),
            FrameKind::Locate => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                Some(Frame::Locate(Port::new(raw)?))
            }
            FrameKind::LocateReply => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let machine = u32::from_be_bytes(rest.get(8..12)?.try_into().ok()?);
                Some(Frame::LocateReply(
                    Port::new(raw)?,
                    machine_from_u32(machine),
                ))
            }
            FrameKind::Post => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                Some(Frame::Post(Port::new(raw)?))
            }
            FrameKind::BatchRequest => {
                let (id, count, mut at) = decode_batch_preamble(rest)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let (body, next) = take_entry_body(data, rest, at)?;
                    entries.push(body);
                    at = next;
                }
                (at == rest.len()).then_some(Frame::BatchRequest { id, entries })
            }
            FrameKind::BatchReply => {
                let (id, count, mut at) = decode_batch_preamble(rest)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let index = u16::from_be_bytes(rest.get(at..at + 2)?.try_into().ok()?);
                    let status = BatchStatus::from_u8(*rest.get(at + 2)?)?;
                    let (body, next) = take_entry_body(data, rest, at + 3)?;
                    entries.push(BatchReplyEntry {
                        index,
                        status,
                        body,
                    });
                    at = next;
                }
                (at == rest.len()).then_some(Frame::BatchReply { id, entries })
            }
            FrameKind::PostLoad => {
                let rest = cluster_body(rest)?;
                let port = Port::new(u64::from_be_bytes(rest.get(..8)?.try_into().ok()?))?;
                let load = u32::from_be_bytes(rest.get(8..12)?.try_into().ok()?);
                (rest.len() == 12).then_some(Frame::PostLoad(port, load))
            }
            FrameKind::Unpost => {
                let rest = cluster_body(rest)?;
                let port = Port::new(u64::from_be_bytes(rest.get(..8)?.try_into().ok()?))?;
                (rest.len() == 8).then_some(Frame::Unpost(port))
            }
            FrameKind::LocateAll => {
                let rest = cluster_body(rest)?;
                let port = Port::new(u64::from_be_bytes(rest.get(..8)?.try_into().ok()?))?;
                (rest.len() == 8).then_some(Frame::LocateAll(port))
            }
            FrameKind::LocateReplyMulti => {
                let rest = cluster_body(rest)?;
                let port = Port::new(u64::from_be_bytes(rest.get(..8)?.try_into().ok()?))?;
                let count = *rest.get(8)? as usize;
                if count == 0 || count > MAX_LOCATE_REPLICAS {
                    return None;
                }
                let mut replicas = Vec::with_capacity(count);
                let mut at = 9;
                for _ in 0..count {
                    let machine = u32::from_be_bytes(rest.get(at..at + 4)?.try_into().ok()?);
                    let load = u32::from_be_bytes(rest.get(at + 4..at + 8)?.try_into().ok()?);
                    replicas.push(ReplicaInfo {
                        machine: machine_from_u32(machine),
                        load,
                    });
                    at += 8;
                }
                (at == rest.len()).then_some(Frame::LocateReplyMulti { port, replicas })
            }
            FrameKind::TransferBegin => {
                let rest = transfer_body(rest)?;
                let xfer = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let shard = *rest.get(8)?;
                (rest.len() == 9).then_some(Frame::Transfer(TransferOp::Begin { xfer, shard }))
            }
            FrameKind::TransferChunk => {
                let rest = transfer_body(rest)?;
                let xfer = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let seq = u32::from_be_bytes(rest.get(8..12)?.try_into().ok()?);
                let len = u32::from_be_bytes(rest.get(12..16)?.try_into().ok()?) as usize;
                if rest.len() != 16usize.checked_add(len)? {
                    return None; // truncated or oversized record blob
                }
                // Zero-copy slice of the received buffer: `rest` starts
                // 2 bytes into `data` (tag + version byte).
                let records = data.slice(2 + 16..2 + 16 + len);
                Some(Frame::Transfer(TransferOp::Chunk { xfer, seq, records }))
            }
            FrameKind::TransferCommit => {
                let rest = transfer_body(rest)?;
                let xfer = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let chunks = u32::from_be_bytes(rest.get(8..12)?.try_into().ok()?);
                (rest.len() == 12).then_some(Frame::Transfer(TransferOp::Commit { xfer, chunks }))
            }
        }
    }
}

/// Checks the cluster-format version byte and returns the bytes after
/// it, or `None` for an unknown version (frame dropped, like an
/// unknown tag).
fn cluster_body(rest: &[u8]) -> Option<&[u8]> {
    (*rest.first()? == CLUSTER_VERSION).then(|| &rest[1..])
}

/// Checks the transfer-format version byte and returns the bytes after
/// it, or `None` for an unknown version (frame dropped, like an
/// unknown tag).
fn transfer_body(rest: &[u8]) -> Option<&[u8]> {
    (*rest.first()? == TRANSFER_VERSION).then(|| &rest[1..])
}

/// Appends a transfer frame (`tag ‖ version ‖ op fields`); exposed to
/// the client so a migration driver encodes straight into a pooled
/// buffer.
///
/// # Panics
/// Panics if a chunk's record blob is longer than `u32::MAX` — a
/// programming error on the sending side, never reachable from
/// received data.
pub(crate) fn encode_transfer_into(buf: &mut BytesMut, op: &TransferOp) {
    match op {
        TransferOp::Begin { xfer, shard } => {
            buf.extend_from_slice(&[FrameKind::TransferBegin as u8, TRANSFER_VERSION]);
            buf.extend_from_slice(&xfer.to_be_bytes());
            buf.extend_from_slice(&[*shard]);
        }
        TransferOp::Chunk { xfer, seq, records } => {
            buf.extend_from_slice(&[FrameKind::TransferChunk as u8, TRANSFER_VERSION]);
            buf.extend_from_slice(&xfer.to_be_bytes());
            buf.extend_from_slice(&seq.to_be_bytes());
            let len = u32::try_from(records.len()).expect("transfer chunk fits in u32");
            buf.extend_from_slice(&len.to_be_bytes());
            buf.extend_from_slice(records);
        }
        TransferOp::Commit { xfer, chunks } => {
            buf.extend_from_slice(&[FrameKind::TransferCommit as u8, TRANSFER_VERSION]);
            buf.extend_from_slice(&xfer.to_be_bytes());
            buf.extend_from_slice(&chunks.to_be_bytes());
        }
    }
}

/// Appends a REQUEST frame (`tag ‖ body`) — the single hottest encode,
/// callable without constructing a [`Frame`] so the client can build it
/// straight into a pooled buffer from a borrowed body.
pub(crate) fn encode_request_into(buf: &mut BytesMut, body: &[u8]) {
    buf.extend_from_slice(&[FrameKind::Request as u8]);
    buf.extend_from_slice(body);
}

/// Appends a REPLY frame (`tag ‖ body`); see [`encode_request_into`].
pub(crate) fn encode_reply_into(buf: &mut BytesMut, body: &[u8]) {
    buf.extend_from_slice(&[FrameKind::Reply as u8]);
    buf.extend_from_slice(body);
}

/// Appends a BATCH_REQUEST frame from a borrowed entry table, so the
/// batching client encodes straight from its callers' bodies instead of
/// first copying them into an owned [`Frame`].
///
/// # Panics
/// As for [`Frame::encode_into`] on empty/oversized batches.
pub(crate) fn encode_batch_request_into(buf: &mut BytesMut, id: u32, entries: &[Bytes]) {
    batch_preamble(buf, FrameKind::BatchRequest, id, entries.len());
    for body in entries {
        let len = u32::try_from(body.len()).expect("batch entry fits in u32");
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(body);
    }
}

/// Writes `tag ‖ version ‖ id ‖ count`, the common batch-frame prefix.
fn batch_preamble(buf: &mut BytesMut, kind: FrameKind, id: u32, count: usize) {
    assert!(count > 0, "batch frames must carry at least one entry");
    assert!(
        count <= MAX_BATCH_ENTRIES,
        "batch frames carry at most {MAX_BATCH_ENTRIES} entries"
    );
    buf.extend_from_slice(&[kind as u8, BATCH_VERSION]);
    buf.extend_from_slice(&id.to_be_bytes());
    buf.extend_from_slice(&(count as u16).to_be_bytes());
}

/// Parses `version ‖ id ‖ count` from the bytes after the tag; returns
/// `(id, count, offset of the first entry)`.
fn decode_batch_preamble(rest: &[u8]) -> Option<(u32, usize, usize)> {
    if *rest.first()? != BATCH_VERSION {
        return None; // unknown batch format version
    }
    let id = u32::from_be_bytes(rest.get(1..5)?.try_into().ok()?);
    let count = u16::from_be_bytes(rest.get(5..7)?.try_into().ok()?) as usize;
    if count == 0 || count > MAX_BATCH_ENTRIES {
        return None;
    }
    Some((id, count, 7))
}

/// Reads a `len:u32 ‖ body` entry starting at `rest[at..]`; returns the
/// body as a zero-copy slice of `data` and the offset past the entry.
/// (`rest` is `data` minus the tag byte, so slice indexes shift by 1.)
fn take_entry_body(data: &Bytes, rest: &[u8], at: usize) -> Option<(Bytes, usize)> {
    let len = u32::from_be_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
    let end = (at + 4).checked_add(len)?;
    if end > rest.len() {
        return None; // truncated entry
    }
    Some((data.slice(1 + at + 4..1 + end), end))
}

// MachineId's constructor is crate-private in amoeba-net by design; the
// only way to *mint* one is to attach to a network. For decoding we
// round-trip through the public Display/as_u32 pair via this helper.
fn machine_from_u32(v: u32) -> MachineId {
    // Safety of representation: MachineId is a transparent u32 newtype
    // with a public as_u32; amoeba-net exposes From<u32> for decoding.
    MachineId::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let f = Frame::Request(Bytes::from_static(b"hello"));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn reply_roundtrip() {
        let f = Frame::Reply(Bytes::from_static(b""));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn locate_roundtrip() {
        let f = Frame::Locate(Port::new(0xABCDEF).unwrap());
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn locate_reply_roundtrip() {
        let f = Frame::LocateReply(Port::new(7).unwrap(), machine_from_u32(99));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn post_roundtrip() {
        let f = Frame::Post(Port::new(0x909).unwrap());
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn batch_request_roundtrip() {
        let f = Frame::BatchRequest {
            id: 0xDEAD_BEEF,
            entries: vec![
                Bytes::from_static(b"first"),
                Bytes::new(),
                Bytes::from_static(b"third entry"),
            ],
        };
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn batch_reply_roundtrip_out_of_order() {
        let f = Frame::BatchReply {
            id: 7,
            entries: vec![
                BatchReplyEntry {
                    index: 2,
                    status: BatchStatus::Ok,
                    body: Bytes::from_static(b"late"),
                },
                BatchReplyEntry {
                    index: 0,
                    status: BatchStatus::Rejected,
                    body: Bytes::new(),
                },
                BatchReplyEntry {
                    index: 1,
                    status: BatchStatus::Ok,
                    body: Bytes::from_static(b"ok"),
                },
            ],
        };
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    /// The example frames from `docs/PROTOCOL.md`, byte for byte. If
    /// this test fails, either the encoder or the documentation is
    /// wrong — fix whichever diverged.
    #[test]
    fn documented_example_frames() {
        // PROTOCOL.md "Worked example": a 2-entry batch request with
        // id 0x00000007 carrying bodies "hi" and "!".
        let documented: &[u8] = &[
            0x05, // tag: BATCH_REQUEST
            0x01, // batch-format version 1
            0x00, 0x00, 0x00, 0x07, // batch id 7
            0x00, 0x02, // count 2
            0x00, 0x00, 0x00, 0x02, // entry 0 length 2
            b'h', b'i', // entry 0 body
            0x00, 0x00, 0x00, 0x01, // entry 1 length 1
            b'!', // entry 1 body
        ];
        let expect = Frame::BatchRequest {
            id: 7,
            entries: vec![Bytes::from_static(b"hi"), Bytes::from_static(b"!")],
        };
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));

        // PROTOCOL.md "Worked example": the matching reply, entry 1
        // first (answered out of order), entry 0 rejected.
        let documented: &[u8] = &[
            0x06, // tag: BATCH_REPLY
            0x01, // batch-format version 1
            0x00, 0x00, 0x00, 0x07, // batch id 7
            0x00, 0x02, // count 2
            0x00, 0x01, // entry index 1
            0x00, // status: OK
            0x00, 0x00, 0x00, 0x02, // length 2
            b'o', b'k', // body
            0x00, 0x00, // entry index 0
            0x01, // status: REJECTED
            0x00, 0x00, 0x00, 0x00, // length 0
        ];
        let expect = Frame::BatchReply {
            id: 7,
            entries: vec![
                BatchReplyEntry {
                    index: 1,
                    status: BatchStatus::Ok,
                    body: Bytes::from_static(b"ok"),
                },
                BatchReplyEntry {
                    index: 0,
                    status: BatchStatus::Rejected,
                    body: Bytes::new(),
                },
            ],
        };
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Frame::decode(&Bytes::new()), None);
        assert_eq!(Frame::decode(&Bytes::from_static(&[9, 1, 2])), None);
        assert_eq!(Frame::decode(&Bytes::from_static(&[2, 1])), None); // short locate
        assert_eq!(
            Frame::decode(&Bytes::from_static(&[3, 0, 0, 0, 0, 0, 0, 0, 1])),
            None
        );
    }

    #[test]
    fn hostile_batch_frames_rejected() {
        let good = Frame::BatchRequest {
            id: 1,
            entries: vec![Bytes::from_static(b"abc")],
        }
        .encode();

        // Unknown version byte.
        let mut bad = good.to_vec();
        bad[1] = 2;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Zero entry count.
        let mut bad = good.to_vec();
        bad[6] = 0;
        bad[7] = 0;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Count larger than MAX_BATCH_ENTRIES.
        let mut bad = good.to_vec();
        bad[6] = 0xFF;
        bad[7] = 0xFF;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Count claims more entries than the buffer holds.
        let mut bad = good.to_vec();
        bad[7] = 2;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Entry length overruns the buffer.
        let mut bad = good.to_vec();
        bad[11] = 0xFF;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Entry length ~u32::MAX must not overflow offset math.
        let mut bad = good.to_vec();
        bad[8] = 0xFF;
        bad[9] = 0xFF;
        bad[10] = 0xFF;
        bad[11] = 0xFF;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Trailing garbage after the last entry.
        let mut bad = good.to_vec();
        bad.push(0);
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Truncated preamble.
        assert_eq!(Frame::decode(&Bytes::from_static(&[5, 1, 0, 0])), None);

        // Reply with an unknown status byte.
        let reply = Frame::BatchReply {
            id: 1,
            entries: vec![BatchReplyEntry {
                index: 0,
                status: BatchStatus::Ok,
                body: Bytes::new(),
            }],
        }
        .encode();
        let mut bad = reply.to_vec();
        bad[10] = 9; // status byte of entry 0
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);
    }

    #[test]
    fn cluster_frame_roundtrips() {
        let frames = [
            Frame::PostLoad(Port::new(0x5E21CE).unwrap(), 42),
            Frame::Unpost(Port::new(0x5E21CE).unwrap()),
            Frame::LocateAll(Port::new(0xF00D).unwrap()),
            Frame::LocateReplyMulti {
                port: Port::new(0xF00D).unwrap(),
                replicas: vec![
                    ReplicaInfo {
                        machine: machine_from_u32(3),
                        load: 0,
                    },
                    ReplicaInfo {
                        machine: machine_from_u32(9),
                        load: 17,
                    },
                ],
            },
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()), Some(f));
        }
    }

    /// The cluster example frames from `docs/PROTOCOL.md`, byte for
    /// byte. If this fails, either the encoder or the documentation is
    /// wrong — fix whichever diverged.
    #[test]
    fn documented_cluster_example_frames() {
        // PROTOCOL.md "Worked example (cluster frames)": machine 5
        // registers port 0x0000C1A57E04 at load 3.
        let documented: &[u8] = &[
            0x07, // tag: POST_LOAD
            0x01, // cluster-format version 1
            0x00, 0x00, 0x00, 0x00, 0xC1, 0xA5, 0x7E, 0x04, // port
            0x00, 0x00, 0x00, 0x03, // load 3
        ];
        let expect = Frame::PostLoad(Port::new(0xC1A5_7E04).unwrap(), 3);
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));

        // The registry's answer to a LOCATE_ALL for the same port: two
        // replicas, machine 5 at load 3 and machine 9 at load 8,
        // least-loaded first.
        let documented: &[u8] = &[
            0x0A, // tag: LOCATE_REPLY_MULTI
            0x01, // cluster-format version 1
            0x00, 0x00, 0x00, 0x00, 0xC1, 0xA5, 0x7E, 0x04, // port
            0x02, // replica count 2
            0x00, 0x00, 0x00, 0x05, // machine 5
            0x00, 0x00, 0x00, 0x03, // load 3
            0x00, 0x00, 0x00, 0x09, // machine 9
            0x00, 0x00, 0x00, 0x08, // load 8
        ];
        let expect = Frame::LocateReplyMulti {
            port: Port::new(0xC1A5_7E04).unwrap(),
            replicas: vec![
                ReplicaInfo {
                    machine: machine_from_u32(5),
                    load: 3,
                },
                ReplicaInfo {
                    machine: machine_from_u32(9),
                    load: 8,
                },
            ],
        };
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));
    }

    #[test]
    fn hostile_cluster_frames_rejected() {
        let good = Frame::LocateReplyMulti {
            port: Port::new(0xF00D).unwrap(),
            replicas: vec![ReplicaInfo {
                machine: machine_from_u32(1),
                load: 0,
            }],
        }
        .encode();

        // Unknown cluster-format version.
        let mut bad = good.to_vec();
        bad[1] = 2;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Zero replica count.
        let mut bad = good.to_vec();
        bad[10] = 0;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Count exceeding MAX_LOCATE_REPLICAS.
        let mut bad = good.to_vec();
        bad[10] = (MAX_LOCATE_REPLICAS + 1) as u8;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Count claiming more replicas than the buffer holds.
        let mut bad = good.to_vec();
        bad[10] = 2;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Trailing garbage after the last replica.
        let mut bad = good.to_vec();
        bad.push(0);
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Truncated POST_LOAD (missing the load field).
        let post = Frame::PostLoad(Port::new(7).unwrap(), 1).encode();
        assert_eq!(
            Frame::decode(&Bytes::from(post[..post.len() - 2].to_vec())),
            None
        );
        // Trailing garbage on a fixed-size cluster frame.
        let mut bad = Frame::Unpost(Port::new(7).unwrap()).encode().to_vec();
        bad.push(0);
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);
        // Reserved port value (broadcast) inside a cluster frame.
        let mut bad = Frame::LocateAll(Port::new(7).unwrap()).encode().to_vec();
        for b in &mut bad[2..10] {
            *b = 0;
        }
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);
    }

    #[test]
    fn transfer_frame_roundtrips() {
        let frames = [
            Frame::Transfer(TransferOp::Begin {
                xfer: 0xFEED_F00D_0000_0001,
                shard: 13,
            }),
            Frame::Transfer(TransferOp::Chunk {
                xfer: 0xFEED_F00D_0000_0001,
                seq: 2,
                records: Bytes::from_static(b"opaque record bytes"),
            }),
            Frame::Transfer(TransferOp::Chunk {
                xfer: 1,
                seq: 0,
                records: Bytes::new(),
            }),
            Frame::Transfer(TransferOp::Commit {
                xfer: 0xFEED_F00D_0000_0001,
                chunks: 3,
            }),
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()), Some(f));
        }
    }

    /// The transfer example frames from `docs/PROTOCOL.md`, byte for
    /// byte. If this fails, either the encoder or the documentation is
    /// wrong — fix whichever diverged.
    #[test]
    fn documented_transfer_example_frames() {
        // PROTOCOL.md "Worked example (transfer frames)": transfer
        // 0x000000000000002A opens for table shard 5.
        let documented: &[u8] = &[
            0x0B, // tag: TRANSFER_BEGIN
            0x01, // transfer-format version 1
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2A, // xfer 42
            0x05, // shard 5
        ];
        let expect = Frame::Transfer(TransferOp::Begin { xfer: 42, shard: 5 });
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));

        // Chunk 0 of the same transfer, carrying three record bytes.
        let documented: &[u8] = &[
            0x0C, // tag: TRANSFER_CHUNK
            0x01, // transfer-format version 1
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2A, // xfer 42
            0x00, 0x00, 0x00, 0x00, // seq 0
            0x00, 0x00, 0x00, 0x03, // record blob length 3
            0xAA, 0xBB, 0xCC, // record bytes (opaque)
        ];
        let expect = Frame::Transfer(TransferOp::Chunk {
            xfer: 42,
            seq: 0,
            records: Bytes::from_static(&[0xAA, 0xBB, 0xCC]),
        });
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));

        // The commit: one chunk in total.
        let documented: &[u8] = &[
            0x0D, // tag: TRANSFER_COMMIT
            0x01, // transfer-format version 1
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2A, // xfer 42
            0x00, 0x00, 0x00, 0x01, // chunk count 1
        ];
        let expect = Frame::Transfer(TransferOp::Commit {
            xfer: 42,
            chunks: 1,
        });
        assert_eq!(expect.encode(), Bytes::from_static(documented));
        assert_eq!(Frame::decode(&Bytes::from_static(documented)), Some(expect));
    }

    #[test]
    fn hostile_transfer_frames_rejected() {
        let begin = Frame::Transfer(TransferOp::Begin { xfer: 7, shard: 1 }).encode();

        // Unknown transfer-format version.
        let mut bad = begin.to_vec();
        bad[1] = 2;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Truncated BEGIN (missing the shard byte).
        assert_eq!(
            Frame::decode(&Bytes::from(begin[..begin.len() - 1].to_vec())),
            None
        );
        // Trailing garbage on a fixed-size transfer frame.
        let mut bad = begin.to_vec();
        bad.push(0);
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        let chunk = Frame::Transfer(TransferOp::Chunk {
            xfer: 7,
            seq: 0,
            records: Bytes::from_static(b"abc"),
        })
        .encode();

        // Record-blob length overruns the buffer.
        let mut bad = chunk.to_vec();
        bad[17] = 0xFF;
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Record-blob length ~u32::MAX must not overflow offset math.
        let mut bad = chunk.to_vec();
        for b in &mut bad[14..18] {
            *b = 0xFF;
        }
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Record-blob shorter than its length field claims.
        let mut bad = chunk.to_vec();
        bad.truncate(bad.len() - 1);
        assert_eq!(Frame::decode(&Bytes::from(bad)), None);

        // Truncated COMMIT (missing the chunk count).
        let commit = Frame::Transfer(TransferOp::Commit { xfer: 7, chunks: 2 }).encode();
        assert_eq!(
            Frame::decode(&Bytes::from(commit[..commit.len() - 2].to_vec())),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn encoding_oversized_replica_set_panics() {
        let _ = Frame::LocateReplyMulti {
            port: Port::new(1).unwrap(),
            replicas: vec![
                ReplicaInfo {
                    machine: machine_from_u32(0),
                    load: 0,
                };
                MAX_LOCATE_REPLICAS + 1
            ],
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn encoding_empty_batch_panics() {
        let _ = Frame::BatchRequest {
            id: 0,
            entries: Vec::new(),
        }
        .encode();
    }
}
