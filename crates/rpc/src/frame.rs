//! The tiny wire framing used above raw packets.
//!
//! One tag byte distinguishes requests, replies and the two LOCATE
//! messages; everything else (capabilities, opcodes, parameters) lives
//! in the opaque body and is defined by `amoeba-server`.

use amoeba_net::{MachineId, Port};
use bytes::{Bytes, BytesMut};

/// Frame discriminator tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A client request; body is server-defined.
    Request = 0,
    /// A server reply; body is server-defined.
    Reply = 1,
    /// Broadcast "who serves this port?"; body is the 48-bit port.
    Locate = 2,
    /// Answer to a LOCATE; body is the port and the answering machine.
    LocateReply = 3,
    /// Rendezvous registration: "the sending machine serves this port"
    /// (match-making without broadcast). Body is the 48-bit port.
    Post = 4,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Reply),
            2 => Some(FrameKind::Locate),
            3 => Some(FrameKind::LocateReply),
            4 => Some(FrameKind::Post),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client request carrying an opaque body.
    Request(Bytes),
    /// A server reply carrying an opaque body.
    Reply(Bytes),
    /// "Which machine serves `port`?"
    Locate(Port),
    /// "`machine` serves `port`."
    LocateReply(Port, MachineId),
    /// "I (the packet's source) serve `port`" — sent to a rendezvous
    /// node instead of broadcast.
    Post(Port),
}

impl Frame {
    /// Encodes the frame for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Frame::Request(body) => {
                buf.extend_from_slice(&[FrameKind::Request as u8]);
                buf.extend_from_slice(body);
            }
            Frame::Reply(body) => {
                buf.extend_from_slice(&[FrameKind::Reply as u8]);
                buf.extend_from_slice(body);
            }
            Frame::Locate(port) => {
                buf.extend_from_slice(&[FrameKind::Locate as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
            Frame::LocateReply(port, machine) => {
                buf.extend_from_slice(&[FrameKind::LocateReply as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
                buf.extend_from_slice(&machine.as_u32().to_be_bytes());
            }
            Frame::Post(port) => {
                buf.extend_from_slice(&[FrameKind::Post as u8]);
                buf.extend_from_slice(&port.value().to_be_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes a frame, or `None` for malformed input.
    ///
    /// Malformed frames are *dropped*, not errors: on a broadcast
    /// network, noise addressed to your port is an expected condition.
    pub fn decode(data: &Bytes) -> Option<Frame> {
        let (&tag, rest) = data.split_first()?;
        match FrameKind::from_u8(tag)? {
            FrameKind::Request => Some(Frame::Request(data.slice(1..))),
            FrameKind::Reply => Some(Frame::Reply(data.slice(1..))),
            FrameKind::Locate => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                Some(Frame::Locate(Port::new(raw)?))
            }
            FrameKind::LocateReply => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let machine = u32::from_be_bytes(rest.get(8..12)?.try_into().ok()?);
                Some(Frame::LocateReply(
                    Port::new(raw)?,
                    machine_from_u32(machine),
                ))
            }
            FrameKind::Post => {
                let raw = u64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                Some(Frame::Post(Port::new(raw)?))
            }
        }
    }
}

// MachineId's constructor is crate-private in amoeba-net by design; the
// only way to *mint* one is to attach to a network. For decoding we
// round-trip through the public Display/as_u32 pair via this helper.
fn machine_from_u32(v: u32) -> MachineId {
    // Safety of representation: MachineId is a transparent u32 newtype
    // with a public as_u32; amoeba-net exposes From<u32> for decoding.
    MachineId::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let f = Frame::Request(Bytes::from_static(b"hello"));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn reply_roundtrip() {
        let f = Frame::Reply(Bytes::from_static(b""));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn locate_roundtrip() {
        let f = Frame::Locate(Port::new(0xABCDEF).unwrap());
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn locate_reply_roundtrip() {
        let f = Frame::LocateReply(Port::new(7).unwrap(), machine_from_u32(99));
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn post_roundtrip() {
        let f = Frame::Post(Port::new(0x909).unwrap());
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Frame::decode(&Bytes::new()), None);
        assert_eq!(Frame::decode(&Bytes::from_static(&[9, 1, 2])), None);
        assert_eq!(Frame::decode(&Bytes::from_static(&[2, 1])), None); // short locate
        assert_eq!(
            Frame::decode(&Bytes::from_static(&[3, 0, 0, 0, 0, 0, 0, 0, 1])),
            None
        );
    }
}
