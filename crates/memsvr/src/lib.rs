//! The Amoeba **memory server** (§3.1).
//!
//! "The memory server is a process that manages physical memory and
//! processes at the lowest level. It is actually part of the kernel
//! present on each machine, but it communicates with other processes via
//! the normal message protocol so that its clients do not perceive it as
//! being special in any way."
//!
//! A parent builds a child process by CREATE SEGMENT + WRITE for each of
//! the child's segments (text, data, stack), then MAKE PROCESS with the
//! segment capabilities; the returned **process capability** starts,
//! stops and generally manipulates the child. Directing the CREATE
//! SEGMENT requests at a *remote* machine's memory server creates the
//! child there — "a more convenient and efficient interface than the
//! traditional FORK + EXEC" (benchmark `memsvr_process`).
//!
//! The same segment API doubles as the paper's **electronic disk**: a
//! segment of the required size, read and written by local or remote
//! processes (see `examples/process_loader.rs`).
//!
//! # Example
//!
//! ```
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_memsvr::{MemClient, MemServer, ProcState};
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Commutative));
//! let mem = MemClient::open(&net, runner.put_port());
//!
//! let text = mem.create_segment(4096).unwrap();
//! mem.write(&text, 0, b"\x7fELF...").unwrap();
//! let stack = mem.create_segment(8192).unwrap();
//! let proc_cap = mem.make_process(&[text, stack]).unwrap();
//! mem.start(&proc_cap).unwrap();
//! assert_eq!(mem.status(&proc_cap).unwrap(), ProcState::Running);
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};

/// Memory-server operation codes.
pub mod ops {
    /// CREATE SEGMENT; anonymous. Params: `u64 size`. Reply: capability.
    pub const CREATE_SEGMENT: u32 = 1;
    /// READ from a segment. Params: `u64 offset`, `u32 len`.
    pub const READ: u32 = 2;
    /// WRITE (load data) into a segment. Params: `u64 offset`, bytes.
    pub const WRITE: u32 = 3;
    /// Segment size. Reply: `u64`.
    pub const SIZE: u32 = 4;
    /// Delete a segment (requires DELETE).
    pub const DELETE_SEGMENT: u32 = 5;
    /// MAKE PROCESS. Params: `u32 n`, then n segment capabilities.
    /// Reply: process capability.
    pub const MAKE_PROCESS: u32 = 6;
    /// Start a (constructed or stopped) process. Requires WRITE.
    pub const START: u32 = 7;
    /// Stop a running process. Requires WRITE.
    pub const STOP: u32 = 8;
    /// Process state. Reply: `u32` (see [`ProcState`]).
    ///
    /// [`ProcState`]: super::ProcState
    pub const STATUS: u32 = 9;
    /// Kill a process and free its slot (requires DELETE).
    pub const KILL: u32 = 10;
}

/// Lifecycle of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ProcState {
    /// Built but never started.
    Constructed = 0,
    /// Running.
    Running = 1,
    /// Stopped (may be restarted).
    Stopped = 2,
}

impl ProcState {
    /// Parses the wire form.
    pub fn from_u32(v: u32) -> Option<ProcState> {
        match v {
            0 => Some(ProcState::Constructed),
            1 => Some(ProcState::Running),
            2 => Some(ProcState::Stopped),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum MemObject {
    Segment(Vec<u8>),
    Process {
        segments: Vec<Capability>,
        state: ProcState,
    },
}

/// The memory server.
#[derive(Debug)]
pub struct MemServer {
    table: ObjectTable<MemObject>,
    /// Total bytes of segment memory this server will hand out.
    memory_limit: u64,
    /// Bytes currently handed out; atomic because CREATE/DELETE run on
    /// concurrent dispatch workers.
    allocated: AtomicU64,
}

impl MemServer {
    /// A server with a 256 MiB simulated physical memory.
    pub fn new(scheme: SchemeKind) -> MemServer {
        Self::with_memory(scheme, 256 << 20)
    }

    /// A server with an explicit memory limit.
    pub fn with_memory(scheme: SchemeKind, memory_limit: u64) -> MemServer {
        MemServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            memory_limit,
            allocated: AtomicU64::new(0),
        }
    }

    fn create_segment(&self, req: &Request) -> Reply {
        let Some(size) = wire::Reader::new(&req.params).u64() else {
            return Reply::status(Status::BadRequest);
        };
        // Atomically reserve the memory: concurrent CREATEs must never
        // overshoot the limit between check and commit.
        let limit = self.memory_limit;
        let reserved = self
            .allocated
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                cur.checked_add(size).filter(|&next| next <= limit)
            });
        if reserved.is_err() {
            return Reply::status(Status::NoSpace);
        }
        let (_, cap) = self
            .table
            .create(MemObject::Segment(vec![0; size as usize]));
        Reply::ok(wire::Writer::new().cap(&cap).finish())
    }

    fn read(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(len)) = (r.u64(), r.u32()) else {
            return Reply::status(Status::BadRequest);
        };
        let result = self
            .table
            .with_object(&req.cap, Rights::READ, |obj| match obj {
                MemObject::Segment(data) => {
                    let end = (offset as usize).checked_add(len as usize)?;
                    if end > data.len() {
                        return None;
                    }
                    Some(Bytes::copy_from_slice(&data[offset as usize..end]))
                }
                MemObject::Process { .. } => None,
            });
        match result {
            Ok(Some(data)) => Reply::ok(data),
            Ok(None) => Reply::status(Status::OutOfRange),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn write(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(data)) = (r.u64(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        let result = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |obj| match obj {
                MemObject::Segment(seg) => {
                    let end = (offset as usize).checked_add(data.len())?;
                    if end > seg.len() {
                        return None;
                    }
                    seg[offset as usize..end].copy_from_slice(data);
                    Some(())
                }
                MemObject::Process { .. } => None,
            });
        match result {
            Ok(Some(())) => Reply::ok(Bytes::new()),
            Ok(None) => Reply::status(Status::OutOfRange),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn size(&self, req: &Request) -> Reply {
        let result = self
            .table
            .with_object(&req.cap, Rights::READ, |obj| match obj {
                MemObject::Segment(data) => Some(data.len() as u64),
                MemObject::Process { .. } => None,
            });
        match result {
            Ok(Some(s)) => Reply::ok(wire::Writer::new().u64(s).finish()),
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn delete_segment(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(MemObject::Segment(data)) => {
                self.allocated
                    .fetch_sub(data.len() as u64, Ordering::AcqRel);
                Reply::ok(Bytes::new())
            }
            Ok(proc_obj @ MemObject::Process { .. }) => {
                // Shouldn't delete a process via the segment op; undo is
                // impossible after delete, so treat as kill.
                drop(proc_obj);
                Reply::ok(Bytes::new())
            }
            Err(e) => Reply::status(e.into()),
        }
    }

    fn make_process(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let Some(n) = r.u32() else {
            return Reply::status(Status::BadRequest);
        };
        let mut segments = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let Some(cap) = r.cap() else {
                return Reply::status(Status::BadRequest);
            };
            segments.push(cap);
        }
        // Every segment capability must be genuine, on this server, and
        // grant at least READ (the child's memory image is loaded from
        // them).
        for cap in &segments {
            let ok = self.table.with_object(cap, Rights::READ, |obj| {
                matches!(obj, MemObject::Segment(_))
            });
            match ok {
                Ok(true) => {}
                Ok(false) => return Reply::status(Status::BadRequest),
                Err(e) => return Reply::status(e.into()),
            }
        }
        let (_, cap) = self.table.create(MemObject::Process {
            segments,
            state: ProcState::Constructed,
        });
        Reply::ok(wire::Writer::new().cap(&cap).finish())
    }

    fn set_state(&self, req: &Request, target: ProcState) -> Reply {
        let result = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |obj| match obj {
                MemObject::Process { state, .. } => {
                    let legal = matches!(
                        (*state, target),
                        (ProcState::Constructed, ProcState::Running)
                            | (ProcState::Stopped, ProcState::Running)
                            | (ProcState::Running, ProcState::Stopped)
                    );
                    if legal {
                        *state = target;
                    }
                    Some(legal)
                }
                MemObject::Segment(_) => None,
            });
        match result {
            Ok(Some(true)) => Reply::ok(Bytes::new()),
            Ok(Some(false)) => Reply::status(Status::Conflict),
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn status(&self, req: &Request) -> Reply {
        let result = self
            .table
            .with_object(&req.cap, Rights::READ, |obj| match obj {
                MemObject::Process { state, segments } => {
                    Some((*state as u32, segments.len() as u32))
                }
                MemObject::Segment(_) => None,
            });
        match result {
            Ok(Some((s, nsegs))) => Reply::ok(wire::Writer::new().u32(s).u32(nsegs).finish()),
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn kill(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(MemObject::Process { .. }) => Reply::ok(Bytes::new()),
            Ok(seg @ MemObject::Segment(_)) => {
                if let MemObject::Segment(data) = seg {
                    self.allocated
                        .fetch_sub(data.len() as u64, Ordering::AcqRel);
                }
                Reply::ok(Bytes::new())
            }
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for MemServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE_SEGMENT => self.create_segment(req),
            ops::READ => self.read(req),
            ops::WRITE => self.write(req),
            ops::SIZE => self.size(req),
            ops::DELETE_SEGMENT => self.delete_segment(req),
            ops::MAKE_PROCESS => self.make_process(req),
            ops::START => self.set_state(req, ProcState::Running),
            ops::STOP => self.set_state(req, ProcState::Stopped),
            ops::STATUS => self.status(req),
            ops::KILL => self.kill(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A typed client for the memory server.
#[derive(Debug)]
pub struct MemClient {
    svc: ServiceClient,
    port: Port,
}

impl MemClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> MemClient {
        MemClient {
            svc: ServiceClient::open(net),
            port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> MemClient {
        MemClient { svc, port }
    }

    /// The server's put-port.
    pub fn port(&self) -> Port {
        self.port
    }

    /// CREATE SEGMENT of `size` zeroed bytes.
    ///
    /// # Errors
    /// `NoSpace` past the server's memory limit.
    pub fn create_segment(&self, size: u64) -> Result<Capability, ClientError> {
        let body = self.svc.call_anonymous(
            self.port,
            ops::CREATE_SEGMENT,
            wire::Writer::new().u64(size).finish(),
        )?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Reads `len` bytes at `offset` from a segment.
    ///
    /// # Errors
    /// `OutOfRange` beyond the segment; rights/validation errors.
    pub fn read(&self, seg: &Capability, offset: u64, len: u32) -> Result<Vec<u8>, ClientError> {
        let body = self.svc.call(
            seg,
            ops::READ,
            wire::Writer::new().u64(offset).u32(len).finish(),
        )?;
        Ok(body.to_vec())
    }

    /// Loads `data` into a segment at `offset`.
    ///
    /// # Errors
    /// `OutOfRange` beyond the segment; rights/validation errors.
    pub fn write(&self, seg: &Capability, offset: u64, data: &[u8]) -> Result<(), ClientError> {
        self.svc.call(
            seg,
            ops::WRITE,
            wire::Writer::new().u64(offset).bytes(data).finish(),
        )?;
        Ok(())
    }

    /// The segment's size in bytes.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn size(&self, seg: &Capability) -> Result<u64, ClientError> {
        let body = self.svc.call(seg, ops::SIZE, Bytes::new())?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// Frees a segment.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn delete_segment(&self, seg: &Capability) -> Result<(), ClientError> {
        self.svc.call(seg, ops::DELETE_SEGMENT, Bytes::new())?;
        Ok(())
    }

    /// MAKE PROCESS from already-loaded segments.
    ///
    /// # Errors
    /// `BadRequest` if any capability is not a readable segment on this
    /// server.
    pub fn make_process(&self, segments: &[Capability]) -> Result<Capability, ClientError> {
        let mut w = wire::Writer::new().u32(segments.len() as u32);
        for seg in segments {
            w = w.cap(seg);
        }
        let body = self
            .svc
            .call_anonymous(self.port, ops::MAKE_PROCESS, w.finish())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Starts the process.
    ///
    /// # Errors
    /// `Conflict` if already running; rights/validation errors.
    pub fn start(&self, proc_cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(proc_cap, ops::START, Bytes::new())?;
        Ok(())
    }

    /// Stops the process.
    ///
    /// # Errors
    /// `Conflict` unless running; rights/validation errors.
    pub fn stop(&self, proc_cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(proc_cap, ops::STOP, Bytes::new())?;
        Ok(())
    }

    /// The process's lifecycle state.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn status(&self, proc_cap: &Capability) -> Result<ProcState, ClientError> {
        Ok(self.status_full(proc_cap)?.0)
    }

    /// The process's state together with its segment count.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn status_full(&self, proc_cap: &Capability) -> Result<(ProcState, u32), ClientError> {
        let body = self.svc.call(proc_cap, ops::STATUS, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        let raw = r.u32().ok_or(ClientError::Malformed)?;
        let nsegs = r.u32().ok_or(ClientError::Malformed)?;
        let state = ProcState::from_u32(raw).ok_or(ClientError::Malformed)?;
        Ok((state, nsegs))
    }

    /// Kills the process.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn kill(&self, proc_cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(proc_cap, ops::KILL, Bytes::new())?;
        Ok(())
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup() -> (Network, ServiceRunner, MemClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::OneWay));
        let client = MemClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn segment_load_and_readback() {
        let (_n, runner, mem) = setup();
        let seg = mem.create_segment(1024).unwrap();
        assert_eq!(mem.size(&seg).unwrap(), 1024);
        mem.write(&seg, 100, b"text section").unwrap();
        assert_eq!(&mem.read(&seg, 100, 12).unwrap(), b"text section");
        runner.stop();
    }

    #[test]
    fn segment_bounds_enforced() {
        let (_n, runner, mem) = setup();
        let seg = mem.create_segment(16).unwrap();
        assert_eq!(
            mem.write(&seg, 10, b"too much data").unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        assert_eq!(
            mem.read(&seg, 0, 17).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        runner.stop();
    }

    #[test]
    fn memory_limit_enforced_and_reclaimed() {
        let net = Network::new();
        let runner =
            ServiceRunner::spawn_open(&net, MemServer::with_memory(SchemeKind::Simple, 1000));
        let mem = MemClient::open(&net, runner.put_port());
        let a = mem.create_segment(600).unwrap();
        assert_eq!(
            mem.create_segment(600).unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );
        mem.delete_segment(&a).unwrap();
        assert!(mem.create_segment(600).is_ok());
        runner.stop();
    }

    #[test]
    fn full_process_lifecycle() {
        let (_n, runner, mem) = setup();
        let text = mem.create_segment(128).unwrap();
        let data = mem.create_segment(64).unwrap();
        let stack = mem.create_segment(256).unwrap();
        mem.write(&text, 0, b"code").unwrap();
        let p = mem.make_process(&[text, data, stack]).unwrap();
        assert_eq!(mem.status(&p).unwrap(), ProcState::Constructed);
        mem.start(&p).unwrap();
        assert_eq!(mem.status(&p).unwrap(), ProcState::Running);
        // Double start is a state conflict.
        assert_eq!(
            mem.start(&p).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        mem.stop(&p).unwrap();
        assert_eq!(mem.status(&p).unwrap(), ProcState::Stopped);
        mem.start(&p).unwrap();
        mem.kill(&p).unwrap();
        assert!(mem.status(&p).is_err());
        runner.stop();
    }

    #[test]
    fn make_process_rejects_bogus_segments() {
        let (_n, runner, mem) = setup();
        let real = mem.create_segment(8).unwrap();
        let forged = real.with_check(real.check ^ 1);
        assert!(matches!(
            mem.make_process(&[real, forged]).unwrap_err(),
            ClientError::Status(Status::Forged)
        ));
        runner.stop();
    }

    #[test]
    fn make_process_rejects_write_only_segments() {
        // Segments must be readable to be loadable into a child.
        let (_n, runner, mem) = setup();
        let seg = mem.create_segment(8).unwrap();
        let wo = mem.service().restrict(&seg, Rights::WRITE).unwrap();
        assert_eq!(
            mem.make_process(&[wo]).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn process_cap_cannot_be_read_as_segment() {
        let (_n, runner, mem) = setup();
        let seg = mem.create_segment(8).unwrap();
        let p = mem.make_process(&[seg]).unwrap();
        assert_eq!(
            mem.read(&p, 0, 1).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        assert_eq!(
            mem.size(&p).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        runner.stop();
    }

    #[test]
    fn electronic_disk_usage() {
        // "An electronic disk of the required size is created using
        // CREATE SEGMENT, and then can be read and written."
        let (net, runner, mem) = setup();
        let disk = mem.create_segment(64 * 1024).unwrap();
        mem.write(&disk, 4096, b"sector data").unwrap();
        // A *different* (remote) process reads it back.
        let other = MemClient::open(&net, mem.port());
        assert_eq!(&other.read(&disk, 4096, 11).unwrap(), b"sector data");
        runner.stop();
    }
}
