//! The cluster registry: rendezvous nodes that store `(port, machine,
//! load)` replica registrations and answer replicated LOCATE queries.

use amoeba_net::{Network, Port};
use amoeba_rpc::{Matchmaker, PlacementPolicy, RendezvousNode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A running set of rendezvous registry nodes for a cluster.
///
/// Replicas register `(port, machine, load)` via
/// [`ServiceRunner::register`](amoeba_server::ServiceRunner::register);
/// clients resolve the live replica set through a [`Matchmaker`] handle
/// ([`ClusterRegistry::handle`]) — one `LOCATE_ALL` round-trip, no
/// broadcast anywhere. The node-side storage and wire exchange live in
/// `amoeba-rpc`; this type owns the node lifecycle and the agreed node
/// port list.
#[derive(Debug)]
pub struct ClusterRegistry {
    nodes: Vec<RendezvousNode>,
    ports: Vec<Port>,
}

impl ClusterRegistry {
    /// Spawns `nodes` registry nodes, each on a fresh machine with a
    /// random service port.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn spawn(net: &Network, nodes: usize) -> ClusterRegistry {
        assert!(nodes > 0, "a registry needs at least one node");
        let mut rng = StdRng::from_entropy();
        let running: Vec<RendezvousNode> = (0..nodes)
            .map(|_| RendezvousNode::spawn(net.attach_open(), Port::random(&mut rng)))
            .collect();
        let ports = running.iter().map(|n| n.service_port()).collect();
        ClusterRegistry {
            nodes: running,
            ports,
        }
    }

    /// The agreed node port list — what every participant must share.
    pub fn node_ports(&self) -> &[Port] {
        &self.ports
    }

    /// A fresh client/server handle onto this registry. Each handle
    /// carries its own replica-set cache, so every client process gets
    /// one (sharing a handle shares the cache, which is what a worker
    /// pool inside one process wants).
    pub fn handle(&self) -> Matchmaker {
        Matchmaker::new(self.ports.clone())
    }

    /// A handle with an explicit placement policy (the registry path
    /// carries loads, so [`PlacementPolicy::LeastLoad`] is effective).
    pub fn handle_with_policy(&self, policy: PlacementPolicy) -> Matchmaker {
        Matchmaker::new(self.ports.clone()).with_policy(policy)
    }

    /// Stops every node.
    pub fn stop(self) {
        for n in self.nodes {
            n.stop();
        }
    }
}
