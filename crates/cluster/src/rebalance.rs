//! Load-driven rebalancing: watch per-shard request counts, detect a
//! hot machine, and repack shards across replicas with live migration.
//!
//! The planner is deliberately boring: longest-processing-time (LPT)
//! greedy repack. Sort shards by observed load, place each on the
//! replica with the least assigned load so far, preferring the current
//! owner on ties (a shard that need not move, should not move). LPT is
//! within 4/3 of the optimal makespan, fully deterministic, and every
//! move it emits is a whole-shard migration — the unit the transfer
//! protocol ships.
//!
//! [`Rebalancer::rebalance`] wires the plan to an
//! [`ElasticCluster`]: read [`shard_loads`](ElasticCluster::shard_loads),
//! plan, then [`migrate`](ElasticCluster::migrate) each move. Run it
//! from a maintenance thread on a timer, or once after a skew report.

use crate::elastic::ElasticCluster;
use crate::migrate::MigrateError;
use amoeba_rpc::Client;

/// The shard repacking planner.
#[derive(Debug, Clone, Copy)]
pub struct Rebalancer {
    /// Imbalance trigger: plan only if the hottest replica carries
    /// more than `threshold ×` the mean replica load. Default 1.25.
    pub threshold: f64,
}

impl Default for Rebalancer {
    fn default() -> Rebalancer {
        Rebalancer { threshold: 1.25 }
    }
}

impl Rebalancer {
    /// A planner triggering at `threshold ×` the mean replica load.
    pub fn new(threshold: f64) -> Rebalancer {
        Rebalancer { threshold }
    }

    /// Plans moves for `loads[shard]` observed requests currently
    /// placed per `owner[shard]` across `replicas` machines. Returns
    /// `(shard, new_owner)` for every shard the LPT repack relocates —
    /// empty when the cluster is already balanced (hottest replica
    /// within `threshold ×` the mean) or the inputs are degenerate.
    pub fn plan(&self, loads: &[u64], owner: &[usize], replicas: usize) -> Vec<(usize, usize)> {
        if replicas < 2 || loads.is_empty() || loads.len() != owner.len() {
            return Vec::new();
        }
        let mut replica_load = vec![0u64; replicas];
        for (s, &load) in loads.iter().enumerate() {
            if owner[s] >= replicas {
                return Vec::new();
            }
            replica_load[owner[s]] += load;
        }
        let total: u64 = replica_load.iter().sum();
        let max = replica_load.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / replicas as f64;
        if total == 0 || (max as f64) <= mean * self.threshold {
            return Vec::new();
        }
        // LPT repack: heaviest shard first onto the least-loaded
        // replica. Stable order (by shard index on equal load) keeps
        // the plan deterministic for a given load vector.
        let mut shards: Vec<usize> = (0..loads.len()).collect();
        shards.sort_by_key(|&s| std::cmp::Reverse(loads[s]));
        let mut assigned = vec![0u64; replicas];
        let mut plan = Vec::new();
        for s in shards {
            let min = assigned.iter().copied().min().unwrap_or(0);
            // Prefer the current owner among the least-loaded
            // replicas; otherwise the lowest index — sticky and
            // deterministic.
            let to = if assigned[owner[s]] == min {
                owner[s]
            } else {
                (0..replicas)
                    .find(|&r| assigned[r] == min)
                    .expect("replicas is non-zero")
            };
            assigned[to] += loads[s];
            if to != owner[s] {
                plan.push((s, to));
            }
        }
        plan
    }

    /// Reads the cluster's current per-shard loads, plans, and applies
    /// every move via live migration. Returns the moves performed
    /// (empty when balanced).
    ///
    /// # Errors
    /// The first [`MigrateError`]; earlier moves stay in effect and
    /// the cluster remains fully serviceable.
    pub fn rebalance(
        &self,
        cluster: &ElasticCluster,
        client: &Client,
    ) -> Result<Vec<(usize, usize)>, MigrateError> {
        let loads = cluster.shard_loads();
        let owner = cluster.owners();
        let plan = self.plan(&loads, &owner, cluster.replicas());
        for &(shard, to) in &plan {
            cluster.migrate(client, shard, to)?;
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_load_plans_nothing() {
        let r = Rebalancer::default();
        let loads = vec![10; 16];
        let owner: Vec<usize> = (0..16).map(|s| s % 4).collect();
        assert!(r.plan(&loads, &owner, 4).is_empty());
    }

    #[test]
    fn zero_load_plans_nothing() {
        let r = Rebalancer::default();
        let owner: Vec<usize> = (0..16).map(|s| s % 4).collect();
        assert!(r.plan(&[0; 16], &owner, 4).is_empty());
    }

    #[test]
    fn single_replica_plans_nothing() {
        let r = Rebalancer::default();
        assert!(r.plan(&[100, 1, 1, 1], &[0, 0, 0, 0], 1).is_empty());
    }

    #[test]
    fn skew_on_one_replica_spreads_out() {
        // Replica 0 owns the four hottest shards (the Zipf-head shape
        // the rebalance bench constructs); everyone else is cold.
        let r = Rebalancer::default();
        let mut loads = vec![1u64; 16];
        let owner: Vec<usize> = (0..16).map(|s| s % 4).collect();
        // Shards 0,4,8,12 → replica 0.
        loads[0] = 1000;
        loads[4] = 500;
        loads[8] = 330;
        loads[12] = 250;
        let plan = r.plan(&loads, &owner, 4);
        assert!(!plan.is_empty(), "skew must trigger a plan");
        // Apply and check the hottest replica is now near the mean.
        let mut new_owner = owner.clone();
        for &(s, to) in &plan {
            new_owner[s] = to;
        }
        let mut replica_load = vec![0u64; 4];
        for (s, &load) in loads.iter().enumerate() {
            replica_load[new_owner[s]] += load;
        }
        let total: u64 = loads.iter().sum();
        let mean = total as f64 / 4.0;
        let max = *replica_load.iter().max().unwrap() as f64;
        assert!(
            max <= mean * 2.0,
            "LPT should cut the hot replica down: {replica_load:?}"
        );
        // The four hot shards must no longer share an owner.
        let hot_owners: std::collections::HashSet<usize> =
            [0usize, 4, 8, 12].iter().map(|&s| new_owner[s]).collect();
        assert_eq!(hot_owners.len(), 4, "hot shards spread over all replicas");
    }

    #[test]
    fn plan_is_deterministic_and_sticky() {
        let r = Rebalancer::default();
        let mut loads = vec![5u64; 16];
        loads[3] = 900;
        loads[7] = 900;
        let owner: Vec<usize> = (0..16).map(|s| s % 2).collect();
        let a = r.plan(&loads, &owner, 2);
        let b = r.plan(&loads, &owner, 2);
        assert_eq!(a, b, "same inputs, same plan");
        // Shards whose owner already matches LPT's choice never move:
        // every planned move must actually change the owner.
        for &(s, to) in &a {
            assert_ne!(owner[s], to);
        }
    }

    #[test]
    fn degenerate_inputs_plan_nothing() {
        let r = Rebalancer::default();
        assert!(r.plan(&[], &[], 4).is_empty());
        assert!(r.plan(&[1, 2], &[0], 4).is_empty(), "length mismatch");
        assert!(r.plan(&[1, 2], &[0, 9], 4).is_empty(), "owner out of range");
    }
}
