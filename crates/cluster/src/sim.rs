//! Replica groups for the deterministic simulation executor.

use amoeba_net::{ActorPoll, MachineId, Network, Port, SimExecutor};
use amoeba_server::{Service, SimPump};
use std::sync::Arc;

/// A replicated service group built for the deterministic simulation:
/// `n` [`SimPump`]s on distinct machines, all claiming the **same**
/// get-port (the §3.4 replicated placement shape), each driven by a
/// polled executor actor instead of worker threads.
///
/// On a simulation network the replicas are bound as fault-plan
/// targets `0..n`, so a seeded [`FaultPlan`](amoeba_net::FaultPlan)'s
/// crash and partition windows land on them — replica death
/// mid-transaction is part of the schedule, not a separate harness.
pub struct SimReplicaSet {
    pumps: Vec<Arc<SimPump>>,
    put_port: Port,
}

impl std::fmt::Debug for SimReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimReplicaSet")
            .field("replicas", &self.pumps.len())
            .field("put_port", &self.put_port)
            .finish()
    }
}

impl SimReplicaSet {
    /// Binds `n` replicas of the service produced by `make` (called
    /// once per replica with its index) on fresh open-interface
    /// machines, all claiming `get_port`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn bind<S: Service>(
        net: &Network,
        get_port: Port,
        n: usize,
        mut make: impl FnMut(usize) -> S,
    ) -> SimReplicaSet {
        assert!(n > 0, "a replica set needs at least one replica");
        let pumps: Vec<Arc<SimPump>> = (0..n)
            .map(|i| Arc::new(SimPump::bind(net.attach_open(), get_port, make(i))))
            .collect();
        if net.is_sim() {
            for (i, pump) in pumps.iter().enumerate() {
                net.sim_bind_fault_target(i, pump.machine());
            }
        }
        let put_port = pumps[0].put_port();
        SimReplicaSet { pumps, put_port }
    }

    /// Registers one executor **daemon** per replica, each serving
    /// every ready request on its poll. Daemons never report done; the
    /// run ends when the workload actors do.
    pub fn spawn_actors<'a>(&'a self, exec: &mut SimExecutor<'a>) {
        for pump in &self.pumps {
            let pump = Arc::clone(pump);
            exec.spawn_daemon(pump.machine(), move || {
                if pump.poll() {
                    ActorPoll::Progress
                } else {
                    ActorPoll::Idle
                }
            });
        }
    }

    /// The published put-port clients send to (identical across
    /// replicas — F is deterministic).
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.pumps.len()
    }

    /// The machine serving replica `index`.
    pub fn machine(&self, index: usize) -> MachineId {
        self.pumps[index].machine()
    }

    /// The pump of replica `index` (e.g. for load assertions).
    pub fn pump(&self, index: usize) -> &SimPump {
        &self.pumps[index]
    }
}
