//! Elastic placement: a sharded group whose shard→replica map can
//! change at runtime via live migration.
//!
//! [`ShardedCluster`](crate::ShardedCluster) freezes placement at
//! spawn: shard `s` lives on replica `s % n` forever, so a skewed
//! workload melts one machine while the rest idle. An
//! [`ElasticCluster`] starts from the same static assignment but keeps
//! the map *mutable*: [`migrate`](ElasticCluster::migrate) streams one
//! shard to a new owner (the cutover protocol of
//! [`crate::migrate`]), [`drain`](ElasticCluster::drain) empties a
//! replica for maintenance, and the per-shard directory entries are
//! republished so new clients bootstrap the fresh map.
//!
//! Clients with a stale map stay correct throughout: the old owner
//! *forwards* requests for a released shard to the new owner
//! (capability validation happens there — the secrets moved with the
//! objects), and [`ElasticClient`] refreshes its map from the
//! directory when a call hits a drained replica.

use crate::migrate::{migrate_shard, MigrateError, MigrationStats};
use crate::range_capability;
use amoeba_cap::Capability;
use amoeba_dirsvr::DirClient;
use amoeba_net::{Network, Port};
use amoeba_rpc::Client;
use amoeba_server::proto::Status;
use amoeba_server::DEFAULT_SHARDS;
use amoeba_server::{placement_range, ClientError, Service, ServiceClient, ServiceRunner};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

fn shard_entry_name(service: &str, shard: usize) -> String {
    format!("{service}.shard-{shard}")
}

/// A placement group of `n` replicas serving all [`DEFAULT_SHARDS`]
/// table shards, with a runtime-mutable shard→replica ownership map.
pub struct ElasticCluster {
    runners: Vec<ServiceRunner>,
    /// Authoritative shard→replica map (control-plane view; the data
    /// plane tolerates staleness via forwarding).
    owner: Mutex<Vec<usize>>,
    next_xfer: AtomicU64,
}

impl std::fmt::Debug for ElasticCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticCluster")
            .field("replicas", &self.runners.len())
            .field("owner", &*self.owner.lock())
            .finish()
    }
}

impl ElasticCluster {
    /// Spawns `replicas` instances (one per fresh open-interface
    /// machine, `workers` dispatch workers each); replica `i` starts
    /// owning the shards with `shard % replicas == i`, exactly like a
    /// [`ShardedCluster`](crate::ShardedCluster) — the difference is
    /// what happens next.
    ///
    /// # Panics
    /// Panics if `replicas` is zero or exceeds [`DEFAULT_SHARDS`].
    pub fn spawn_open<S: Service>(
        net: &Network,
        replicas: usize,
        workers: usize,
        mut factory: impl FnMut(usize) -> S,
    ) -> ElasticCluster {
        assert!(
            (1..=DEFAULT_SHARDS).contains(&replicas),
            "1..={DEFAULT_SHARDS} replicas per elastic group"
        );
        let mut rng = rand::rngs::StdRng::from_entropy();
        let runners: Vec<ServiceRunner> = (0..replicas)
            .map(|i| {
                let mut service = factory(i);
                service.bind_shard_range(i, replicas);
                let get_port = Port::random(&mut rng);
                ServiceRunner::spawn_workers_with_codec(
                    net.attach_open(),
                    get_port,
                    service,
                    workers,
                    amoeba_rpc::CodecConfig::default(),
                )
            })
            .collect();
        let owner = (0..DEFAULT_SHARDS).map(|s| s % replicas).collect();
        ElasticCluster {
            runners,
            owner: Mutex::new(owner),
            next_xfer: AtomicU64::new(1),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.runners.len()
    }

    /// The put-port of replica `i`.
    pub fn replica_port(&self, i: usize) -> Port {
        self.runners[i].put_port()
    }

    /// The current shard→replica ownership map (a snapshot).
    pub fn owners(&self) -> Vec<usize> {
        self.owner.lock().clone()
    }

    /// The current shard→port map (a snapshot).
    pub fn shard_ports(&self) -> Vec<Port> {
        self.owner
            .lock()
            .iter()
            .map(|&r| self.runners[r].put_port())
            .collect()
    }

    /// Per-shard request counts, read from each shard's current
    /// owner. A freshly migrated shard restarts near zero on its new
    /// owner, which is the figure a load balancer wants: recent load
    /// at the serving machine.
    pub fn shard_loads(&self) -> Vec<u64> {
        let owner = self.owner.lock();
        owner
            .iter()
            .enumerate()
            .map(|(s, &r)| {
                self.runners[r]
                    .service()
                    .migrator()
                    .map(|m| m.shard_ops()[s])
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Stores one locator capability per shard under `dir` as
    /// `"<service>.shard-<s>"` entries, pointing at each shard's
    /// current owner.
    ///
    /// # Errors
    /// Directory errors (`Conflict` if already published, rights).
    pub fn publish(
        &self,
        dirs: &DirClient,
        dir: &Capability,
        service: &str,
    ) -> Result<(), ClientError> {
        for (s, port) in self.shard_ports().into_iter().enumerate() {
            dirs.enter(dir, &shard_entry_name(service, s), &range_capability(port))?;
        }
        Ok(())
    }

    /// Re-points shard `s`'s directory entry at its current owner
    /// (call after a successful [`migrate`](Self::migrate)). Clients
    /// that read the old entry keep working through forwarding.
    ///
    /// # Errors
    /// Directory errors from the replace ( a missing old entry is not
    /// an error).
    pub fn republish(
        &self,
        dirs: &DirClient,
        dir: &Capability,
        service: &str,
        shard: usize,
    ) -> Result<(), ClientError> {
        let port = self.shard_ports()[shard];
        let name = shard_entry_name(service, shard);
        match dirs.remove(dir, &name) {
            Ok(()) | Err(ClientError::Status(Status::NotFound)) => {}
            Err(e) => return Err(e),
        }
        dirs.enter(dir, &name, &range_capability(port))
    }

    /// Live-migrates `shard` to replica `to`, blocking until the
    /// cutover completes. A no-op (zero stats) if `to` already owns
    /// the shard. `client` supplies the transport for the transfer
    /// stream.
    ///
    /// # Errors
    /// [`MigrateError`]; on failure the current owner keeps serving.
    ///
    /// # Panics
    /// Panics if `shard` or `to` is out of range.
    pub fn migrate(
        &self,
        client: &Client,
        shard: usize,
        to: usize,
    ) -> Result<MigrationStats, MigrateError> {
        assert!(shard < DEFAULT_SHARDS, "shard out of range");
        assert!(to < self.runners.len(), "replica out of range");
        let from = self.owner.lock()[shard];
        if from == to {
            return Ok(MigrationStats::default());
        }
        let source_service = self.runners[from].service();
        let source = source_service.migrator().ok_or(MigrateError::NoMigrator)?;
        let xfer = self.next_xfer.fetch_add(1, Ordering::Relaxed);
        let stats = migrate_shard(
            client,
            source,
            shard,
            xfer,
            self.runners[to].put_port(),
            None,
        )?;
        self.owner.lock()[shard] = to;
        Ok(stats)
    }

    /// Empties replica `i` for maintenance: every shard it owns is
    /// migrated to whichever *other* replica currently owns the fewest
    /// shards. Returns the moves performed as `(shard, new_owner)`.
    ///
    /// # Errors
    /// The first [`MigrateError`]; earlier moves stay in effect.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the group has a single
    /// replica (nowhere to drain to).
    pub fn drain(&self, client: &Client, i: usize) -> Result<Vec<(usize, usize)>, MigrateError> {
        assert!(i < self.runners.len(), "replica out of range");
        assert!(
            self.runners.len() > 1,
            "cannot drain a single-replica group"
        );
        let owned: Vec<usize> = {
            let owner = self.owner.lock();
            (0..DEFAULT_SHARDS).filter(|&s| owner[s] == i).collect()
        };
        let mut moves = Vec::with_capacity(owned.len());
        for shard in owned {
            let to = {
                let owner = self.owner.lock();
                let mut counts = vec![0usize; self.runners.len()];
                for &r in owner.iter() {
                    counts[r] += 1;
                }
                (0..self.runners.len())
                    .filter(|&r| r != i)
                    .min_by_key(|&r| counts[r])
                    .expect("more than one replica")
            };
            self.migrate(client, shard, to)?;
            moves.push((shard, to));
        }
        Ok(moves)
    }

    /// Stops every replica.
    pub fn stop(self) {
        for r in self.runners {
            r.stop();
        }
    }
}

/// A client for an [`ElasticCluster`]: routes by the capability's
/// shard, and re-reads the directory map when a call lands on a
/// replica that no longer mints (drained) or the transport times out —
/// so migrations behind its back cost one retry, never an error.
pub struct ElasticClient {
    svc: ServiceClient,
    dirs: DirClient,
    dir: Capability,
    service: String,
    /// shard → owning port, refreshed from the directory on demand.
    ports: RwLock<Vec<Port>>,
    /// Round-robin cursor for placements with no capability (CREATE).
    next_shard: AtomicUsize,
}

impl std::fmt::Debug for ElasticClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticClient")
            .field("service", &self.service)
            .field("ports", &*self.ports.read())
            .finish()
    }
}

impl ElasticClient {
    /// Bootstraps the shard map from the `"<service>.shard-<s>"`
    /// entries an [`ElasticCluster::publish`] stored under `dir`.
    ///
    /// # Errors
    /// [`ClientError`] from the directory lookups (all
    /// [`DEFAULT_SHARDS`] entries must exist).
    pub fn from_directory(
        net: &Network,
        dirs: DirClient,
        dir: &Capability,
        service: &str,
    ) -> Result<ElasticClient, ClientError> {
        let client = ElasticClient {
            svc: ServiceClient::open(net),
            dirs,
            dir: *dir,
            service: service.to_string(),
            ports: RwLock::new(Vec::new()),
            next_shard: AtomicUsize::new(0),
        };
        client.refresh()?;
        Ok(client)
    }

    /// Re-reads the whole shard map from the directory.
    ///
    /// # Errors
    /// [`ClientError`] from the directory lookups.
    pub fn refresh(&self) -> Result<(), ClientError> {
        let mut fresh = Vec::with_capacity(DEFAULT_SHARDS);
        for s in 0..DEFAULT_SHARDS {
            fresh.push(
                self.dirs
                    .lookup(&self.dir, &shard_entry_name(&self.service, s))?
                    .port,
            );
        }
        *self.ports.write() = fresh;
        Ok(())
    }

    /// The port currently mapped for `cap`'s shard.
    pub fn port_for(&self, cap: &Capability) -> Port {
        let shard = placement_range(cap.object, DEFAULT_SHARDS, DEFAULT_SHARDS);
        self.ports.read()[shard]
    }

    fn should_refresh(err: &ClientError) -> bool {
        matches!(
            err,
            ClientError::Rpc(_) | ClientError::Status(Status::Unsupported)
        )
    }

    /// Invokes `command` on the object named by `cap`, routed to its
    /// shard's owner. A transport failure or a drained-replica refusal
    /// triggers one map refresh and one retry.
    ///
    /// # Errors
    /// As for [`ServiceClient::call`], after the retry.
    pub fn call(
        &self,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        match self
            .svc
            .call_at(self.port_for(cap), cap, command, params.clone())
        {
            Ok(body) => Ok(body),
            Err(e) if Self::should_refresh(&e) => {
                self.refresh()?;
                self.svc.call_at(self.port_for(cap), cap, command, params)
            }
            Err(e) => Err(e),
        }
    }

    /// Invokes a capability-less placement command (CREATE and
    /// friends) on the next shard owner in round-robin order. A
    /// drained replica answers `Unsupported` (it has no mintable
    /// shard left); that triggers one map refresh and one retry on
    /// the refreshed owner.
    ///
    /// # Errors
    /// As for [`ServiceClient::call_anonymous`], after the retry.
    pub fn call_create(&self, command: u32, params: Bytes) -> Result<Bytes, ClientError> {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % DEFAULT_SHARDS;
        let port = self.ports.read()[shard];
        match self.svc.call_anonymous(port, command, params.clone()) {
            Ok(body) => Ok(body),
            Err(e) if Self::should_refresh(&e) => {
                self.refresh()?;
                let port = self.ports.read()[shard];
                self.svc.call_anonymous(port, command, params)
            }
            Err(e) => Err(e),
        }
    }

    /// The underlying generic service client.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rebalancer;
    use amoeba_cap::schemes::SchemeKind;
    use amoeba_dirsvr::DirServer;
    use amoeba_flatfs::{ops, FlatFsServer};
    use amoeba_server::wire;

    fn elastic_fs(net: &Network, replicas: usize) -> ElasticCluster {
        ElasticCluster::spawn_open(net, replicas, 1, |_| {
            FlatFsServer::new(SchemeKind::Commutative)
        })
    }

    fn shard_of(cap: &Capability) -> usize {
        placement_range(cap.object, DEFAULT_SHARDS, DEFAULT_SHARDS)
    }

    fn create_at(svc: &ServiceClient, port: Port) -> Capability {
        let body = svc.call_anonymous(port, ops::CREATE, Bytes::new()).unwrap();
        wire::Reader::new(&body).cap().unwrap()
    }

    fn write(svc: &ServiceClient, cap: &Capability, data: &[u8]) {
        svc.call(
            cap,
            ops::WRITE,
            wire::Writer::new().u64(0).bytes(data).finish(),
        )
        .unwrap();
    }

    fn read(svc: &ServiceClient, cap: &Capability) -> Bytes {
        svc.call(cap, ops::READ, wire::Writer::new().u64(0).u32(32).finish())
            .unwrap()
    }

    #[test]
    fn migration_moves_objects_and_old_port_forwards() {
        let net = Network::new();
        let cluster = elastic_fs(&net, 2);
        let svc = ServiceClient::open(&net);
        let caps: Vec<Capability> = (0..8)
            .map(|_| create_at(&svc, cluster.replica_port(0)))
            .collect();
        for (i, cap) in caps.iter().enumerate() {
            write(&svc, cap, format!("body-{i}").as_bytes());
        }
        let shard = shard_of(&caps[0]);
        let rpc = Client::new(net.attach_open());
        let stats = cluster.migrate(&rpc, shard, 1).unwrap();
        assert!(stats.chunks >= 1, "a populated shard ships chunks");
        assert_eq!(cluster.owners()[shard], 1);

        // Every capability still works addressed at the port it was
        // minted with: the migrated shard is *forwarded* by the old
        // owner, the rest are served there as before.
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(&read(&svc, cap)[..], format!("body-{i}").as_bytes());
        }
        // The new owner serves the migrated shard directly — secrets
        // moved with the objects, so old capabilities validate there.
        for (i, cap) in caps.iter().enumerate() {
            if shard_of(cap) != shard {
                continue;
            }
            let body = svc
                .call_at(
                    cluster.replica_port(1),
                    cap,
                    ops::READ,
                    wire::Writer::new().u64(0).u32(32).finish(),
                )
                .unwrap();
            assert_eq!(&body[..], format!("body-{i}").as_bytes());
        }
        cluster.stop();
    }

    #[test]
    fn migration_is_invisible_to_a_live_writer() {
        let net = Network::new();
        let cluster = elastic_fs(&net, 2);
        let svc = ServiceClient::open(&net);
        let cap = create_at(&svc, cluster.replica_port(0));
        let shard = shard_of(&cap);

        const WRITES: u32 = 200;
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                // Always addresses the *original* owner: the held
                // window retransmits, the forwarded window relays.
                let svc = ServiceClient::open(&net);
                for i in 0..WRITES {
                    write(&svc, &cap, format!("v{i:04}").as_bytes());
                }
            });
            let rpc = Client::new(net.attach_open());
            cluster.migrate(&rpc, shard, 1).unwrap();
            writer.join().unwrap();
        });
        // The last write survived the cutover, wherever it landed.
        let last = WRITES - 1;
        assert_eq!(&read(&svc, &cap)[..], format!("v{last:04}").as_bytes());
        cluster.stop();
    }

    #[test]
    fn drain_republish_and_stale_clients_recover() {
        let net = Network::new();
        let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let dirs = DirClient::open(&net, dir_runner.put_port());
        let root = dirs.create_dir().unwrap();
        let cluster = elastic_fs(&net, 3);
        cluster.publish(&dirs, &root, "fs").unwrap();

        let client = ElasticClient::from_directory(
            &net,
            DirClient::open(&net, dir_runner.put_port()),
            &root,
            "fs",
        )
        .unwrap();
        let caps: Vec<Capability> = (0..9)
            .map(|_| {
                let body = client.call_create(ops::CREATE, Bytes::new()).unwrap();
                wire::Reader::new(&body).cap().unwrap()
            })
            .collect();
        for (i, cap) in caps.iter().enumerate() {
            client
                .call(
                    cap,
                    ops::WRITE,
                    wire::Writer::new()
                        .u64(0)
                        .bytes(format!("file-{i}").as_bytes())
                        .finish(),
                )
                .unwrap();
        }

        let rpc = Client::new(net.attach_open());
        let moves = cluster.drain(&rpc, 0).unwrap();
        assert!(!moves.is_empty(), "replica 0 owned shards to move");
        let owners = cluster.owners();
        assert!(owners.iter().all(|&r| r != 0), "replica 0 fully drained");
        for &(shard, _) in &moves {
            cluster.republish(&dirs, &root, "fs", shard).unwrap();
        }

        // The drained replica refuses to mint.
        let direct = ServiceClient::open(&net);
        assert!(matches!(
            direct.call_anonymous(cluster.replica_port(0), ops::CREATE, Bytes::new()),
            Err(ClientError::Status(Status::Unsupported))
        ));

        // The elastic client's map is stale — reads route through
        // forwarding, creates hit `Unsupported` once, refresh, and
        // succeed on the new owner.
        for (i, cap) in caps.iter().enumerate() {
            let body = client
                .call(cap, ops::READ, wire::Writer::new().u64(0).u32(32).finish())
                .unwrap();
            assert_eq!(&body[..], format!("file-{i}").as_bytes());
        }
        for _ in 0..6 {
            let body = client.call_create(ops::CREATE, Bytes::new()).unwrap();
            let cap = wire::Reader::new(&body).cap().unwrap();
            assert_ne!(cap.port, cluster.replica_port(0), "drained replica minted");
        }
        cluster.stop();
        dir_runner.stop();
    }

    #[test]
    fn rebalancer_spreads_a_hot_replica() {
        let net = Network::new();
        let cluster = elastic_fs(&net, 4);
        let svc = ServiceClient::open(&net);
        // Hammer replica 0's objects; everyone else stays cold.
        let caps: Vec<Capability> = (0..4)
            .map(|_| create_at(&svc, cluster.replica_port(0)))
            .collect();
        for (i, cap) in caps.iter().enumerate() {
            write(&svc, cap, format!("hot-{i}").as_bytes());
            for _ in 0..25 {
                read(&svc, cap);
            }
        }
        let rpc = Client::new(net.attach_open());
        let moves = Rebalancer::default().rebalance(&cluster, &rpc).unwrap();
        assert!(!moves.is_empty(), "the skew must trigger moves");
        let owners = cluster.owners();
        let hot_owners: std::collections::HashSet<usize> =
            caps.iter().map(|c| owners[shard_of(c)]).collect();
        assert!(hot_owners.len() > 1, "hot shards no longer share one owner");
        // Nothing was lost and stale routing still works.
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(&read(&svc, cap)[..], format!("hot-{i}").as_bytes());
        }
        cluster.stop();
    }

    #[test]
    fn migrate_to_current_owner_is_a_no_op() {
        let net = Network::new();
        let cluster = elastic_fs(&net, 2);
        let rpc = Client::new(net.attach_open());
        let stats = cluster.migrate(&rpc, 0, 0).unwrap();
        assert_eq!(stats, MigrationStats::default());
        assert_eq!(cluster.owners()[0], 0);
        cluster.stop();
    }
}
