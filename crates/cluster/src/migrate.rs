//! The live shard-migration driver: streams one [`ObjectTable`] shard
//! from its current owner to a new one over the `TRANSFER_*` wire
//! frames, then flips ownership without clients observing a gap.
//!
//! The table-side mechanics (dirty tracking, sealing, the inflight
//! gauge, idempotent staging) live in `amoeba_server::migrate`; this
//! module is the *conductor*: it holds a local handle on the source's
//! [`ShardMigrator`] and an RPC [`Client`] aimed at the target, and
//! runs the copy → catch-up → seal → quiesce → commit → release
//! sequence. Two shapes share the logic:
//!
//! * [`migrate_shard`] — the blocking driver a control plane (the
//!   [`Rebalancer`](crate::Rebalancer), a drain) calls from a thread;
//! * [`ShardMigration`] — a poll-driven actor for the deterministic
//!   simulation executor, so fault plans can crash machines *in the
//!   middle of* a migration.
//!
//! Every step is observable through the flight recorder
//! (`MigrateBegin`/`MigrateChunk`/`MigrateCommit`/`MigrateAbort`).
//!
//! [`ObjectTable`]: amoeba_server::ObjectTable
//! [`ShardMigrator`]: amoeba_server::ShardMigrator

use amoeba_net::{ActorPoll, EventKind, MachineId, Port};
use amoeba_rpc::{Client, Completion, RpcError, TransferOp};
use amoeba_server::proto::{Reply, Status};
use amoeba_server::ShardMigrator;
use bytes::Bytes;
use std::collections::VecDeque;

/// Records per transfer chunk: small enough that one chunk frame stays
/// comfortably inside a single simulated packet, large enough that a
/// populated shard ships in a handful of round trips.
pub const CHUNK_RECORDS: usize = 64;

/// Catch-up rounds before the driver stops chasing a write-hot shard
/// and seals it: sealing always converges (held requests retransmit
/// after the flip), so a bounded chase only trades a slightly longer
/// hold window for a guaranteed finish.
pub const MAX_CATCHUP_ROUNDS: usize = 8;

/// Why a migration did not complete. The source table is always rolled
/// back to normal service on failure (`abort_export`), so a failed
/// migration is invisible to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The source refused to export (shard sealed, already migrated
    /// away, or not owned).
    SourceBusy,
    /// The source service has no [`ShardMigrator`] handle.
    NoMigrator,
    /// The transfer RPC failed (target crashed or unreachable).
    Transport(RpcError),
    /// The target answered a transfer op with a non-OK status.
    Refused(Status),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::SourceBusy => write!(f, "source shard is not exportable"),
            MigrateError::NoMigrator => write!(f, "service exposes no shard migrator"),
            MigrateError::Transport(e) => write!(f, "transfer transport: {e}"),
            MigrateError::Refused(s) => write!(f, "target refused transfer: {s}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// What a completed migration shipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Total `TRANSFER_CHUNK` frames sent (snapshot + deltas).
    pub chunks: u32,
    /// Catch-up rounds run before the shard was sealed.
    pub catchup_rounds: usize,
}

fn check_reply(raw: Bytes) -> Result<(), MigrateError> {
    let reply = Reply::decode(&raw).ok_or(MigrateError::Refused(Status::BadRequest))?;
    if reply.status == Status::Ok {
        Ok(())
    } else {
        Err(MigrateError::Refused(reply.status))
    }
}

/// Migrates `shard` from the local `source` table to the replica
/// serving `target_port` (on `target_machine` when several machines
/// serve the port), blocking until the cutover completes or fails.
///
/// Sequence: snapshot-copy while serving → bounded catch-up of dirty
/// slots → seal (new requests held) → wait for in-flight handlers to
/// drain → ship the final delta → `TRANSFER_COMMIT` (target installs
/// and adopts) → release the source shard into forwarding mode. On any
/// transport or protocol failure the export is aborted and the source
/// keeps serving — `xfer` ids make a retried migration idempotent on
/// the target.
///
/// # Errors
/// [`MigrateError`]; the source is rolled back to normal service.
pub fn migrate_shard(
    client: &Client,
    source: &dyn ShardMigrator,
    shard: usize,
    xfer: u64,
    target_port: Port,
    target_machine: Option<MachineId>,
) -> Result<MigrationStats, MigrateError> {
    let endpoint = client.endpoint();
    let obs = endpoint.obs();
    let stamp = |kind: EventKind, a: u64, b: u64| {
        if obs.enabled() {
            obs.record(
                kind,
                endpoint.now().since_epoch().as_nanos() as u64,
                0,
                a,
                b,
            );
        }
    };
    if !source.begin_export(shard) {
        return Err(MigrateError::SourceBusy);
    }
    stamp(EventKind::MigrateBegin, shard as u64, xfer);

    let send = |op: &TransferOp| -> Result<(), MigrateError> {
        let raw = client
            .trans_transfer_to(target_port, target_machine, op)
            .map_err(MigrateError::Transport)?;
        check_reply(raw)
    };
    let mut seq: u32 = 0;
    let mut rounds = 0usize;
    let mut run = || -> Result<(), MigrateError> {
        send(&TransferOp::Begin {
            xfer,
            shard: shard as u8,
        })?;
        // Full snapshot while the shard keeps serving.
        for records in source.export_chunks(shard, None, CHUNK_RECORDS) {
            stamp(EventKind::MigrateChunk, seq as u64, records.len() as u64);
            send(&TransferOp::Chunk { xfer, seq, records })?;
            seq += 1;
        }
        // Catch up writes that landed during the copy.
        loop {
            let dirty = source.take_dirty(shard);
            if dirty.is_empty() {
                break;
            }
            for records in source.export_chunks(shard, Some(&dirty), CHUNK_RECORDS) {
                stamp(EventKind::MigrateChunk, seq as u64, records.len() as u64);
                send(&TransferOp::Chunk { xfer, seq, records })?;
                seq += 1;
            }
            rounds += 1;
            if rounds >= MAX_CATCHUP_ROUNDS {
                break;
            }
        }
        // Cutover: hold new requests, let dispatched ones drain, ship
        // whatever they dirtied, then commit.
        source.seal(shard);
        while source.inflight(shard) > 0 {
            std::thread::yield_now();
        }
        loop {
            let dirty = source.take_dirty(shard);
            if dirty.is_empty() {
                break;
            }
            for records in source.export_chunks(shard, Some(&dirty), CHUNK_RECORDS) {
                stamp(EventKind::MigrateChunk, seq as u64, records.len() as u64);
                send(&TransferOp::Chunk { xfer, seq, records })?;
                seq += 1;
            }
        }
        send(&TransferOp::Commit { xfer, chunks: seq })
    };
    match run() {
        Ok(()) => {
            source.release(shard, target_port);
            stamp(EventKind::MigrateCommit, shard as u64, xfer);
            Ok(MigrationStats {
                chunks: seq,
                catchup_rounds: rounds,
            })
        }
        Err(e) => {
            source.abort(shard);
            stamp(EventKind::MigrateAbort, shard as u64, xfer);
            Err(e)
        }
    }
}

enum Phase {
    Start,
    CatchUp,
    Quiesce,
    FinalDrain,
    Committing,
    Done,
}

/// A poll-driven shard migration for the deterministic simulation
/// executor: the same sequence as [`migrate_shard`], advanced one step
/// per [`poll`](Self::poll) so seeded fault plans can crash the source
/// or target machine mid-copy, mid-catch-up, or mid-commit.
///
/// Terminal state is reported by [`result`](Self::result): `Ok` after
/// the source released the shard, `Err` after a clean abort (the
/// source serves on as if the migration never started).
pub struct ShardMigration<'a> {
    client: &'a Client,
    source: &'a dyn ShardMigrator,
    shard: usize,
    xfer: u64,
    target_port: Port,
    target_machine: Option<MachineId>,
    phase: Phase,
    queue: VecDeque<TransferOp>,
    pending: Option<Completion<'a, Bytes>>,
    seq: u32,
    rounds: usize,
    outcome: Option<Result<MigrationStats, MigrateError>>,
}

impl std::fmt::Debug for ShardMigration<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMigration")
            .field("shard", &self.shard)
            .field("xfer", &self.xfer)
            .field("seq", &self.seq)
            .finish()
    }
}

impl<'a> ShardMigration<'a> {
    /// Prepares (but does not start) a migration of `shard` from
    /// `source` to the replica at `target_port`/`target_machine`,
    /// driven through `client`'s endpoint.
    pub fn new(
        client: &'a Client,
        source: &'a dyn ShardMigrator,
        shard: usize,
        xfer: u64,
        target_port: Port,
        target_machine: Option<MachineId>,
    ) -> ShardMigration<'a> {
        ShardMigration {
            client,
            source,
            shard,
            xfer,
            target_port,
            target_machine,
            phase: Phase::Start,
            queue: VecDeque::new(),
            pending: None,
            seq: 0,
            rounds: 0,
            outcome: None,
        }
    }

    /// The migration's outcome, once [`poll`](Self::poll) has returned
    /// [`ActorPoll::Done`].
    pub fn result(&self) -> Option<&Result<MigrationStats, MigrateError>> {
        self.outcome.as_ref()
    }

    fn stamp(&self, kind: EventKind, a: u64, b: u64) {
        let endpoint = self.client.endpoint();
        let obs = endpoint.obs();
        if obs.enabled() {
            obs.record(
                kind,
                endpoint.now().since_epoch().as_nanos() as u64,
                0,
                a,
                b,
            );
        }
    }

    fn fail(&mut self, err: MigrateError) -> ActorPoll {
        self.source.abort(self.shard);
        self.stamp(EventKind::MigrateAbort, self.shard as u64, self.xfer);
        self.pending = None;
        self.queue.clear();
        self.phase = Phase::Done;
        self.outcome = Some(Err(err));
        ActorPoll::Done
    }

    fn queue_chunks(&mut self, slots: Option<&[u32]>) -> usize {
        let chunks = self.source.export_chunks(self.shard, slots, CHUNK_RECORDS);
        let n = chunks.len();
        for records in chunks {
            self.stamp(
                EventKind::MigrateChunk,
                self.seq as u64,
                records.len() as u64,
            );
            self.queue.push_back(TransferOp::Chunk {
                xfer: self.xfer,
                seq: self.seq,
                records,
            });
            self.seq += 1;
        }
        n
    }

    /// Advances the migration one step. Feed this to
    /// [`SimExecutor::spawn`](amoeba_net::SimExecutor) from the
    /// driver's machine.
    pub fn poll(&mut self) -> ActorPoll {
        if self.outcome.is_some() {
            return ActorPoll::Done;
        }
        // 1. An op on the wire: drive its completion.
        if let Some(completion) = self.pending.as_mut() {
            return match completion.poll() {
                None => {
                    let deadline = completion.deadline();
                    ActorPoll::IdleUntil(deadline)
                }
                Some(Ok(raw)) => {
                    self.pending = None;
                    match check_reply(raw) {
                        Ok(()) => ActorPoll::Progress,
                        Err(e) => self.fail(e),
                    }
                }
                Some(Err(e)) => {
                    self.pending = None;
                    self.fail(MigrateError::Transport(e))
                }
            };
        }
        // 2. Queued ops: put the next one on the wire.
        if let Some(op) = self.queue.pop_front() {
            self.pending = Some(self.client.start_transfer_to(
                self.target_port,
                self.target_machine,
                &op,
            ));
            return ActorPoll::Progress;
        }
        // 3. Phase transitions (queue drained, nothing in flight).
        match self.phase {
            Phase::Start => {
                if !self.source.begin_export(self.shard) {
                    return self.fail(MigrateError::SourceBusy);
                }
                self.stamp(EventKind::MigrateBegin, self.shard as u64, self.xfer);
                self.queue.push_back(TransferOp::Begin {
                    xfer: self.xfer,
                    shard: self.shard as u8,
                });
                self.queue_chunks(None);
                self.phase = Phase::CatchUp;
                ActorPoll::Progress
            }
            Phase::CatchUp => {
                let dirty = self.source.take_dirty(self.shard);
                if dirty.is_empty() || self.rounds >= MAX_CATCHUP_ROUNDS {
                    self.source.seal(self.shard);
                    self.phase = Phase::Quiesce;
                    if !dirty.is_empty() {
                        self.queue_chunks(Some(&dirty));
                    }
                } else {
                    self.queue_chunks(Some(&dirty));
                    self.rounds += 1;
                }
                ActorPoll::Progress
            }
            Phase::Quiesce => {
                if self.source.inflight(self.shard) == 0 {
                    self.phase = Phase::FinalDrain;
                    ActorPoll::Progress
                } else {
                    ActorPoll::Idle
                }
            }
            Phase::FinalDrain => {
                let dirty = self.source.take_dirty(self.shard);
                if dirty.is_empty() {
                    self.queue.push_back(TransferOp::Commit {
                        xfer: self.xfer,
                        chunks: self.seq,
                    });
                    self.phase = Phase::Committing;
                } else {
                    self.queue_chunks(Some(&dirty));
                }
                ActorPoll::Progress
            }
            Phase::Committing => {
                // The commit's reply has been verified OK.
                self.source.release(self.shard, self.target_port);
                self.stamp(EventKind::MigrateCommit, self.shard as u64, self.xfer);
                self.phase = Phase::Done;
                self.outcome = Some(Ok(MigrationStats {
                    chunks: self.seq,
                    catchup_rounds: self.rounds,
                }));
                ActorPoll::Done
            }
            Phase::Done => ActorPoll::Done,
        }
    }
}
