//! The **cluster subsystem**: multi-node service placement, replicated
//! LOCATE and transparent failover.
//!
//! §3.4 of the paper makes distribution transparent — a capability's
//! port routes to *whichever machine* currently serves it, and "unless
//! the client compared the SERVER fields … it wouldn't even notice that
//! succeeding requests were going to different servers." This crate
//! turns that observation into horizontal scaling: one service is
//! served by **several** `ServiceRunner` replicas on distinct machines,
//! and clients use them without any caller-visible change.
//!
//! Two placement shapes, matching the two kinds of service state:
//!
//! * **Replicated** ([`ServiceCluster`] + [`ClusterClient`]) — every
//!   replica can serve every request (stateless or replicated-state
//!   services). All replicas bind the *same* put-port; discovery
//!   (broadcast LOCATE or the rendezvous [`ClusterRegistry`]) yields
//!   the live replica set, a [`PlacementPolicy`] picks one per call,
//!   and the frame is machine-targeted at it. A replica that stops
//!   answering is invalidated on timeout and the call transparently
//!   retries the next replica — callers see retries, not errors.
//! * **Sharded** ([`ShardedCluster`] + [`ShardedClient`]) — stateful
//!   services whose objects live exactly where they were created. The
//!   [`ObjectTable`](amoeba_server::ObjectTable) shard index (the low
//!   bits of every object number) becomes the **placement key**: each
//!   replica mints only object numbers in its owned shard range, so
//!   any capability names its owning replica. Creations spread
//!   round-robin; every later operation routes by the capability's
//!   placement range. The per-range capabilities are stored in a
//!   directory exactly as §3.4 prescribes, so clients bootstrap the
//!   range map with ordinary directory lookups.
//!
//! A third, finer-grained shape handles hot *directories* rather than
//! hot services: [`ShardedDir`] hashes the entries of one logical
//! directory across several directory-server replicas, with fan-out
//! operations batched one frame per replica.
//!
//! Static sharding melts under skewed traffic, so the sharded shape
//! also comes *elastic*: [`ElasticCluster`] keeps the shard→replica
//! map mutable, moving whole shards between replicas with **live
//! migration** ([`migrate`] streams a shard's objects and secrets over
//! the TRANSFER frames, then flips ownership with the old owner
//! forwarding stale traffic), and a load-driven [`Rebalancer`] decides
//! which shards should move. [`ElasticClient`] refreshes its shard map
//! from the directory when a call hits a drained replica.
//!
//! The discovery machinery lives in `amoeba-rpc` (`Locator` replica
//! sets, `Matchmaker` registration, the cluster wire frames of
//! `docs/PROTOCOL.md`); this crate composes it with the server runtime
//! into deployable placement groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dir;
mod elastic;
pub mod migrate;
mod rebalance;
mod registry;
mod replicated;
mod sharded;
mod sim;

pub use amoeba_rpc::{PlacementPolicy, Replica};
pub use dir::ShardedDir;
pub use elastic::{ElasticClient, ElasticCluster};
pub use migrate::{migrate_shard, MigrateError, MigrationStats, ShardMigration};
pub use rebalance::Rebalancer;
pub use registry::ClusterRegistry;
pub use replicated::{ClusterClient, HealthProber, ServiceCluster};
pub use sharded::{range_capability, ShardedClient, ShardedCluster};
pub use sim::SimReplicaSet;
