//! Replicated placement: N replicas serve one put-port, clients pick
//! one per call and fail over transparently.

use amoeba_cap::Capability;
use amoeba_net::{MachineId, Network, Port};
use amoeba_rpc::{Client, Locator, Matchmaker, PlacementPolicy, Replica, RpcConfig, RpcError};
use amoeba_server::proto::null_cap;
use amoeba_server::{ClientError, Service, ServiceClient, ServiceRunner};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A group of [`ServiceRunner`] replicas serving **one** put-port from
/// distinct machines.
///
/// Every replica binds the same get-port; with machine-targeted frames
/// (`Client::trans_to`) each request reaches exactly the replica a
/// placement policy picked, while broadcast LOCATE reaches all of them
/// — every live replica answers, which is how clients learn the set.
#[derive(Debug)]
pub struct ServiceCluster {
    put_port: Port,
    runners: Vec<ServiceRunner>,
}

impl ServiceCluster {
    /// Spawns `replicas` instances of the service (one per fresh
    /// open-interface machine, `workers` dispatch workers each), all
    /// bound to one shared random get-port. `factory(i)` builds the
    /// `i`-th replica's service instance.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn spawn_open<S: Service>(
        net: &Network,
        replicas: usize,
        workers: usize,
        mut factory: impl FnMut(usize) -> S,
    ) -> ServiceCluster {
        assert!(replicas > 0, "a cluster needs at least one replica");
        let get_port = Port::random(&mut StdRng::from_entropy());
        let runners: Vec<ServiceRunner> = (0..replicas)
            .map(|i| ServiceRunner::spawn_workers(net.attach_open(), get_port, factory(i), workers))
            .collect();
        let put_port = runners[0].put_port();
        ServiceCluster { put_port, runners }
    }

    /// The single put-port every replica serves.
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// The machines serving the port, in replica order.
    pub fn machines(&self) -> Vec<MachineId> {
        self.runners.iter().map(|r| r.machine()).collect()
    }

    /// Number of replicas (live or halted).
    pub fn replicas(&self) -> usize {
        self.runners.len()
    }

    /// Registers every replica (with its current load) at a registry.
    pub fn register_all(&self, registry: &Matchmaker) {
        for r in &self.runners {
            r.register(registry);
        }
    }

    /// Deregisters every replica.
    pub fn deregister_all(&self, registry: &Matchmaker) {
        for r in &self.runners {
            r.deregister(registry);
        }
    }

    /// Simulates a crash of replica `index`: its workers stop but its
    /// machine stays attached and keeps claiming the port, so clients
    /// that pick it see timeouts — exactly what the failover path must
    /// absorb. Returns the halted machine. Idempotent per replica.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn halt_replica(&mut self, index: usize) -> MachineId {
        let r = &mut self.runners[index];
        r.halt();
        r.machine()
    }

    /// Stops every replica and releases their machines.
    pub fn stop(self) {
        for r in self.runners {
            r.stop();
        }
    }
}

/// How a [`ClusterClient`] discovers the live replica set of a port.
#[derive(Debug)]
enum Discovery {
    /// Broadcast LOCATE; every live replica answers for itself.
    Broadcast(Locator),
    /// A rendezvous registry lookup (no broadcast; carries loads).
    Registry(Matchmaker),
}

impl Discovery {
    fn pick_cached(&self, port: Port) -> Option<MachineId> {
        match self {
            Discovery::Broadcast(l) => l.pick_cached(port),
            Discovery::Registry(m) => m.pick_cached(port),
        }
    }

    fn pick(&self, endpoint: &amoeba_net::Endpoint, port: Port) -> Option<MachineId> {
        match self {
            Discovery::Broadcast(l) => l.locate(endpoint, port),
            Discovery::Registry(m) => m.locate(endpoint, port),
        }
    }

    fn replicas(&self, endpoint: &amoeba_net::Endpoint, port: Port) -> Vec<Replica> {
        match self {
            Discovery::Broadcast(l) => l.replicas(endpoint, port),
            Discovery::Registry(m) => m.locate_all(endpoint, port),
        }
    }

    fn invalidate_machine(&self, port: Port, machine: MachineId) {
        match self {
            Discovery::Broadcast(l) => l.invalidate_machine(port, machine),
            Discovery::Registry(m) => m.invalidate_machine(port, machine),
        }
    }

    fn invalidate(&self, port: Port) {
        match self {
            Discovery::Broadcast(l) => l.invalidate(port),
            Discovery::Registry(m) => m.invalidate(port),
        }
    }
}

/// A service client for replicated clusters: resolves the replica set
/// of the destination port, picks one replica per call, and **fails
/// over transparently** — a transport timeout invalidates the picked
/// machine and retries the next replica, so callers see (slower)
/// successes, never errors, while at least one replica lives.
///
/// The call surface mirrors [`ServiceClient`]; code written against a
/// single server needs no change beyond construction.
///
/// # At-least-once, across replicas
///
/// Failover keeps the RPC layer's at-least-once contract (see
/// `docs/PROTOCOL.md`): a timeout does **not** prove the first replica
/// never executed the request — a merely slow replica may serve it
/// after the retry has gone to a survivor, executing the request
/// twice, once per machine. This is the same hazard as single-server
/// retransmission, widened to the replica set: services with
/// non-idempotent operations must deduplicate (or be deployed behind
/// the sharded shape, where a capability names exactly one owner).
/// Application errors never fail over — they come from a live replica,
/// and retrying elsewhere would duplicate work for certain.
#[derive(Debug)]
pub struct ClusterClient {
    svc: ServiceClient,
    discovery: Discovery,
    /// Discovery runs on its **own** endpoint (a second interface on
    /// the client host): LOCATE gathers drain their endpoint's queue
    /// wholesale, which must never race the transaction demux on the
    /// RPC endpoint. (Concurrent resolves are serialised inside
    /// `Locator`/`Matchmaker` themselves.)
    discovery_ep: amoeba_net::Endpoint,
    /// Upper bound on distinct replicas tried per call.
    max_attempts: usize,
    /// Transparent retries performed so far (observability: "callers
    /// see retries, not errors").
    failovers: AtomicU64,
}

impl ClusterClient {
    /// Default per-attempt transaction budget: short enough that
    /// failing over is fast, long enough for a loaded replica to
    /// answer. (One attempt per transaction — retransmission to a dead
    /// replica is wasted time; the retry goes to the *next* replica
    /// instead.)
    pub const DEFAULT_ATTEMPT_CONFIG: RpcConfig = RpcConfig {
        timeout: Duration::from_millis(150),
        attempts: 1,
    };

    /// A broadcast-discovery client on a fresh open-interface machine.
    pub fn broadcast(net: &Network) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Broadcast(Locator::new()),
            Self::DEFAULT_ATTEMPT_CONFIG,
        )
    }

    /// A registry-discovery client on a fresh open-interface machine.
    /// `registry` is a [`Matchmaker`] handle, e.g. from
    /// [`ClusterRegistry::handle`](crate::ClusterRegistry::handle).
    pub fn with_registry(net: &Network, registry: Matchmaker) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Registry(registry),
            Self::DEFAULT_ATTEMPT_CONFIG,
        )
    }

    /// A broadcast-discovery client with an explicit placement policy
    /// and per-attempt RPC config.
    pub fn broadcast_with(
        net: &Network,
        policy: PlacementPolicy,
        config: RpcConfig,
    ) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Broadcast(Locator::new().with_policy(policy)),
            config,
        )
    }

    fn with_parts(net: &Network, discovery: Discovery, config: RpcConfig) -> ClusterClient {
        ClusterClient {
            svc: ServiceClient::with_client(Client::with_config(net.attach_open(), config)),
            discovery,
            discovery_ep: net.attach_open(),
            max_attempts: 4,
            failovers: AtomicU64::new(0),
        }
    }

    fn pick(&self, port: Port) -> Option<MachineId> {
        // Fast path: a cached set costs one cache lock, no network;
        // only misses enter the (internally serialised) resolve path.
        if let Some(machine) = self.discovery.pick_cached(port) {
            return Some(machine);
        }
        self.discovery.pick(&self.discovery_ep, port)
    }

    /// Builder knob: the maximum number of distinct replicas tried per
    /// call before the last transport error is surfaced.
    ///
    /// # Panics
    /// Panics if `attempts` is zero.
    pub fn with_max_attempts(mut self, attempts: usize) -> ClusterClient {
        assert!(attempts > 0, "at least one attempt required");
        self.max_attempts = attempts;
        self
    }

    /// The live replica set of `port` as this client currently sees it
    /// (resolving if uncached).
    pub fn replicas(&self, port: Port) -> Vec<Replica> {
        self.discovery.replicas(&self.discovery_ep, port)
    }

    /// Drops the cached replica set for `port`, forcing the next call
    /// to re-resolve — e.g. after a known topology change, or when a
    /// resolve raced replica startup and cached a partial set.
    pub fn invalidate(&self, port: Port) {
        self.discovery.invalidate(port);
    }

    /// Transparent failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// The underlying generic service client.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }

    /// Invokes `command` on the object named by `cap`, on whichever
    /// live replica of `cap.port` the placement policy picks.
    ///
    /// # Errors
    /// Application errors ([`ClientError::Status`]) pass straight
    /// through — they come from a live replica and retrying elsewhere
    /// would duplicate work. Transport errors fail over; only when
    /// every attempt is exhausted does the last one surface.
    pub fn call(
        &self,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_routed(cap.port, cap, command, params)
    }

    /// Invokes a capability-less command (e.g. CREATE) on a picked
    /// replica of `port`.
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_anonymous(
        &self,
        port: Port,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_routed(port, &null_cap(), command, params)
    }

    fn call_routed(
        &self,
        port: Port,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        let mut last = ClientError::Rpc(RpcError::Timeout);
        for attempt in 0..self.max_attempts {
            let Some(machine) = self.pick(port) else {
                // Nobody answers LOCATE at all — either everything is
                // down or discovery itself timed out; surface the last
                // transport error.
                return Err(last);
            };
            match self
                .svc
                .call_at_on(port, machine, cap, command, params.clone())
            {
                Err(e @ ClientError::Rpc(RpcError::Timeout | RpcError::Disconnected)) => {
                    // The §3.4 moment: drop the dead replica from the
                    // cached set and let the next iteration route the
                    // same request to a survivor. The caller never
                    // sees this happen.
                    self.discovery.invalidate_machine(port, machine);
                    if attempt + 1 < self.max_attempts {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    last = e;
                }
                other => return other,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use amoeba_cap::Rights;
    use amoeba_server::proto::{Reply, Request, Status};
    use amoeba_server::wire;
    use amoeba_server::RequestCtx;
    use std::sync::Arc;

    /// A stateless service replicas can serve interchangeably: echoes
    /// the parameters and reports which replica answered.
    struct Echo {
        replica: u32,
    }

    const CMD_ECHO: u32 = 1;
    const CMD_WHO: u32 = 2;

    impl Service for Echo {
        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
            match req.command {
                CMD_ECHO => Reply::ok(req.params.clone()),
                CMD_WHO => Reply::ok(wire::Writer::new().u32(self.replica).finish()),
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    fn spawn_echo_cluster(net: &Network, replicas: usize) -> ServiceCluster {
        ServiceCluster::spawn_open(net, replicas, 1, |i| Echo { replica: i as u32 })
    }

    /// Resolves until all `n` replicas have answered a LOCATE — on a
    /// loaded host a replica can miss one gather window.
    fn warm_cache(client: &ClusterClient, port: Port, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.replicas(port).len() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "replicas never all answered LOCATE"
            );
            client.invalidate(port);
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn round_robin_spreads_calls_over_replicas() {
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let body = client
                .call_anonymous(cluster.put_port(), CMD_WHO, Bytes::new())
                .unwrap();
            seen.insert(wire::Reader::new(&body).u32().unwrap());
        }
        assert_eq!(seen.len(), 3, "every replica must serve some calls");
        assert_eq!(client.failovers(), 0);
        cluster.stop();
    }

    #[test]
    fn failover_is_transparent_to_the_caller() {
        let net = Network::new();
        let mut cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        // Warm the cache with all three replicas.
        warm_cache(&client, cluster.put_port(), 3);

        let dead = cluster.halt_replica(1);
        // Every call still succeeds; some pay a failover internally.
        for i in 0..6u32 {
            let body = client
                .call_anonymous(
                    cluster.put_port(),
                    CMD_ECHO,
                    Bytes::from(i.to_be_bytes().to_vec()),
                )
                .unwrap();
            assert_eq!(&body[..], i.to_be_bytes());
        }
        assert!(client.failovers() >= 1, "the dead replica was cached");
        let survivors: Vec<MachineId> = client
            .replicas(cluster.put_port())
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert!(!survivors.contains(&dead), "dead replica stays dropped");
        cluster.stop();
    }

    #[test]
    fn registry_discovery_without_broadcast() {
        let net = Network::new();
        let registry = crate::ClusterRegistry::spawn(&net, 2);
        let cluster = spawn_echo_cluster(&net, 2);
        cluster.register_all(&registry.handle());

        let client = ClusterClient::with_registry(&net, registry.handle());
        let before = net.stats().snapshot();
        for _ in 0..4 {
            client
                .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::from_static(b"x"))
                .unwrap();
        }
        assert_eq!(
            net.stats().snapshot().broadcasts_sent - before.broadcasts_sent,
            0,
            "registry discovery must not broadcast"
        );
        cluster.stop();
        registry.stop();
    }

    #[test]
    fn application_errors_do_not_fail_over() {
        // A live replica answering with an application error must not
        // trigger retries on other replicas (duplicated side effects).
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        let err = client
            .call_anonymous(cluster.put_port(), 0x999, Bytes::new())
            .unwrap_err();
        assert_eq!(err, ClientError::Status(Status::BadCommand));
        assert_eq!(client.failovers(), 0);
        cluster.stop();
    }

    #[test]
    fn every_replica_dead_surfaces_a_transport_error() {
        let net = Network::new();
        let mut cluster = spawn_echo_cluster(&net, 2);
        let client = ClusterClient::broadcast(&net).with_max_attempts(3);
        assert!(client
            .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::new())
            .is_ok());
        cluster.halt_replica(0);
        cluster.halt_replica(1);
        let err = client
            .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::new())
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Rpc(RpcError::Timeout)),
            "exhausted failover must surface the transport error: {err:?}"
        );
        cluster.stop();
    }

    #[test]
    fn concurrent_callers_share_one_cluster_client() {
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = Arc::new(ClusterClient::broadcast(&net));
        let port = cluster.put_port();
        let handles: Vec<_> = (0..6u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    assert_eq!(
                        client.call_anonymous(port, CMD_ECHO, body.clone()).unwrap(),
                        body
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        cluster.stop();
    }

    #[test]
    fn cluster_client_serves_capability_calls() {
        // The replicated shape also carries ordinary capability calls
        // (for replicated-state services); use a flatfs replica set of
        // one to exercise the cap path end to end.
        let net = Network::new();
        let cluster = ServiceCluster::spawn_open(&net, 1, 2, |_| {
            amoeba_flatfs::FlatFsServer::new(SchemeKind::Commutative)
        });
        let client = ClusterClient::broadcast(&net);
        let body = client
            .call_anonymous(cluster.put_port(), amoeba_flatfs::ops::CREATE, Bytes::new())
            .unwrap();
        let cap = wire::Reader::new(&body).cap().unwrap();
        client
            .call(
                &cap,
                amoeba_flatfs::ops::WRITE,
                wire::Writer::new().u64(0).bytes(b"hello").finish(),
            )
            .unwrap();
        let read = client
            .call(
                &cap,
                amoeba_flatfs::ops::READ,
                wire::Writer::new().u64(0).u32(5).finish(),
            )
            .unwrap();
        assert_eq!(&read[..], b"hello");
        // Rights still enforced through the cluster path.
        let ro = client.service().restrict(&cap, Rights::READ).unwrap();
        assert!(matches!(
            client.call(
                &ro,
                amoeba_flatfs::ops::WRITE,
                wire::Writer::new().u64(0).bytes(b"x").finish(),
            ),
            Err(ClientError::Status(Status::RightsViolation))
        ));
        cluster.stop();
    }
}
