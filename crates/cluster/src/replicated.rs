//! Replicated placement: N replicas serve one put-port, clients pick
//! one per call and fail over transparently.

use amoeba_cap::Capability;
use amoeba_net::{MachineId, Network, Port};
use amoeba_rpc::{Client, Locator, Matchmaker, PlacementPolicy, Replica, RpcConfig, RpcError};
use amoeba_server::proto::null_cap;
use amoeba_server::{ClientError, Service, ServiceClient, ServiceRunner};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A group of [`ServiceRunner`] replicas serving **one** put-port from
/// distinct machines.
///
/// Every replica binds the same get-port; with machine-targeted frames
/// (`Client::trans_to`) each request reaches exactly the replica a
/// placement policy picked, while broadcast LOCATE reaches all of them
/// — every live replica answers, which is how clients learn the set.
#[derive(Debug)]
pub struct ServiceCluster {
    put_port: Port,
    runners: Vec<ServiceRunner>,
}

impl ServiceCluster {
    /// Spawns `replicas` instances of the service (one per fresh
    /// open-interface machine, `workers` dispatch workers each), all
    /// bound to one shared random get-port. `factory(i)` builds the
    /// `i`-th replica's service instance.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn spawn_open<S: Service>(
        net: &Network,
        replicas: usize,
        workers: usize,
        mut factory: impl FnMut(usize) -> S,
    ) -> ServiceCluster {
        assert!(replicas > 0, "a cluster needs at least one replica");
        let get_port = Port::random(&mut StdRng::from_entropy());
        let runners: Vec<ServiceRunner> = (0..replicas)
            .map(|i| ServiceRunner::spawn_workers(net.attach_open(), get_port, factory(i), workers))
            .collect();
        let put_port = runners[0].put_port();
        ServiceCluster { put_port, runners }
    }

    /// The single put-port every replica serves.
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// The machines serving the port, in replica order.
    pub fn machines(&self) -> Vec<MachineId> {
        self.runners.iter().map(|r| r.machine()).collect()
    }

    /// Number of replicas (live or halted).
    pub fn replicas(&self) -> usize {
        self.runners.len()
    }

    /// Registers every replica (with its current load) at a registry.
    pub fn register_all(&self, registry: &Matchmaker) {
        for r in &self.runners {
            r.register(registry);
        }
    }

    /// Deregisters every replica.
    pub fn deregister_all(&self, registry: &Matchmaker) {
        for r in &self.runners {
            r.deregister(registry);
        }
    }

    /// Simulates a crash of replica `index`: its workers stop but its
    /// machine stays attached and keeps claiming the port, so clients
    /// that pick it see timeouts — exactly what the failover path must
    /// absorb. Returns the halted machine. Idempotent per replica.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn halt_replica(&mut self, index: usize) -> MachineId {
        let r = &mut self.runners[index];
        r.halt();
        r.machine()
    }

    /// Stops every replica and releases their machines.
    pub fn stop(self) {
        for r in self.runners {
            r.stop();
        }
    }
}

/// How a [`ClusterClient`] discovers the live replica set of a port.
#[derive(Debug)]
enum Discovery {
    /// Broadcast LOCATE; every live replica answers for itself.
    Broadcast(Locator),
    /// A rendezvous registry lookup (no broadcast; carries loads).
    Registry(Matchmaker),
}

impl Discovery {
    fn pick_cached(&self, endpoint: &amoeba_net::Endpoint, port: Port) -> Option<MachineId> {
        match self {
            Discovery::Broadcast(l) => l.pick_cached(endpoint, port),
            Discovery::Registry(m) => m.pick_cached(endpoint, port),
        }
    }

    fn replicas(&self, endpoint: &amoeba_net::Endpoint, port: Port) -> Vec<Replica> {
        match self {
            Discovery::Broadcast(l) => l.replicas(endpoint, port),
            Discovery::Registry(m) => m.locate_all(endpoint, port),
        }
    }

    fn invalidate_machine(&self, port: Port, machine: MachineId) {
        match self {
            Discovery::Broadcast(l) => l.invalidate_machine(port, machine),
            Discovery::Registry(m) => m.invalidate_machine(port, machine),
        }
    }

    fn invalidate(&self, port: Port) {
        match self {
            Discovery::Broadcast(l) => l.invalidate(port),
            Discovery::Registry(m) => m.invalidate(port),
        }
    }
}

/// A service client for replicated clusters: resolves the replica set
/// of the destination port, picks one replica per call, and **fails
/// over transparently** — a transport timeout invalidates the picked
/// machine and retries the next replica, so callers see (slower)
/// successes, never errors, while at least one replica lives.
///
/// The call surface mirrors [`ServiceClient`]; code written against a
/// single server needs no change beyond construction.
///
/// # At-least-once, across replicas
///
/// Failover keeps the RPC layer's at-least-once contract (see
/// `docs/PROTOCOL.md`): a timeout does **not** prove the first replica
/// never executed the request — a merely slow replica may serve it
/// after the retry has gone to a survivor, executing the request
/// twice, once per machine. This is the same hazard as single-server
/// retransmission, widened to the replica set: services with
/// non-idempotent operations must deduplicate (or be deployed behind
/// the sharded shape, where a capability names exactly one owner).
/// Application errors never fail over — they come from a live replica,
/// and retrying elsewhere would duplicate work for certain.
#[derive(Debug)]
pub struct ClusterClient {
    svc: ServiceClient,
    discovery: Discovery,
    /// Discovery runs on its **own** endpoint (a second interface on
    /// the client host): LOCATE gathers drain their endpoint's queue
    /// wholesale, which must never race the transaction demux on the
    /// RPC endpoint. (Concurrent resolves are serialised inside
    /// `Locator`/`Matchmaker` themselves.)
    discovery_ep: amoeba_net::Endpoint,
    /// Upper bound on distinct replicas tried per call.
    max_attempts: usize,
    /// Transparent retries performed so far (observability: "callers
    /// see retries, not errors").
    failovers: AtomicU64,
    /// Machines this client considers dead, per port, with the number
    /// of consecutive probe misses: invalidated on a transport error,
    /// or observed to have vanished from a fresh resolve (the
    /// TTL-expiry path, where a crashed replica silently drops out of
    /// the re-resolved set). The health probe's worklist; a machine
    /// leaves when a re-LOCATE shows it answering again (re-admission)
    /// or after [`MAX_PROBE_MISSES`](Self::MAX_PROBE_MISSES)
    /// consecutive misses (presumed permanently departed — a planned
    /// scale-down, not a crash).
    dead: Mutex<HashMap<Port, HashMap<MachineId, u32>>>,
    /// Every machine ever resolved for each port — the baseline the
    /// vanish detection diffs fresh resolves against.
    known: Mutex<HashMap<Port, HashSet<MachineId>>>,
}

impl ClusterClient {
    /// Default per-attempt transaction budget: short enough that
    /// failing over is fast, long enough for a loaded replica to
    /// answer. (One attempt per transaction — retransmission to a dead
    /// replica is wasted time; the retry goes to the *next* replica
    /// instead.)
    pub const DEFAULT_ATTEMPT_CONFIG: RpcConfig = RpcConfig {
        timeout: Duration::from_millis(150),
        attempts: 1,
    };

    /// A broadcast-discovery client on a fresh open-interface machine.
    pub fn broadcast(net: &Network) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Broadcast(Locator::new()),
            Self::DEFAULT_ATTEMPT_CONFIG,
        )
    }

    /// A registry-discovery client on a fresh open-interface machine.
    /// `registry` is a [`Matchmaker`] handle, e.g. from
    /// [`ClusterRegistry::handle`](crate::ClusterRegistry::handle).
    pub fn with_registry(net: &Network, registry: Matchmaker) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Registry(registry),
            Self::DEFAULT_ATTEMPT_CONFIG,
        )
    }

    /// A broadcast-discovery client with an explicit placement policy
    /// and per-attempt RPC config.
    pub fn broadcast_with(
        net: &Network,
        policy: PlacementPolicy,
        config: RpcConfig,
    ) -> ClusterClient {
        Self::with_parts(
            net,
            Discovery::Broadcast(Locator::new().with_policy(policy)),
            config,
        )
    }

    fn with_parts(net: &Network, discovery: Discovery, config: RpcConfig) -> ClusterClient {
        ClusterClient {
            svc: ServiceClient::with_client(Client::with_config(net.attach_open(), config)),
            discovery,
            discovery_ep: net.attach_open(),
            max_attempts: 4,
            failovers: AtomicU64::new(0),
            dead: Mutex::new(HashMap::new()),
            known: Mutex::new(HashMap::new()),
        }
    }

    fn pick(&self, port: Port) -> Option<MachineId> {
        // Fast path: a cached set costs one cache lock, no network;
        // only misses enter the (internally serialised) resolve path.
        if let Some(machine) = self.discovery.pick_cached(&self.discovery_ep, port) {
            return Some(machine);
        }
        // Cache miss: resolve the full set (one broadcast/lookup, same
        // cost as a single pick) so the vanish detection sees it, then
        // pick from the refreshed cache.
        let set = self.discovery.replicas(&self.discovery_ep, port);
        self.note_live(port, &set);
        self.discovery.pick_cached(&self.discovery_ep, port)
    }

    /// Records a fresh resolve: machines seen before but missing from
    /// `live` go on the dead list (they vanished — crash plus cache
    /// TTL expiry never produces a transport error to catch them);
    /// dead-listed machines present in `live` are re-admitted. Returns
    /// how many were re-admitted.
    fn note_live(&self, port: Port, live: &[Replica]) -> usize {
        // An empty set is a failed or timed-out resolve, not evidence
        // that every replica vanished: dead-listing the whole baseline
        // on one discovery blip would have the prober tearing down the
        // hot cache every interval. A genuinely dead sole replica is
        // still caught by the transport-error path.
        if live.is_empty() {
            return 0;
        }
        let live_set: HashSet<MachineId> = live.iter().map(|r| r.machine).collect();
        let mut known = self.known.lock();
        let baseline = known.entry(port).or_default();
        let mut dead = self.dead.lock();
        for &m in baseline.iter() {
            if !live_set.contains(&m) {
                dead.entry(port).or_default().entry(m).or_insert(0);
            }
        }
        let mut readmitted = 0;
        if let Some(set) = dead.get_mut(&port) {
            let before = set.len();
            set.retain(|m, _| !live_set.contains(m));
            readmitted = before - set.len();
            if set.is_empty() {
                dead.remove(&port);
            }
        }
        baseline.extend(live_set);
        readmitted
    }

    /// Builder knob: the maximum number of distinct replicas tried per
    /// call before the last transport error is surfaced.
    ///
    /// # Panics
    /// Panics if `attempts` is zero.
    pub fn with_max_attempts(mut self, attempts: usize) -> ClusterClient {
        assert!(attempts > 0, "at least one attempt required");
        self.max_attempts = attempts;
        self
    }

    /// The live replica set of `port` as this client currently sees it
    /// (resolving if uncached).
    pub fn replicas(&self, port: Port) -> Vec<Replica> {
        let set = self.discovery.replicas(&self.discovery_ep, port);
        self.note_live(port, &set);
        set
    }

    /// Drops the cached replica set for `port`, forcing the next call
    /// to re-resolve — e.g. after a known topology change, or when a
    /// resolve raced replica startup and cached a partial set.
    pub fn invalidate(&self, port: Port) {
        self.discovery.invalidate(port);
    }

    /// Transparent failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Consecutive health-probe misses before a dead-listed machine is
    /// presumed permanently departed (planned scale-down rather than a
    /// crash) and dropped from the probe's worklist — without this, a
    /// deregistered replica would keep the prober broadcasting LOCATE
    /// and churning the replica cache forever.
    pub const MAX_PROBE_MISSES: u32 = 8;

    /// The machines this client currently considers dead for `port`
    /// (invalidated on transport error or vanished from a resolve, not
    /// yet re-admitted or given up on).
    pub fn dead_replicas(&self, port: Port) -> Vec<MachineId> {
        self.dead
            .lock()
            .get(&port)
            .map(|s| s.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The **active health probe** (PR 3 follow-up: re-join used to be
    /// passive). For every port with dead-listed machines, forces one
    /// fresh discovery round (broadcast LOCATE / registry `LOCATE_ALL`)
    /// and re-admits every dead machine that answered — the fresh set
    /// replaces the cache, so a revived replica starts taking traffic
    /// on the next call instead of waiting out the cache TTL. Returns
    /// the number of machines re-admitted.
    ///
    /// Cheap when healthy: with an empty dead list this is one lock
    /// acquisition, no network traffic.
    pub fn probe_dead_once(&self) -> usize {
        let worklist: Vec<Port> = self.dead.lock().keys().copied().collect();
        let mut readmitted = 0;
        for port in worklist {
            // Force a fresh resolution (the cached set, by
            // construction, excludes the dead machines).
            self.discovery.invalidate(port);
            let set = self.discovery.replicas(&self.discovery_ep, port);
            readmitted += self.note_live(port, &set);
            // Charge a miss to every machine still dead after the
            // resolve; persistent no-shows are presumed departed and
            // leave both the worklist and the vanish baseline (if they
            // ever return, discovery re-learns them from scratch).
            //
            // Lock order: the `dead` lock is released before touching
            // `known` — `note_live` nests them the other way round
            // (known → dead), and holding both here would be an ABBA
            // deadlock against a concurrent resolve.
            let departed: Vec<MachineId> = {
                let mut dead = self.dead.lock();
                let mut departed = Vec::new();
                if let Some(entries) = dead.get_mut(&port) {
                    for (&machine, misses) in entries.iter_mut() {
                        *misses += 1;
                        if *misses >= Self::MAX_PROBE_MISSES {
                            departed.push(machine);
                        }
                    }
                    for machine in &departed {
                        entries.remove(machine);
                    }
                    if entries.is_empty() {
                        dead.remove(&port);
                    }
                }
                departed
            };
            if !departed.is_empty() {
                if let Some(known) = self.known.lock().get_mut(&port) {
                    for machine in &departed {
                        known.remove(machine);
                    }
                }
            }
        }
        readmitted
    }

    /// Spawns a background prober that calls
    /// [`probe_dead_once`](Self::probe_dead_once) every `interval` of
    /// **timeline** time (the network's clock: virtual-time tests probe
    /// in virtual time). Returns the prober handle; dropping (or
    /// [`stop`](HealthProber::stop)ping) it ends the thread.
    pub fn spawn_health_prober(self: &Arc<Self>, interval: Duration) -> HealthProber {
        let client = Arc::clone(self);
        let reactor = Arc::clone(self.discovery_ep.reactor());
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let reactor = Arc::clone(client.discovery_ep.reactor());
            while !stop.load(Ordering::Relaxed) {
                // Interruptible timeline sleep: wakes at the interval
                // or when the stop flag is raised (stop() notifies).
                let deadline = reactor.now() + interval;
                let _: Option<()> = reactor.park_until(Some(deadline), || {
                    stop.load(Ordering::Relaxed).then_some(())
                });
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                client.probe_dead_once();
            }
        });
        HealthProber {
            shutdown,
            reactor,
            handle: Some(handle),
        }
    }

    /// The underlying generic service client.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }

    /// The machine transactions are sent from (for topology/fault
    /// injection in tests).
    pub fn machine(&self) -> MachineId {
        self.svc.rpc().endpoint().id()
    }

    /// The machine discovery (LOCATE) runs from — a second interface
    /// on the client host.
    pub fn discovery_machine(&self) -> MachineId {
        self.discovery_ep.id()
    }

    /// Invokes `command` on the object named by `cap`, on whichever
    /// live replica of `cap.port` the placement policy picks.
    ///
    /// # Errors
    /// Application errors ([`ClientError::Status`]) pass straight
    /// through — they come from a live replica and retrying elsewhere
    /// would duplicate work. Transport errors fail over; only when
    /// every attempt is exhausted does the last one surface.
    pub fn call(
        &self,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_routed(cap.port, cap, command, params)
    }

    /// Invokes a capability-less command (e.g. CREATE) on a picked
    /// replica of `port`.
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_anonymous(
        &self,
        port: Port,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_routed(port, &null_cap(), command, params)
    }

    fn call_routed(
        &self,
        port: Port,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        let mut last = ClientError::Rpc(RpcError::Timeout);
        for attempt in 0..self.max_attempts {
            let Some(machine) = self.pick(port) else {
                // Nobody answers LOCATE at all — either everything is
                // down or discovery itself timed out; surface the last
                // transport error.
                return Err(last);
            };
            match self
                .svc
                .call_at_on(port, machine, cap, command, params.clone())
            {
                Err(e @ ClientError::Rpc(RpcError::Timeout | RpcError::Disconnected)) => {
                    // The §3.4 moment: drop the dead replica from the
                    // cached set and let the next iteration route the
                    // same request to a survivor. The caller never
                    // sees this happen. The machine also lands on the
                    // health probe's dead list for later re-admission
                    // (a fresh transport error restarts its probe
                    // budget).
                    self.discovery.invalidate_machine(port, machine);
                    self.dead.lock().entry(port).or_default().insert(machine, 0);
                    if attempt + 1 < self.max_attempts {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        let endpoint = self.svc.rpc().endpoint();
                        let obs = endpoint.obs();
                        if obs.enabled() {
                            obs.record(
                                amoeba_net::EventKind::Failover,
                                endpoint.now().since_epoch().as_nanos() as u64,
                                0,
                                port.value(),
                                u64::from(machine.as_u32()),
                            );
                            if let Some(m) = obs.metrics() {
                                m.failovers.add(1);
                            }
                        }
                    }
                    last = e;
                }
                other => return other,
            }
        }
        Err(last)
    }
}

/// A running background health probe for a [`ClusterClient`]; see
/// [`ClusterClient::spawn_health_prober`]. Stops on drop.
#[derive(Debug)]
pub struct HealthProber {
    shutdown: Arc<AtomicBool>,
    reactor: Arc<amoeba_net::Reactor>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthProber {
    /// Stops the probe thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // The prober parks on the reactor between rounds; wake it so
        // it observes the flag.
        self.reactor.notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HealthProber {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use amoeba_cap::Rights;
    use amoeba_server::proto::{Reply, Request, Status};
    use amoeba_server::wire;
    use amoeba_server::RequestCtx;
    use std::sync::Arc;

    /// A stateless service replicas can serve interchangeably: echoes
    /// the parameters and reports which replica answered.
    struct Echo {
        replica: u32,
    }

    const CMD_ECHO: u32 = 1;
    const CMD_WHO: u32 = 2;

    impl Service for Echo {
        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
            match req.command {
                CMD_ECHO => Reply::ok(req.params.clone()),
                CMD_WHO => Reply::ok(wire::Writer::new().u32(self.replica).finish()),
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    fn spawn_echo_cluster(net: &Network, replicas: usize) -> ServiceCluster {
        ServiceCluster::spawn_open(net, replicas, 1, |i| Echo { replica: i as u32 })
    }

    /// Resolves until all `n` replicas have answered a LOCATE — on a
    /// loaded host a replica can miss one gather window.
    fn warm_cache(client: &ClusterClient, port: Port, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.replicas(port).len() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "replicas never all answered LOCATE"
            );
            client.invalidate(port);
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn round_robin_spreads_calls_over_replicas() {
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let body = client
                .call_anonymous(cluster.put_port(), CMD_WHO, Bytes::new())
                .unwrap();
            seen.insert(wire::Reader::new(&body).u32().unwrap());
        }
        assert_eq!(seen.len(), 3, "every replica must serve some calls");
        assert_eq!(client.failovers(), 0);
        cluster.stop();
    }

    #[test]
    fn failover_is_transparent_to_the_caller() {
        let net = Network::new();
        let mut cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        // Warm the cache with all three replicas.
        warm_cache(&client, cluster.put_port(), 3);

        let dead = cluster.halt_replica(1);
        // Every call still succeeds; some pay a failover internally.
        for i in 0..6u32 {
            let body = client
                .call_anonymous(
                    cluster.put_port(),
                    CMD_ECHO,
                    Bytes::from(i.to_be_bytes().to_vec()),
                )
                .unwrap();
            assert_eq!(&body[..], i.to_be_bytes());
        }
        assert!(client.failovers() >= 1, "the dead replica was cached");
        let survivors: Vec<MachineId> = client
            .replicas(cluster.put_port())
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert!(!survivors.contains(&dead), "dead replica stays dropped");
        cluster.stop();
    }

    /// Severs (or restores) both of the client's interfaces to a
    /// replica machine — transactions and discovery alike.
    fn set_link(net: &Network, client: &ClusterClient, machine: MachineId, up: bool) {
        if up {
            net.heal(client.machine(), machine);
            net.heal(client.discovery_machine(), machine);
        } else {
            net.partition(client.machine(), machine);
            net.partition(client.discovery_machine(), machine);
        }
    }

    /// Calls until `victim` lands on the dead list (round-robin needs
    /// a few calls to trip over it), asserting every call succeeds.
    fn drive_until_dead(client: &ClusterClient, port: Port, victim: MachineId) {
        for i in 0..8u32 {
            let body = Bytes::from(i.to_be_bytes().to_vec());
            assert_eq!(
                client.call_anonymous(port, CMD_ECHO, body.clone()).unwrap(),
                body
            );
            if client.dead_replicas(port).contains(&victim) {
                return;
            }
        }
        panic!(
            "victim never invalidated: dead={:?}",
            client.dead_replicas(port)
        );
    }

    #[test]
    fn health_probe_readmits_a_healed_replica() {
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 2);
        let port = cluster.put_port();
        let client = ClusterClient::broadcast(&net);
        warm_cache(&client, port, 2);

        let victim = cluster.machines()[0];
        set_link(&net, &client, victim, false);
        drive_until_dead(&client, port, victim);

        // While the replica stays unreachable the probe re-admits
        // nothing — a dead machine must not come back on hope alone.
        assert_eq!(client.probe_dead_once(), 0);
        assert!(client.dead_replicas(port).contains(&victim));

        // Heal the link: the next probe re-LOCATEs and re-admits.
        set_link(&net, &client, victim, true);
        assert_eq!(client.probe_dead_once(), 1, "healed replica re-admitted");
        assert!(client.dead_replicas(port).is_empty());
        let live: Vec<MachineId> = client
            .replicas(port)
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert!(live.contains(&victim), "revived replica back in the set");

        // And it serves traffic again: spread calls until the victim
        // answers one (round-robin reaches it within the set size).
        for i in 0..4u32 {
            client
                .call_anonymous(port, CMD_ECHO, Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        assert_eq!(client.failovers(), 1, "no new failovers after re-admission");
        cluster.stop();
    }

    #[test]
    fn background_prober_readmits_on_the_virtual_clock() {
        let net = Network::new_virtual();
        let cluster = spawn_echo_cluster(&net, 2);
        let port = cluster.put_port();
        let client = Arc::new(ClusterClient::broadcast(&net));
        warm_cache(&client, port, 2);
        let prober = client.spawn_health_prober(Duration::from_millis(50));

        let victim = cluster.machines()[1];
        set_link(&net, &client, victim, false);
        drive_until_dead(&client, port, victim);
        set_link(&net, &client, victim, true);

        // The background prober runs on the virtual clock; give it
        // real time to do its (virtually timed) rounds.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !client.dead_replicas(port).is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "prober never re-admitted the healed replica"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let live: Vec<MachineId> = client
            .replicas(port)
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert!(live.contains(&victim));
        prober.stop();
        cluster.stop();
    }

    #[test]
    fn registry_discovery_without_broadcast() {
        let net = Network::new();
        let registry = crate::ClusterRegistry::spawn(&net, 2);
        let cluster = spawn_echo_cluster(&net, 2);
        cluster.register_all(&registry.handle());

        let client = ClusterClient::with_registry(&net, registry.handle());
        let before = net.stats().snapshot();
        for _ in 0..4 {
            client
                .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::from_static(b"x"))
                .unwrap();
        }
        assert_eq!(
            net.stats().snapshot().broadcasts_sent - before.broadcasts_sent,
            0,
            "registry discovery must not broadcast"
        );
        cluster.stop();
        registry.stop();
    }

    #[test]
    fn application_errors_do_not_fail_over() {
        // A live replica answering with an application error must not
        // trigger retries on other replicas (duplicated side effects).
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = ClusterClient::broadcast(&net);
        let err = client
            .call_anonymous(cluster.put_port(), 0x999, Bytes::new())
            .unwrap_err();
        assert_eq!(err, ClientError::Status(Status::BadCommand));
        assert_eq!(client.failovers(), 0);
        cluster.stop();
    }

    #[test]
    fn every_replica_dead_surfaces_a_transport_error() {
        let net = Network::new();
        let mut cluster = spawn_echo_cluster(&net, 2);
        let client = ClusterClient::broadcast(&net).with_max_attempts(3);
        assert!(client
            .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::new())
            .is_ok());
        cluster.halt_replica(0);
        cluster.halt_replica(1);
        let err = client
            .call_anonymous(cluster.put_port(), CMD_ECHO, Bytes::new())
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Rpc(RpcError::Timeout)),
            "exhausted failover must surface the transport error: {err:?}"
        );
        cluster.stop();
    }

    #[test]
    fn concurrent_callers_share_one_cluster_client() {
        let net = Network::new();
        let cluster = spawn_echo_cluster(&net, 3);
        let client = Arc::new(ClusterClient::broadcast(&net));
        let port = cluster.put_port();
        let handles: Vec<_> = (0..6u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    assert_eq!(
                        client.call_anonymous(port, CMD_ECHO, body.clone()).unwrap(),
                        body
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        cluster.stop();
    }

    #[test]
    fn cluster_client_serves_capability_calls() {
        // The replicated shape also carries ordinary capability calls
        // (for replicated-state services); use a flatfs replica set of
        // one to exercise the cap path end to end.
        let net = Network::new();
        let cluster = ServiceCluster::spawn_open(&net, 1, 2, |_| {
            amoeba_flatfs::FlatFsServer::new(SchemeKind::Commutative)
        });
        let client = ClusterClient::broadcast(&net);
        let body = client
            .call_anonymous(cluster.put_port(), amoeba_flatfs::ops::CREATE, Bytes::new())
            .unwrap();
        let cap = wire::Reader::new(&body).cap().unwrap();
        client
            .call(
                &cap,
                amoeba_flatfs::ops::WRITE,
                wire::Writer::new().u64(0).bytes(b"hello").finish(),
            )
            .unwrap();
        let read = client
            .call(
                &cap,
                amoeba_flatfs::ops::READ,
                wire::Writer::new().u64(0).u32(5).finish(),
            )
            .unwrap();
        assert_eq!(&read[..], b"hello");
        // Rights still enforced through the cluster path.
        let ro = client.service().restrict(&cap, Rights::READ).unwrap();
        assert!(matches!(
            client.call(
                &ro,
                amoeba_flatfs::ops::WRITE,
                wire::Writer::new().u64(0).bytes(b"x").finish(),
            ),
            Err(ClientError::Status(Status::RightsViolation))
        ));
        cluster.stop();
    }
}
