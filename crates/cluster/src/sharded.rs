//! Sharded placement: each replica owns an object-number range; the
//! shard index in a capability's object number routes to its owner.
//!
//! A stateful service cannot be served by "any replica" — an object
//! lives where it was created. The [`ObjectTable`] already stamps a
//! shard index into the low bits of every object number (the
//! lock-striping key); here that index becomes the **placement key**:
//! replica `i` of a `n`-way group only mints objects whose
//! `shard % n == i` (via [`Service::bind_shard_range`]), so any
//! capability names its owning replica. The directory server stores
//! one capability per range (§3.4: "the directory server … returns the
//! capability" — clients walk names, not machines), and the client
//! routes every call with [`placement_range`].
//!
//! [`ObjectTable`]: amoeba_server::ObjectTable
//! [`Service::bind_shard_range`]: amoeba_server::Service::bind_shard_range
//! [`placement_range`]: amoeba_server::placement_range

use amoeba_cap::{Capability, ObjectNum, Rights};
use amoeba_dirsvr::DirClient;
use amoeba_net::{Network, Port};
use amoeba_server::{placement_range, ClientError, Service, ServiceClient, ServiceRunner};
use amoeba_server::{wire, DEFAULT_SHARDS};
use bytes::Bytes;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The capability a directory stores for one object range: it names
/// the range owner's put-port and nothing else (object 0, no secret).
/// It is a *locator*, not an authorisation — the real per-object
/// capabilities are minted and validated by the range's server; this
/// entry only tells clients where requests for the range go, exactly
/// like the per-server directory entries of §3.4.
pub fn range_capability(port: Port) -> Capability {
    Capability::new(
        port,
        ObjectNum::new(0).expect("zero is a valid object number"),
        Rights::NONE,
        0,
    )
}

/// A sharded placement group: `n` replicas of one stateful service,
/// each on its own machine with its own put-port, each minting only
/// object numbers in its owned shard range.
#[derive(Debug)]
pub struct ShardedCluster {
    runners: Vec<ServiceRunner>,
    range_ports: Vec<Port>,
}

impl ShardedCluster {
    /// Spawns `replicas` instances (one per fresh open-interface
    /// machine, `workers` dispatch workers each). `factory(i)` builds
    /// the `i`-th replica, which is then bound to shard range `i` via
    /// [`Service::bind_shard_range`] before serving begins.
    ///
    /// # Panics
    /// Panics if `replicas` is zero or exceeds the object table's
    /// shard count ([`DEFAULT_SHARDS`]).
    pub fn spawn_open<S: Service>(
        net: &Network,
        replicas: usize,
        workers: usize,
        factory: impl FnMut(usize) -> S,
    ) -> ShardedCluster {
        Self::spawn_open_with_codec(
            net,
            replicas,
            workers,
            amoeba_rpc::CodecConfig::default(),
            factory,
        )
    }

    /// [`spawn_open`](Self::spawn_open) with explicit hot-path codec
    /// knobs for every replica's bound port — share one
    /// [`BufPool`](amoeba_net::BufPool) handle to meter the whole
    /// group's frame allocations, or pass
    /// [`CodecConfig::legacy`](amoeba_rpc::CodecConfig::legacy) for the
    /// pre-pool baseline.
    ///
    /// # Panics
    /// As for [`spawn_open`](Self::spawn_open).
    pub fn spawn_open_with_codec<S: Service>(
        net: &Network,
        replicas: usize,
        workers: usize,
        codec: amoeba_rpc::CodecConfig,
        mut factory: impl FnMut(usize) -> S,
    ) -> ShardedCluster {
        assert!(
            (1..=DEFAULT_SHARDS).contains(&replicas),
            "1..={DEFAULT_SHARDS} replicas per sharded group"
        );
        let mut rng = rand::rngs::StdRng::from_entropy();
        let runners: Vec<ServiceRunner> = (0..replicas)
            .map(|i| {
                let mut service = factory(i);
                service.bind_shard_range(i, replicas);
                let get_port = Port::random(&mut rng);
                ServiceRunner::spawn_workers_with_codec(
                    net.attach_open(),
                    get_port,
                    service,
                    workers,
                    codec.clone(),
                )
            })
            .collect();
        let range_ports = runners.iter().map(|r| r.put_port()).collect();
        ShardedCluster {
            runners,
            range_ports,
        }
    }

    /// The put-port of each range owner, in range order.
    pub fn range_ports(&self) -> &[Port] {
        &self.range_ports
    }

    /// Number of ranges/replicas.
    pub fn replicas(&self) -> usize {
        self.runners.len()
    }

    /// Stores the per-range capabilities under `dir` as
    /// `"<service>.range-<i>"` entries — the §3.4 directory shape a
    /// client bootstraps its range map from.
    ///
    /// # Errors
    /// Directory errors (`Conflict` if already published, rights).
    pub fn publish(
        &self,
        dirs: &DirClient,
        dir: &Capability,
        service: &str,
    ) -> Result<(), ClientError> {
        for (i, port) in self.range_ports.iter().enumerate() {
            dirs.enter(dir, &range_entry_name(service, i), &range_capability(*port))?;
        }
        Ok(())
    }

    /// Stops every replica.
    pub fn stop(self) {
        for r in self.runners {
            r.stop();
        }
    }
}

fn range_entry_name(service: &str, range: usize) -> String {
    format!("{service}.range-{range}")
}

/// A client for a sharded placement group: creations spread round-robin
/// over the ranges, and every capability-carrying call routes by the
/// capability's placement key — transparently, per §3.4: the caller
/// hands over a capability and never mentions a machine.
#[derive(Debug)]
pub struct ShardedClient {
    svc: ServiceClient,
    range_ports: Vec<Port>,
    /// Round-robin cursor for placements with no capability (CREATE).
    next_range: AtomicUsize,
}

impl ShardedClient {
    /// A client over an explicit range-port map (range `i` → port).
    ///
    /// # Panics
    /// Panics if `range_ports` is empty.
    pub fn new(svc: ServiceClient, range_ports: Vec<Port>) -> ShardedClient {
        assert!(!range_ports.is_empty(), "at least one range required");
        // Start each client's cursor at a random offset: a fleet of
        // clients created together would otherwise march over the
        // ranges in lockstep, convoying on one replica at a time.
        let start = rand::rngs::StdRng::from_entropy().next_u64() as usize % range_ports.len();
        ShardedClient {
            svc,
            range_ports,
            next_range: AtomicUsize::new(start),
        }
    }

    /// Bootstraps the range map from the `"<service>.range-<i>"`
    /// entries a [`ShardedCluster::publish`] stored under `dir`,
    /// reading consecutive ranges until the first missing index.
    ///
    /// # Errors
    /// [`ClientError`] from the directory walk; an empty map (no
    /// `range-0`) surfaces as the lookup's `NotFound`.
    pub fn from_directory(
        svc: ServiceClient,
        dirs: &DirClient,
        dir: &Capability,
        service: &str,
    ) -> Result<ShardedClient, ClientError> {
        let mut range_ports = Vec::new();
        loop {
            match dirs.lookup(dir, &range_entry_name(service, range_ports.len())) {
                Ok(cap) => range_ports.push(cap.port),
                Err(e) if range_ports.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(ShardedClient::new(svc, range_ports))
    }

    /// Number of ranges.
    pub fn ranges(&self) -> usize {
        self.range_ports.len()
    }

    /// The port owning `cap`'s object, by placement key. Assumes the
    /// replicas' object tables use the default
    /// [`DEFAULT_SHARDS`] striping — the contract
    /// [`Service::bind_shard_range`] documents.
    pub fn port_for(&self, cap: &Capability) -> Port {
        let range = placement_range(cap.object, DEFAULT_SHARDS, self.range_ports.len());
        self.range_ports[range]
    }

    /// Invokes a capability-less placement command (CREATE and
    /// friends) on the next range in round-robin order; the owning
    /// replica mints a capability whose object number carries that
    /// range.
    ///
    /// # Errors
    /// As for [`ServiceClient::call_anonymous`].
    pub fn call_create(&self, command: u32, params: Bytes) -> Result<Bytes, ClientError> {
        let range = self.next_range.fetch_add(1, Ordering::Relaxed) % self.range_ports.len();
        self.svc
            .call_anonymous(self.range_ports[range], command, params)
    }

    /// Invokes `command` on the object named by `cap`, routed to the
    /// replica owning `cap`'s shard range.
    ///
    /// # Errors
    /// As for [`ServiceClient::call`].
    pub fn call(
        &self,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.svc.call_at(self.port_for(cap), cap, command, params)
    }

    /// Asks the owning replica to fabricate a restricted
    /// sub-capability (the standard RESTRICT, routed by placement).
    ///
    /// # Errors
    /// As for [`ServiceClient::restrict`].
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ClientError> {
        let body = self.call(
            cap,
            amoeba_server::proto::cmd::STD_RESTRICT,
            wire::Writer::new().u32(keep.bits() as u32).finish(),
        )?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// The underlying generic service client.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use amoeba_dirsvr::DirServer;
    use amoeba_flatfs::{ops, FlatFsServer};

    fn sharded_fs(net: &Network, replicas: usize) -> (ShardedCluster, ShardedClient) {
        let cluster = ShardedCluster::spawn_open(net, replicas, 1, |_| {
            FlatFsServer::new(SchemeKind::Commutative)
        });
        let client = ShardedClient::new(ServiceClient::open(net), cluster.range_ports().to_vec());
        (cluster, client)
    }

    fn create(client: &ShardedClient) -> Capability {
        let body = client.call_create(ops::CREATE, Bytes::new()).unwrap();
        wire::Reader::new(&body).cap().unwrap()
    }

    #[test]
    fn placement_key_matches_the_minting_replica() {
        let net = Network::new();
        let (cluster, client) = sharded_fs(&net, 3);
        for _ in 0..12 {
            let cap = create(&client);
            // The replica that minted the capability stamped its own
            // put-port; the placement key must route right back to it.
            assert_eq!(
                client.port_for(&cap),
                cap.port,
                "object {} routed to the wrong range",
                cap.object
            );
        }
        cluster.stop();
    }

    #[test]
    fn creations_spread_over_every_range() {
        let net = Network::new();
        let (cluster, client) = sharded_fs(&net, 4);
        let used: std::collections::HashSet<Port> = (0..8).map(|_| create(&client).port).collect();
        assert_eq!(used.len(), 4, "round-robin must use every range");
        cluster.stop();
    }

    #[test]
    fn data_lives_and_validates_on_its_owning_range() {
        let net = Network::new();
        let (cluster, client) = sharded_fs(&net, 3);
        let caps: Vec<Capability> = (0..9).map(|_| create(&client)).collect();
        for (i, cap) in caps.iter().enumerate() {
            client
                .call(
                    cap,
                    ops::WRITE,
                    wire::Writer::new()
                        .u64(0)
                        .bytes(format!("file-{i}").as_bytes())
                        .finish(),
                )
                .unwrap();
        }
        for (i, cap) in caps.iter().enumerate() {
            let body = client
                .call(cap, ops::READ, wire::Writer::new().u64(0).u32(16).finish())
                .unwrap();
            assert_eq!(&body[..], format!("file-{i}").as_bytes());
        }
        // Restriction routes by placement too.
        let ro = client.restrict(&caps[0], Rights::READ).unwrap();
        assert!(matches!(
            client.call(
                &ro,
                ops::WRITE,
                wire::Writer::new().u64(0).bytes(b"x").finish()
            ),
            Err(ClientError::Status(
                amoeba_server::proto::Status::RightsViolation
            ))
        ));
        cluster.stop();
    }

    #[test]
    fn foreign_range_rejects_a_misrouted_capability() {
        // Routing a capability to the wrong range must fail closed:
        // the foreign replica has no such object.
        let net = Network::new();
        let (cluster, client) = sharded_fs(&net, 2);
        let cap = create(&client);
        let wrong: Vec<Port> = cluster
            .range_ports()
            .iter()
            .copied()
            .filter(|&p| p != client.port_for(&cap))
            .collect();
        let err = client
            .service()
            .call_at(
                wrong[0],
                &cap,
                ops::READ,
                wire::Writer::new().u64(0).u32(1).finish(),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Status(amoeba_server::proto::Status::NoSuchObject)
                    | ClientError::Status(amoeba_server::proto::Status::Forged)
            ),
            "foreign range must reject: {err:?}"
        );
        cluster.stop();
    }

    #[test]
    fn directory_publishes_and_bootstraps_the_range_map() {
        let net = Network::new();
        let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let dirs = DirClient::open(&net, dir_runner.put_port());
        let root = dirs.create_dir().unwrap();

        let (cluster, _direct) = sharded_fs(&net, 3);
        cluster.publish(&dirs, &root, "flatfs").unwrap();

        // A fresh client knows nothing but the directory.
        let client =
            ShardedClient::from_directory(ServiceClient::open(&net), &dirs, &root, "flatfs")
                .unwrap();
        assert_eq!(client.ranges(), 3);
        let cap = create(&client);
        assert_eq!(client.port_for(&cap), cap.port);

        // Unknown service name: NotFound.
        assert!(
            ShardedClient::from_directory(ServiceClient::open(&net), &dirs, &root, "ghost")
                .is_err()
        );
        cluster.stop();
        dir_runner.stop();
    }
}
