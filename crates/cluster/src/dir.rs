//! Hot-directory sharding: ONE logical directory whose entries are
//! hashed across several real directories on distinct directory-server
//! replicas.
//!
//! §3.4's directory server is a single object — fine until one
//! directory (a build tree's `obj/`, a mail spool) becomes the hot
//! spot every client hammers. A [`ShardedDir`] splits the *name space
//! of one directory* the same way [`ShardedCluster`](crate::ShardedCluster)
//! splits object placement: each entry name hashes to one of `n`
//! backing directories, so enters and lookups spread `n`-ways while
//! the caller still sees a single flat directory. Fan-out operations
//! (`list`, `lookup_many`, `enter_many`) group per backing port and
//! ride one BATCH_REQUEST frame per replica — the same batched
//! transaction machinery the rest of the fleet uses.
//!
//! The shard map itself is published as ordinary directory entries
//! (`"<name>.dirshard-<i>"`), so a fresh client bootstraps it with
//! plain lookups, exactly like a sharded service's range map.

use amoeba_cap::Capability;
use amoeba_dirsvr::{ops, DirClient};
use amoeba_net::Port;
use amoeba_server::{wire, ClientError};
use bytes::Bytes;

/// FNV-1a over the entry name — stable across clients, so every client
/// agrees which shard owns a name.
fn shard_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn shard_entry_name(name: &str, shard: usize) -> String {
    format!("{name}.dirshard-{shard}")
}

/// One logical directory sharded over `n` backing directories.
///
/// Entry names hash onto the backing directories; every single-name
/// operation routes to exactly one shard, and fan-out operations batch
/// one frame per backing replica. Entries are plain directory entries —
/// a shard's backing directory can be read with an ordinary
/// [`DirClient`] if ever needed.
#[derive(Debug, Clone)]
pub struct ShardedDir {
    shards: Vec<Capability>,
}

impl ShardedDir {
    /// Creates one backing directory on each of `ports` (typically one
    /// directory-server replica each).
    ///
    /// # Errors
    /// Transport errors from directory creation.
    ///
    /// # Panics
    /// Panics if `ports` is empty.
    pub fn create(dirs: &DirClient, ports: &[Port]) -> Result<ShardedDir, ClientError> {
        assert!(!ports.is_empty(), "at least one shard required");
        let shards = ports
            .iter()
            .map(|&p| dirs.create_dir_on(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedDir { shards })
    }

    /// Wraps existing backing directories (shard `i` = `shards[i]`).
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<Capability>) -> ShardedDir {
        assert!(!shards.is_empty(), "at least one shard required");
        ShardedDir { shards }
    }

    /// Number of backing directories.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Publishes the shard map under `parent` as
    /// `"<name>.dirshard-<i>"` entries.
    ///
    /// # Errors
    /// Directory errors (`Conflict` if already published, rights).
    pub fn publish(
        &self,
        dirs: &DirClient,
        parent: &Capability,
        name: &str,
    ) -> Result<(), ClientError> {
        for (i, shard) in self.shards.iter().enumerate() {
            dirs.enter(parent, &shard_entry_name(name, i), shard)?;
        }
        Ok(())
    }

    /// Bootstraps the shard map back from a published parent, reading
    /// consecutive shards until the first missing index.
    ///
    /// # Errors
    /// The first lookup's error if no `dirshard-0` exists.
    pub fn from_directory(
        dirs: &DirClient,
        parent: &Capability,
        name: &str,
    ) -> Result<ShardedDir, ClientError> {
        let mut shards = Vec::new();
        loop {
            match dirs.lookup(parent, &shard_entry_name(name, shards.len())) {
                Ok(cap) => shards.push(cap),
                Err(e) if shards.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(ShardedDir { shards })
    }

    /// The backing directory owning `name`.
    fn shard_for(&self, name: &str) -> &Capability {
        &self.shards[(shard_hash(name) % self.shards.len() as u64) as usize]
    }

    /// Looks `name` up — a single-shard call (and a [`DirClient`]
    /// cache hit costs no frame at all).
    ///
    /// # Errors
    /// As for [`DirClient::lookup`].
    pub fn lookup(&self, dirs: &DirClient, name: &str) -> Result<Capability, ClientError> {
        dirs.lookup(self.shard_for(name), name)
    }

    /// Enters `(name, cap)` into the owning shard.
    ///
    /// # Errors
    /// As for [`DirClient::enter`].
    pub fn enter(&self, dirs: &DirClient, name: &str, cap: &Capability) -> Result<(), ClientError> {
        dirs.enter(self.shard_for(name), name, cap)
    }

    /// Removes `name` from the owning shard.
    ///
    /// # Errors
    /// As for [`DirClient::remove`].
    pub fn remove(&self, dirs: &DirClient, name: &str) -> Result<(), ClientError> {
        dirs.remove(self.shard_for(name), name)
    }

    /// Renames `from` to `to`. Within one shard this is the server's
    /// atomic RENAME; across shards it decomposes into
    /// lookup + enter + remove, which is **not atomic** — a concurrent
    /// reader may briefly see both names or (on a crash between steps)
    /// the entry under both.
    ///
    /// # Errors
    /// `NotFound` if `from` is absent, `Conflict` if `to` exists.
    pub fn rename(&self, dirs: &DirClient, from: &str, to: &str) -> Result<(), ClientError> {
        let src = *self.shard_for(from);
        let dst = *self.shard_for(to);
        if src == dst {
            return dirs.rename(&src, from, to);
        }
        let cap = dirs.lookup(&src, from)?;
        dirs.enter(&dst, to, &cap)?;
        dirs.remove(&src, from)
    }

    /// Groups per-shard calls by backing **port**, so shards colocated
    /// on one replica share a single BATCH_REQUEST frame.
    fn batched<T>(
        &self,
        dirs: &DirClient,
        calls: Vec<(Capability, u32, Bytes)>,
        mut parse: impl FnMut(Result<Bytes, ClientError>) -> Result<T, ClientError>,
    ) -> Result<Vec<Result<T, ClientError>>, ClientError> {
        let mut order: Vec<usize> = (0..calls.len()).collect();
        order.sort_by_key(|&i| calls[i].0.port);
        let mut out: Vec<Option<Result<T, ClientError>>> = Vec::new();
        out.resize_with(calls.len(), || None);
        let mut calls: Vec<Option<(Capability, u32, Bytes)>> =
            calls.into_iter().map(Some).collect();
        let mut i = 0;
        while i < order.len() {
            let port = calls[order[i]].as_ref().expect("unconsumed").0.port;
            let mut group_idx = Vec::new();
            let mut group = Vec::new();
            while i < order.len() {
                let call = calls[order[i]].as_ref().expect("unconsumed");
                if call.0.port != port {
                    break;
                }
                group.push(calls[order[i]].take().expect("unconsumed"));
                group_idx.push(order[i]);
                i += 1;
            }
            let replies = dirs.service().call_batch(port, group)?;
            for (slot, reply) in group_idx.into_iter().zip(replies) {
                out[slot] = Some(parse(reply));
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect())
    }

    /// Looks many names up at once — one frame per backing replica,
    /// results in input order (each name fails independently).
    ///
    /// # Errors
    /// Transport errors that sink a whole batch frame.
    pub fn lookup_many(
        &self,
        dirs: &DirClient,
        names: &[&str],
    ) -> Result<Vec<Result<Capability, ClientError>>, ClientError> {
        let calls = names
            .iter()
            .map(|name| {
                (
                    *self.shard_for(name),
                    ops::LOOKUP,
                    wire::Writer::new().str(name).finish(),
                )
            })
            .collect();
        self.batched(dirs, calls, |reply| {
            reply.and_then(|body| wire::Reader::new(&body).cap().ok_or(ClientError::Malformed))
        })
    }

    /// Enters many `(name, cap)` pairs at once — one frame per backing
    /// replica, results in input order.
    ///
    /// # Errors
    /// Transport errors that sink a whole batch frame.
    pub fn enter_many(
        &self,
        dirs: &DirClient,
        entries: &[(&str, Capability)],
    ) -> Result<Vec<Result<(), ClientError>>, ClientError> {
        let calls = entries
            .iter()
            .map(|(name, cap)| {
                (
                    *self.shard_for(name),
                    ops::ENTER,
                    wire::Writer::new().str(name).cap(cap).finish(),
                )
            })
            .collect();
        self.batched(dirs, calls, |reply| reply.map(|_| ()))
    }

    /// Lists the whole logical directory: every shard's LIST rides a
    /// batch frame per backing replica, and the merged result comes
    /// back sorted — indistinguishable from one flat directory.
    ///
    /// # Errors
    /// Any shard's failure fails the list.
    pub fn list(&self, dirs: &DirClient) -> Result<Vec<String>, ClientError> {
        let calls = self
            .shards
            .iter()
            .map(|shard| (*shard, ops::LIST, Bytes::new()))
            .collect();
        let per_shard = self.batched(dirs, calls, |reply| {
            let body = reply?;
            let mut r = wire::Reader::new(&body);
            let n = r.u32().ok_or(ClientError::Malformed)?;
            let mut names = Vec::with_capacity(n as usize);
            for _ in 0..n {
                names.push(r.str().ok_or(ClientError::Malformed)?);
            }
            Ok(names)
        })?;
        let mut all = Vec::new();
        for names in per_shard {
            all.extend(names?);
        }
        all.sort_unstable();
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use amoeba_dirsvr::DirServer;
    use amoeba_net::Network;
    use amoeba_server::ServiceRunner;
    use amoeba_server::{proto::Status, ServiceClient};

    fn setup(replicas: usize) -> (Network, Vec<ServiceRunner>, DirClient, ShardedDir) {
        let net = Network::new();
        let runners: Vec<ServiceRunner> = (0..replicas)
            .map(|_| ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative)))
            .collect();
        let dirs = DirClient::open(&net, runners[0].put_port());
        let ports: Vec<Port> = runners.iter().map(|r| r.put_port()).collect();
        let sharded = ShardedDir::create(&dirs, &ports).unwrap();
        (net, runners, dirs, sharded)
    }

    #[test]
    fn behaves_like_one_flat_directory() {
        let (_net, runners, dirs, hot) = setup(3);
        let mut names: Vec<String> = (0..24).map(|i| format!("entry-{i}")).collect();
        for name in &names {
            let target = dirs.create_dir().unwrap();
            hot.enter(&dirs, name, &target).unwrap();
            assert_eq!(hot.lookup(&dirs, name).unwrap(), target);
        }
        names.sort_unstable();
        assert_eq!(hot.list(&dirs).unwrap(), names);

        hot.remove(&dirs, "entry-7").unwrap();
        assert_eq!(
            hot.lookup(&dirs, "entry-7").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        assert_eq!(hot.list(&dirs).unwrap().len(), 23);
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn entries_spread_across_replicas() {
        let (_net, runners, dirs, hot) = setup(3);
        for i in 0..30 {
            let target = dirs.create_dir().unwrap();
            hot.enter(&dirs, &format!("file-{i}"), &target).unwrap();
        }
        // Every backing directory got some of the load.
        for shard in &hot.shards {
            assert!(
                !dirs.list(shard).unwrap().is_empty(),
                "a shard sat idle — hashing is not spreading"
            );
        }
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn batched_fanout_is_one_frame_per_replica() {
        let (net, runners, dirs, hot) = setup(3);
        let names: Vec<String> = (0..12).map(|i| format!("n{i}")).collect();
        let entries: Vec<(&str, Capability)> = names
            .iter()
            .map(|n| (n.as_str(), dirs.create_dir().unwrap()))
            .collect();

        let before = net.stats().snapshot().packets_sent;
        let results = hot.enter_many(&dirs, &entries).unwrap();
        let enter_frames = net.stats().snapshot().packets_sent - before;
        assert!(results.iter().all(Result::is_ok));
        // ≤ one round-trip per replica, not per entry.
        assert!(
            enter_frames <= 2 * 3,
            "12 enters across 3 replicas took {enter_frames} frames"
        );

        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let before = net.stats().snapshot().packets_sent;
        let found = hot.lookup_many(&dirs, &name_refs).unwrap();
        let lookup_frames = net.stats().snapshot().packets_sent - before;
        assert!(lookup_frames <= 2 * 3);
        for ((_, entered), got) in entries.iter().zip(&found) {
            assert_eq!(got.as_ref().unwrap(), entered);
        }
        // Misses fail individually, in order.
        let mixed = hot.lookup_many(&dirs, &["n0", "ghost"]).unwrap();
        assert!(mixed[0].is_ok());
        assert_eq!(
            mixed[1].as_ref().unwrap_err(),
            &ClientError::Status(Status::NotFound)
        );
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn cross_shard_rename_moves_the_entry() {
        let (_net, runners, dirs, hot) = setup(4);
        let target = dirs.create_dir().unwrap();
        // Find two names living on different shards.
        let names: Vec<String> = (0..64).map(|i| format!("x{i}")).collect();
        let (from, to) = names
            .iter()
            .flat_map(|a| names.iter().map(move |b| (a, b)))
            .find(|(a, b)| hot.shard_for(a) != hot.shard_for(b))
            .expect("64 names must straddle 4 shards");
        hot.enter(&dirs, from, &target).unwrap();
        hot.rename(&dirs, from, to).unwrap();
        assert_eq!(hot.lookup(&dirs, to).unwrap(), target);
        assert_eq!(
            hot.lookup(&dirs, from).unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        for r in runners {
            r.stop();
        }
    }

    /// Pins the documented non-atomicity of a cross-shard rename by
    /// replaying its exact decomposition (lookup → enter → remove) and
    /// checking the state a concurrent reader would see at every step
    /// boundary. The legal intermediate states are exactly:
    /// `{from}` (before), `{from, to}` (between enter and remove — both
    /// names resolve to the same capability), `{to}` (after). The entry
    /// is never absent and never resolves to a different capability.
    #[test]
    fn cross_shard_rename_intermediate_states_are_the_documented_ones() {
        let (_net, runners, dirs, hot) = setup(3);
        let target = dirs.create_dir().unwrap();
        let names: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let (from, to) = names
            .iter()
            .flat_map(|a| names.iter().map(move |b| (a, b)))
            .find(|(a, b)| hot.shard_for(a) != hot.shard_for(b))
            .expect("64 names must straddle 3 shards");
        hot.enter(&dirs, from, &target).unwrap();

        let observe = || (hot.lookup(&dirs, from).ok(), hot.lookup(&dirs, to).ok());

        assert_eq!(observe(), (Some(target), None));
        // Step 1: lookup — pure read, mutates nothing.
        let src = *hot.shard_for(from);
        let dst = *hot.shard_for(to);
        let cap = dirs.lookup(&src, from).unwrap();
        assert_eq!(cap, target);
        assert_eq!(observe(), (Some(target), None));
        // Step 2: enter on the destination shard. The transient a
        // reader may catch: BOTH names resolve, to the same target.
        dirs.enter(&dst, to, &cap).unwrap();
        assert_eq!(
            observe(),
            (Some(target), Some(target)),
            "the documented transient is both-names-visible; a gap \
             where neither resolves would lose the entry on a crash"
        );
        // Step 3: remove from the source shard — the terminal state.
        dirs.remove(&src, from).unwrap();
        assert_eq!(observe(), (None, Some(target)));
        for r in runners {
            r.stop();
        }
    }

    /// A same-shard rename must stay the server's single atomic RENAME
    /// op — one round-trip, no decomposition, no observable transient.
    #[test]
    fn same_shard_rename_is_one_atomic_server_op() {
        let (net, runners, dirs, hot) = setup(3);
        let target = dirs.create_dir().unwrap();
        let names: Vec<String> = (0..64).map(|i| format!("t{i}")).collect();
        let (from, to) = names
            .iter()
            .flat_map(|a| names.iter().map(move |b| (a, b)))
            .find(|(a, b)| a != b && hot.shard_for(a) == hot.shard_for(b))
            .expect("64 names must collide somewhere on 3 shards");
        hot.enter(&dirs, from, &target).unwrap();

        let before = net.stats().snapshot().packets_sent;
        hot.rename(&dirs, from, to).unwrap();
        let frames = net.stats().snapshot().packets_sent - before;
        assert!(
            frames <= 2,
            "same-shard rename took {frames} frames — it decomposed \
             instead of riding the server's atomic RENAME"
        );
        assert_eq!(hot.lookup(&dirs, to).unwrap(), target);
        assert_eq!(
            hot.lookup(&dirs, from).unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn publishes_and_bootstraps_the_shard_map() {
        let (net, runners, dirs, hot) = setup(2);
        let parent = dirs.create_dir().unwrap();
        hot.publish(&dirs, &parent, "spool").unwrap();
        let target = dirs.create_dir().unwrap();
        hot.enter(&dirs, "mail", &target).unwrap();

        // A fresh client knows only the parent directory.
        let fresh = DirClient::with_service(ServiceClient::open(&net), runners[0].put_port());
        let rebuilt = ShardedDir::from_directory(&fresh, &parent, "spool").unwrap();
        assert_eq!(rebuilt.shards(), 2);
        assert_eq!(rebuilt.lookup(&fresh, "mail").unwrap(), target);
        assert!(ShardedDir::from_directory(&fresh, &parent, "ghost").is_err());
        for r in runners {
            r.stop();
        }
    }
}
