//! Addresses: machine identifiers and 48-bit ports.

use std::fmt;

/// The hardware address of a simulated machine.
///
/// Source addresses are stamped by the network itself on every send and
/// cannot be forged by user code — the property §2.4 of the paper builds
/// its key matrix on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub(crate) u32);

impl MachineId {
    /// The raw numeric id (useful as an index into key matrices).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for MachineId {
    /// Reconstructs a machine id from its numeric form (e.g. when
    /// decoding a LOCATE reply). Note this only names a machine; packet
    /// *sources* are always stamped by the network and cannot be forged
    /// this way.
    fn from(v: u32) -> MachineId {
        MachineId(v)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A 48-bit Amoeba port.
///
/// "Ports consist of large numbers, typically 48 bits, which are known
/// only to the server processes that comprise the service, and to the
/// server's clients" (§2.2). The sparseness of the 48-bit space *is* the
/// protection: guessing a claimed port has probability ≈ 2⁻⁴⁸ per try.
///
/// `Port` is a validated newtype: the inner value is guaranteed to fit
/// in 48 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(u64);

/// Mask of the 48 usable port bits.
pub(crate) const PORT_MASK: u64 = (1 << 48) - 1;

impl Port {
    /// The reserved broadcast destination. Packets sent here are
    /// delivered to every machine regardless of port claims — the
    /// substrate for LOCATE (§2.2).
    pub const BROADCAST: Port = Port(0);

    /// The null port, used for absent header fields.
    pub const NULL: Port = Port(PORT_MASK);

    /// Creates a port from a 48-bit value.
    ///
    /// Returns `None` if the value exceeds 48 bits or collides with the
    /// reserved [`BROADCAST`](Port::BROADCAST) / [`NULL`](Port::NULL)
    /// values.
    pub fn new(value: u64) -> Option<Port> {
        if value > PORT_MASK || value == Self::BROADCAST.0 || value == Self::NULL.0 {
            None
        } else {
            Some(Port(value))
        }
    }

    /// Creates a port by truncating to 48 bits, remapping the two
    /// reserved values into ordinary nearby ports.
    ///
    /// This is what the F-box uses on the *output* of the one-way
    /// function, which may land on a reserved value with probability
    /// 2⁻⁴⁷ — remapping keeps `F` total without giving anyone the
    /// broadcast port.
    pub fn from_raw(value: u64) -> Port {
        let v = value & PORT_MASK;
        if v == Self::BROADCAST.0 {
            Port(1)
        } else if v == Self::NULL.0 {
            Port(PORT_MASK - 1)
        } else {
            Port(v)
        }
    }

    /// Draws a uniformly random (secret) port — how servers pick
    /// get-ports and clients pick reply get-ports.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Port {
        loop {
            if let Some(p) = Port::new(rng.gen::<u64>() & PORT_MASK) {
                return p;
            }
        }
    }

    /// The raw 48-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Whether this is the broadcast port.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether this is the null port.
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "port:BROADCAST")
        } else if self.is_null() {
            write!(f, "port:NULL")
        } else {
            write!(f, "port:{:012x}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn reserved_values_rejected_by_new() {
        assert!(Port::new(0).is_none());
        assert!(Port::new(PORT_MASK).is_none());
        assert!(Port::new(PORT_MASK + 1).is_none());
        assert!(Port::new(1).is_some());
        assert!(Port::new(PORT_MASK - 1).is_some());
    }

    #[test]
    fn from_raw_remaps_reserved() {
        assert_eq!(Port::from_raw(0), Port(1));
        assert_eq!(Port::from_raw(PORT_MASK), Port(PORT_MASK - 1));
        assert_eq!(Port::from_raw(42), Port(42));
        assert_eq!(Port::from_raw(PORT_MASK + 42 + 1), Port(42));
    }

    #[test]
    fn random_ports_are_valid_and_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = Port::random(&mut rng);
            assert!(!p.is_broadcast() && !p.is_null());
            seen.insert(p);
        }
        assert_eq!(seen.len(), 1000, "48-bit random ports should not collide");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Port::BROADCAST.to_string(), "port:BROADCAST");
        assert_eq!(Port::NULL.to_string(), "port:NULL");
        assert_eq!(Port::new(0xABC).unwrap().to_string(), "port:000000000abc");
        assert_eq!(MachineId(7).to_string(), "m7");
    }

    proptest! {
        #[test]
        fn from_raw_always_valid(v: u64) {
            let p = Port::from_raw(v);
            prop_assert!(!p.is_broadcast());
            prop_assert!(!p.is_null());
            prop_assert!(p.value() <= PORT_MASK);
        }

        #[test]
        fn new_accepts_exactly_nonreserved_48bit(v in 1u64..PORT_MASK) {
            prop_assert_eq!(Port::new(v).map(Port::value), Some(v));
        }
    }
}
