//! Reusable frame-buffer pools for the allocation-free, lock-free
//! send path.
//!
//! Every wire frame this workspace transmits is built in a `BytesMut`
//! and frozen into the packet's [`Bytes`] payload. Before this pool
//! existed, each frame paid a fresh heap allocation; with it, the
//! steady-state send path allocates **nothing**: the encoder takes a
//! recycled buffer from its endpoint's [`BufPool`], the sender retires
//! the frozen frame back into the pool after transmission, and the
//! pool resurrects the backing storage once every receiver has dropped
//! its zero-copy slices of the payload.
//!
//! # Lifecycle
//!
//! ```text
//! take() ──► BytesMut ──encode──► freeze() ──send──► retire()
//!    ▲                                                  │
//!    │            (receivers still hold slices)         ▼
//!  free list ◄──try_reclaim() once unique──── retired queue
//! ```
//!
//! A retired frame whose payload is still referenced (a packet in
//! flight, a decoded body held by a handler) parks in a bounded queue;
//! each `take` first sweeps that queue for buffers that have become
//! uniquely owned. All queues are bounded, so a pool can never hoard
//! more than a fixed amount of memory, and oversized buffers are
//! dropped rather than retained.
//!
//! # Thread-local fast path
//!
//! The steady-state take/retire cycle runs entirely on a per-thread
//! cache: each thread keeps a small free list and retired queue keyed
//! by pool identity, so a client thread recycles its request frames
//! and a server worker recycles its reply frames with **zero lock
//! acquisitions**. The shared, mutex-guarded queues remain as spill
//! targets (cache overflow, cross-thread imbalance) and their locks
//! are counted [`HotMutex`]es — the hot-path gate measures that steady
//! state never touches them.
//!
//! Two retire disciplines keep buffers circulating back to the thread
//! that will take them next:
//!
//! * [`retire`](BufPool::retire) — for frames **this thread took**
//!   (a client's request frame, a server's reply frame). Still-shared
//!   frames park in this thread's cache; the storage comes home once
//!   receivers drop their slices.
//! * [`release`](BufPool::release) — for **foreign** handles (a server
//!   releasing slices of a client-built request, a handler's reply
//!   body that may alias the request). Reclaims if already unique,
//!   otherwise just drops the handle so the frame's owner — not this
//!   thread — parks the storage. Parking foreign storage here would
//!   strand client buffers in server caches (and risk two threads
//!   parking siblings of one allocation, pinning it forever).
//!
//! # Measurement
//!
//! The pool counts `takes`, `fresh_allocs` (takes that had to
//! allocate) and `reuses` (takes served from recycled storage) per
//! instance, plus every acquisition of its spill locks via a
//! [`LockMeter`] shared with the rest of the fleet's hot mutexes —
//! race-free accounting for benchmarks and acceptance gates even when
//! unrelated tests run concurrently in the same process. A pool built
//! with [`BufPool::disabled`] never recycles (every take is a fresh
//! allocation) but still counts, which is exactly the pre-pool
//! baseline the `hot_path` bench compares against. The metric is
//! **backing storage**: each take→freeze→retire cycle still creates
//! and frees one small `Arc` control block for shared ownership of the
//! payload — bounded, size-independent, and deliberately outside the
//! counter (see `bytes::stats`).

use crate::sync::{HotMutex, LockMeter};

use bytes::{Bytes, BytesMut};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Initial capacity of freshly allocated pool buffers — enough for a
/// typical request/reply frame (tag + 16-byte capability header + small
/// params) without a growth reallocation; batch frames grow once and
/// then keep their larger capacity across reuses.
const FRESH_CAPACITY: usize = 256;

/// Upper bound on reclaimed buffers kept ready in the shared free list.
const MAX_FREE: usize = 64;

/// Upper bound on retired-but-still-shared frames awaiting reclamation
/// in the shared queue. Beyond this the oldest entry is dropped (its
/// storage simply returns to the allocator when the last reference
/// dies).
const MAX_RETIRED: usize = 128;

/// Buffers that grew beyond this are dropped instead of pooled, so one
/// giant frame cannot pin megabytes in every pool forever.
const MAX_RETAINED_CAPACITY: usize = 64 * 1024;

/// Per-thread free-list bound. A thread's steady-state working set is
/// a handful of in-flight frames; overflow is dropped — owner-parking
/// already routes every taken buffer back to its taking thread, so a
/// full list means this thread holds a genuine surplus.
const TL_MAX_FREE: usize = 8;

/// Per-thread retired-queue bound. Overflow triggers a lock-free local
/// sweep; only frames still shared after a whole cap cycle spill to
/// the shared queue.
const TL_MAX_RETIRED: usize = 16;

/// Distinguishes pools so one thread's cache never mixes buffers from
/// two pools. Identity, not index: ids are never reused.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

struct TlCache {
    pool_id: u64,
    free: Vec<Vec<u8>>,
    retired: Vec<Bytes>,
}

thread_local! {
    static TL_CACHE: RefCell<TlCache> = const {
        RefCell::new(TlCache {
            pool_id: 0,
            free: Vec::new(),
            retired: Vec::new(),
        })
    };
}

#[derive(Debug)]
struct PoolInner {
    /// `false` for the measurement baseline: take() always allocates.
    enabled: bool,
    /// Identity tag for the thread-local caches.
    id: u64,
    /// Reclaimed storage, ready to hand out (shared spill).
    free: HotMutex<Vec<Vec<u8>>>,
    /// Sent frames whose payload may still be referenced (shared spill).
    retired: HotMutex<VecDeque<Bytes>>,
    takes: AtomicU64,
    fresh: AtomicU64,
    reused: AtomicU64,
    meter: LockMeter,
}

/// A bounded pool of reusable frame buffers (see the module docs).
///
/// Cheap to clone — clones share the same pool, so one pool can serve
/// an endpoint's encoder and the completion handles that retire frames
/// back into it.
#[derive(Debug, Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufPool {
    /// An enabled pool (the production default).
    pub fn new() -> BufPool {
        Self::with_enabled(true)
    }

    /// A pass-through pool that never recycles: every [`take`] is a
    /// fresh allocation and [`retire`] drops its argument. This is the
    /// pre-pool codec, kept callable so benchmarks and acceptance gates
    /// can measure exactly what pooling buys.
    ///
    /// [`take`]: BufPool::take
    /// [`retire`]: BufPool::retire
    pub fn disabled() -> BufPool {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> BufPool {
        let meter = LockMeter::new();
        BufPool {
            inner: Arc::new(PoolInner {
                enabled,
                id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                free: HotMutex::with_meter(Vec::new(), meter.clone()),
                retired: HotMutex::with_meter(VecDeque::new(), meter.clone()),
                takes: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                meter,
            }),
        }
    }

    /// Whether this pool actually recycles buffers.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The lock meter every hot mutex of this pool's fleet shares.
    ///
    /// The pool feeds its own spill-queue locks into it; RPC components
    /// built around the same pool (demux overflow, batch accumulators,
    /// lease broker) attach theirs too, so diffing
    /// [`lock_acquisitions`](BufPool::lock_acquisitions) around a
    /// workload counts the whole fleet's hot-path lock traffic without
    /// interference from concurrent tests.
    pub fn lock_meter(&self) -> LockMeter {
        self.inner.meter.clone()
    }

    /// Hot-mutex acquisitions recorded by this fleet's meter so far.
    pub fn lock_acquisitions(&self) -> u64 {
        self.inner.meter.count()
    }

    /// Runs `f` on this pool's thread-local cache, rebinding (and
    /// discarding) the cache if it last served a different pool.
    fn with_cache<R>(&self, f: impl FnOnce(&mut TlCache) -> R) -> R {
        TL_CACHE.with(|cell| {
            let mut cache = cell.borrow_mut();
            if cache.pool_id != self.inner.id {
                cache.free.clear();
                cache.retired.clear();
                cache.pool_id = self.inner.id;
            }
            f(&mut cache)
        })
    }

    /// Hands out an empty buffer: recycled storage when available, a
    /// fresh allocation otherwise. The steady-state take is served
    /// from the thread-local cache without any lock; the shared spill
    /// queues are consulted (and the retired queues swept) only when
    /// the caches run dry.
    pub fn take(&self) -> BytesMut {
        self.inner.takes.fetch_add(1, Ordering::Relaxed);
        if self.inner.enabled {
            let local = self.with_cache(|cache| {
                if let Some(storage) = cache.free.pop() {
                    return Some(storage);
                }
                // Sweep this thread's retired frames for ones whose
                // receivers have finished.
                let parked = std::mem::take(&mut cache.retired);
                for frame in parked {
                    match frame.try_reclaim() {
                        Ok(storage) => {
                            if storage.capacity() <= MAX_RETAINED_CAPACITY
                                && cache.free.len() < TL_MAX_FREE
                            {
                                cache.free.push(storage);
                            }
                        }
                        Err(still_shared) => cache.retired.push(still_shared),
                    }
                }
                cache.free.pop()
            });
            if let Some(storage) = local {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_recycled(storage);
            }
            if let Some(storage) = self.inner.free.lock().pop() {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_recycled(storage);
            }
            self.sweep_shared_retired();
            if let Some(storage) = self.inner.free.lock().pop() {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_recycled(storage);
            }
        }
        self.inner.fresh.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(FRESH_CAPACITY)
    }

    /// Returns a frame **this thread took** to the pool. If the
    /// payload is still shared — receivers hold zero-copy slices — it
    /// parks in this thread's retired cache until it becomes uniquely
    /// owned; reclamation happens lazily on later
    /// [`take`](BufPool::take)s. Use [`release`](BufPool::release) for
    /// handles of frames another thread owns.
    pub fn retire(&self, frame: Bytes) {
        // Static-backed buffers can never be reclaimed; parking them
        // would waste retired-queue slots on permanent misses.
        if !self.inner.enabled || frame.is_empty() || frame.is_static() {
            return;
        }
        match frame.try_reclaim() {
            Ok(storage) => self.stash(storage),
            Err(still_shared) => self.with_cache(|cache| {
                // Park at most one handle per allocation: parked
                // siblings would hold each other's refcount above one
                // forever, making every one of them unreclaimable.
                // Dropping the duplicate instead walks the refcount
                // down toward the parked handle becoming unique.
                if cache
                    .retired
                    .iter()
                    .any(|f| f.shares_storage(&still_shared))
                {
                    return;
                }
                cache.retired.push(still_shared);
                if cache.retired.len() > TL_MAX_RETIRED {
                    // Sweep locally first: take() only sweeps when the
                    // free cache runs dry, so on a thread whose free
                    // cache never empties (steady inflow of released
                    // body storage) reclaimable parked frames would
                    // pile up here and every park would spill through
                    // the shared lock. A local sweep is lock-free and
                    // keeps the queue at the genuine in-flight count.
                    Self::sweep_local(cache);
                }
                if cache.retired.len() > TL_MAX_RETIRED {
                    // Still over cap after the sweep: the eldest parked
                    // frame has been shared for a whole cap cycle —
                    // hand it to the shared queue so any thread's sweep
                    // can reclaim it eventually.
                    let spilled = cache.retired.remove(0);
                    let mut retired = self.inner.retired.lock();
                    if !retired.iter().any(|f| f.shares_storage(&spilled)) {
                        retired.push_back(spilled);
                        if retired.len() > MAX_RETIRED {
                            retired.pop_front();
                        }
                    }
                }
            }),
        }
    }

    /// Reclaims every parked frame in `cache` whose other holders have
    /// dropped, moving the storage to the cache's free list (or
    /// dropping it when the list is full — a full list means this
    /// thread already holds more storage than it consumes). Entirely
    /// thread-local: no lock.
    fn sweep_local(cache: &mut TlCache) {
        let parked = std::mem::take(&mut cache.retired);
        for frame in parked {
            match frame.try_reclaim() {
                Ok(storage) => {
                    if storage.capacity() <= MAX_RETAINED_CAPACITY && cache.free.len() < TL_MAX_FREE
                    {
                        cache.free.push(storage);
                    }
                }
                Err(still_shared) => cache.retired.push(still_shared),
            }
        }
    }

    /// Lets go of a **foreign** handle — a zero-copy slice of a frame
    /// some other thread built and will retire (a server worker done
    /// with a request body, a client done with a reply body it fed
    /// back as params). Reclaims the storage if this was the last
    /// handle; otherwise simply drops it, leaving parking to the
    /// frame's owner so buffers flow back to the thread that takes
    /// them. Safe (just suboptimal) to call on frames this thread
    /// owns.
    pub fn release(&self, handle: Bytes) {
        if !self.inner.enabled || handle.is_empty() || handle.is_static() {
            return;
        }
        if let Ok(storage) = handle.try_reclaim() {
            self.stash(storage);
        }
    }

    /// Moves every shared-queue retired frame that has become uniquely
    /// owned into the shared free list.
    fn sweep_shared_retired(&self) {
        // One pass over a snapshot of the queue under a single lock
        // hold; stashing (which takes the free-list lock) happens after
        // release. Frames retired concurrently wait for the next sweep.
        let mut reclaimed = Vec::new();
        {
            let mut retired = self.inner.retired.lock();
            for _ in 0..retired.len() {
                let Some(frame) = retired.pop_front() else {
                    break;
                };
                match frame.try_reclaim() {
                    Ok(storage) => reclaimed.push(storage),
                    Err(still_shared) => retired.push_back(still_shared),
                }
            }
        }
        for storage in reclaimed {
            self.stash_shared(storage);
        }
    }

    /// Stashes reclaimed storage: thread-local free list if there is
    /// room, dropped otherwise. A full list means this thread already
    /// holds more storage than it consumes — workloads that mint fresh
    /// body buffers (`wire::Writer` payloads) feed a steady surplus in
    /// through [`release`](BufPool::release), so the cap *will* be hit
    /// every transaction, and spilling the surplus to the shared list
    /// would put a lock acquisition on the steady-state path for
    /// storage nobody reads back (cross-thread circulation rides the
    /// shared *retired* queue instead — see
    /// [`retire`](BufPool::retire)).
    fn stash(&self, storage: Vec<u8>) {
        if storage.capacity() > MAX_RETAINED_CAPACITY {
            return; // oversized: let the allocator have it back
        }
        self.with_cache(|cache| {
            if cache.free.len() < TL_MAX_FREE {
                cache.free.push(storage);
            }
        });
    }

    fn stash_shared(&self, storage: Vec<u8>) {
        if storage.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut free = self.inner.free.lock();
        if free.len() < MAX_FREE {
            free.push(storage);
        }
    }

    /// Takes served so far (fresh + reused).
    pub fn takes(&self) -> u64 {
        self.inner.takes.load(Ordering::Relaxed)
    }

    /// Takes that had to allocate fresh storage — the hot-path
    /// allocation count benchmarks gate on.
    pub fn fresh_allocs(&self) -> u64 {
        self.inner.fresh.load(Ordering::Relaxed)
    }

    /// Takes served from recycled storage.
    pub fn reuses(&self) -> u64 {
        self.inner.reused.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_unique_frames_are_reused() {
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"frame one");
        let frame = buf.freeze();
        pool.retire(frame); // sole owner: reclaimable immediately

        let buf = pool.take();
        assert_eq!(pool.takes(), 2);
        assert_eq!(pool.fresh_allocs(), 1, "second take must reuse");
        assert_eq!(pool.reuses(), 1);
        assert!(buf.is_empty(), "recycled buffers come back empty");
    }

    #[test]
    fn duplicate_retired_siblings_do_not_wedge_reclamation() {
        // Retiring several handles of ONE allocation (a batch that
        // shipped N clones of the same body) must not park them all:
        // parked siblings would keep each other's refcount above one
        // forever, so none could ever be reclaimed.
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"shared body");
        let frame = buf.freeze();
        let dup1 = frame.clone();
        let dup2 = frame.clone();
        pool.retire(frame); // still shared: parks
        pool.retire(dup1); // sibling already parked: dropped instead
        pool.retire(dup2); // ditto — parked handle is now the sole owner
        let _b = pool.take();
        assert_eq!(pool.reuses(), 1, "parked sibling must reclaim, not wedge");
    }

    #[test]
    fn shared_frames_park_until_receivers_drop() {
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"payload");
        let frame = buf.freeze();
        let receiver_slice = frame.slice(1..4); // a decoded body
        pool.retire(frame);

        // Still shared: the next take cannot reclaim it.
        let _other = pool.take();
        assert_eq!(pool.fresh_allocs(), 2);

        drop(receiver_slice);
        let _third = pool.take();
        assert_eq!(pool.fresh_allocs(), 2, "freed slice unlocks reuse");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn release_reclaims_unique_and_drops_shared() {
        let pool = BufPool::new();
        // Unique handle: release reclaims it like retire would.
        let mut buf = pool.take();
        buf.extend_from_slice(b"body");
        pool.release(buf.freeze());
        let _again = pool.take();
        assert_eq!(pool.reuses(), 1);

        // Shared handle: release drops it WITHOUT parking, so the
        // owner's later retire is the one that parks — the storage is
        // reclaimed on the owner's side, never stranded here.
        let mut buf = pool.take(); // fresh (the reclaimed one is out)
        buf.extend_from_slice(b"frame");
        let frame = buf.freeze();
        let foreign_slice = frame.slice(1..3);
        pool.release(foreign_slice); // a worker finishing with a body
        pool.retire(frame); // the owner retires: now unique, reclaims
        let _b = pool.take();
        assert_eq!(pool.reuses(), 2, "owner-retired storage must reclaim");
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = BufPool::disabled();
        for _ in 0..4 {
            let frame = pool.take().freeze();
            pool.retire(frame);
        }
        assert_eq!(pool.takes(), 4);
        assert_eq!(pool.fresh_allocs(), 4);
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn clones_share_one_pool() {
        let pool = BufPool::new();
        let retirer = pool.clone();
        let mut buf = pool.take();
        buf.extend_from_slice(b"x");
        retirer.retire(buf.freeze());
        let _again = pool.take();
        assert_eq!(pool.reuses(), 1);
        assert_eq!(retirer.reuses(), 1, "counters are shared");
    }

    #[test]
    fn steady_state_cycle_takes_no_locks() {
        // The invariant the hot-path bench gates on: once warm, the
        // take→retire cycle runs on the thread-local cache alone.
        let pool = BufPool::new();
        for _ in 0..4 {
            let mut buf = pool.take();
            buf.extend_from_slice(b"warm");
            pool.retire(buf.freeze());
        }
        let locks_before = pool.lock_acquisitions();
        for _ in 0..32 {
            let mut buf = pool.take();
            buf.extend_from_slice(b"steady");
            pool.retire(buf.freeze());
        }
        assert_eq!(
            pool.lock_acquisitions() - locks_before,
            0,
            "steady-state take/retire must not touch the spill locks"
        );
        assert_eq!(pool.fresh_allocs(), 1, "and must not allocate either");
    }

    #[test]
    fn cross_thread_retires_spill_to_the_shared_queues() {
        // A thread that parks more still-shared frames than its local
        // retired cache holds spills the overflow to the shared retired
        // queue; once the other holders drop, any thread's sweep can
        // reclaim the storage. (Uniquely-owned surplus is dropped, not
        // spilled — the free list is thread-local by design.)
        let pool = BufPool::new();
        let feeder = pool.clone();
        let clones = std::thread::spawn(move || {
            let mut clones = Vec::new();
            for _ in 0..(TL_MAX_RETIRED + 4) {
                let mut buf = feeder.take();
                buf.extend_from_slice(b"z");
                let frame = buf.freeze();
                clones.push(frame.clone()); // keeps the frame shared
                feeder.retire(frame); // parks, overflows, spills
            }
            clones
        })
        .join()
        .unwrap();
        assert!(
            !pool.inner.retired.lock().is_empty(),
            "retired-cache overflow must reach the shared queue"
        );
        drop(clones); // the spilled frames are now uniquely owned
        let takes_before_reuse = pool.reuses();
        let _buf = pool.take(); // this thread's cache is cold
        assert_eq!(
            pool.reuses(),
            takes_before_reuse + 1,
            "spilled storage must be takeable from another thread"
        );
    }

    #[test]
    fn bounded_queues_never_grow_past_their_caps() {
        let pool = BufPool::new();
        // Park far more shared frames than MAX_RETIRED allows.
        let mut keep_alive = Vec::new();
        for _ in 0..(MAX_RETIRED + TL_MAX_RETIRED + 50) {
            let mut buf = pool.take();
            buf.extend_from_slice(b"y");
            let frame = buf.freeze();
            keep_alive.push(frame.clone());
            pool.retire(frame);
        }
        assert!(pool.inner.retired.lock().len() <= MAX_RETIRED);
        drop(keep_alive);
        // Everything reclaimable now, but the free lists stay bounded.
        let _ = pool.take();
        pool.sweep_shared_retired();
        assert!(pool.inner.free.lock().len() <= MAX_FREE);
    }
}
