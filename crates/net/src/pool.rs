//! Reusable frame-buffer pools for the allocation-free send path.
//!
//! Every wire frame this workspace transmits is built in a `BytesMut`
//! and frozen into the packet's [`Bytes`] payload. Before this pool
//! existed, each frame paid a fresh heap allocation; with it, the
//! steady-state send path allocates **nothing**: the encoder takes a
//! recycled buffer from its endpoint's [`BufPool`], the sender retires
//! the frozen frame back into the pool after transmission, and the
//! pool resurrects the backing storage once every receiver has dropped
//! its zero-copy slices of the payload.
//!
//! # Lifecycle
//!
//! ```text
//! take() ──► BytesMut ──encode──► freeze() ──send──► retire()
//!    ▲                                                  │
//!    │            (receivers still hold slices)         ▼
//!  free list ◄──try_reclaim() once unique──── retired queue
//! ```
//!
//! A retired frame whose payload is still referenced (a packet in
//! flight, a decoded body held by a handler) parks in a bounded FIFO;
//! each `take` first sweeps that FIFO for buffers that have become
//! uniquely owned. Both the free list and the FIFO are bounded, so a
//! pool can never hoard more than a fixed amount of memory, and
//! oversized buffers are dropped rather than retained.
//!
//! # Measurement
//!
//! The pool counts `takes`, `fresh_allocs` (takes that had to allocate)
//! and `reuses` (takes served from recycled storage) per instance —
//! race-free accounting for benchmarks and acceptance gates even when
//! unrelated tests run concurrently in the same process. A pool built
//! with [`BufPool::disabled`] never recycles (every take is a fresh
//! allocation) but still counts, which is exactly the pre-pool baseline
//! the `hot_path` bench compares against. The metric is **backing
//! storage**: each take→freeze→retire cycle still creates and frees
//! one small `Arc` control block for shared ownership of the payload —
//! bounded, size-independent, and deliberately outside the counter
//! (see `bytes::stats`).

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Initial capacity of freshly allocated pool buffers — enough for a
/// typical request/reply frame (tag + 16-byte capability header + small
/// params) without a growth reallocation; batch frames grow once and
/// then keep their larger capacity across reuses.
const FRESH_CAPACITY: usize = 256;

/// Upper bound on reclaimed buffers kept ready in the free list.
const MAX_FREE: usize = 64;

/// Upper bound on retired-but-still-shared frames awaiting reclamation.
/// Beyond this the oldest entry is dropped (its storage simply returns
/// to the allocator when the last reference dies).
const MAX_RETIRED: usize = 128;

/// Buffers that grew beyond this are dropped instead of pooled, so one
/// giant frame cannot pin megabytes in every pool forever.
const MAX_RETAINED_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct PoolInner {
    /// `false` for the measurement baseline: take() always allocates.
    enabled: bool,
    /// Reclaimed storage, ready to hand out.
    free: Mutex<Vec<Vec<u8>>>,
    /// Sent frames whose payload may still be referenced by receivers.
    retired: Mutex<VecDeque<Bytes>>,
    takes: AtomicU64,
    fresh: AtomicU64,
    reused: AtomicU64,
}

/// A bounded pool of reusable frame buffers (see the module docs).
///
/// Cheap to clone — clones share the same pool, so one pool can serve
/// an endpoint's encoder and the completion handles that retire frames
/// back into it.
#[derive(Debug, Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufPool {
    /// An enabled pool (the production default).
    pub fn new() -> BufPool {
        Self::with_enabled(true)
    }

    /// A pass-through pool that never recycles: every [`take`] is a
    /// fresh allocation and [`retire`] drops its argument. This is the
    /// pre-pool codec, kept callable so benchmarks and acceptance gates
    /// can measure exactly what pooling buys.
    ///
    /// [`take`]: BufPool::take
    /// [`retire`]: BufPool::retire
    pub fn disabled() -> BufPool {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> BufPool {
        BufPool {
            inner: Arc::new(PoolInner {
                enabled,
                free: Mutex::new(Vec::new()),
                retired: Mutex::new(VecDeque::new()),
                takes: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                reused: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this pool actually recycles buffers.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Hands out an empty buffer: recycled storage when available, a
    /// fresh allocation otherwise. The retired queue is swept only
    /// when the free list is empty — the common steady-state take is
    /// one lock and one pop.
    pub fn take(&self) -> BytesMut {
        self.inner.takes.fetch_add(1, Ordering::Relaxed);
        if self.inner.enabled {
            if let Some(storage) = self.inner.free.lock().pop() {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_recycled(storage);
            }
            self.sweep_retired();
            if let Some(storage) = self.inner.free.lock().pop() {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_recycled(storage);
            }
        }
        self.inner.fresh.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(FRESH_CAPACITY)
    }

    /// Returns a sent frame (or a spent body) to the pool. If the
    /// payload is still shared — receivers hold zero-copy slices — it
    /// parks in the retired queue until it becomes uniquely owned;
    /// reclamation happens lazily on later [`take`](BufPool::take)s.
    pub fn retire(&self, frame: Bytes) {
        // Static-backed buffers can never be reclaimed; parking them
        // would waste retired-queue slots on permanent misses.
        if !self.inner.enabled || frame.is_empty() || frame.is_static() {
            return;
        }
        match frame.try_reclaim() {
            Ok(storage) => self.stash(storage),
            Err(still_shared) => {
                let mut retired = self.inner.retired.lock();
                // Park at most one handle per allocation: retired
                // siblings would hold each other's refcount above one
                // forever, making every one of them unreclaimable.
                // Dropping the duplicate instead walks the refcount
                // down toward the parked handle becoming unique.
                if retired.iter().any(|f| f.shares_storage(&still_shared)) {
                    return;
                }
                retired.push_back(still_shared);
                if retired.len() > MAX_RETIRED {
                    retired.pop_front();
                }
            }
        }
    }

    /// Moves every retired frame that has become uniquely owned into
    /// the free list.
    fn sweep_retired(&self) {
        // One pass over a snapshot of the queue under a single lock
        // hold; stashing (which takes the free-list lock) happens after
        // release. Frames retired concurrently wait for the next sweep.
        let mut reclaimed = Vec::new();
        {
            let mut retired = self.inner.retired.lock();
            for _ in 0..retired.len() {
                let Some(frame) = retired.pop_front() else {
                    break;
                };
                match frame.try_reclaim() {
                    Ok(storage) => reclaimed.push(storage),
                    Err(still_shared) => retired.push_back(still_shared),
                }
            }
        }
        for storage in reclaimed {
            self.stash(storage);
        }
    }

    fn stash(&self, storage: Vec<u8>) {
        if storage.capacity() > MAX_RETAINED_CAPACITY {
            return; // oversized: let the allocator have it back
        }
        let mut free = self.inner.free.lock();
        if free.len() < MAX_FREE {
            free.push(storage);
        }
    }

    /// Takes served so far (fresh + reused).
    pub fn takes(&self) -> u64 {
        self.inner.takes.load(Ordering::Relaxed)
    }

    /// Takes that had to allocate fresh storage — the hot-path
    /// allocation count benchmarks gate on.
    pub fn fresh_allocs(&self) -> u64 {
        self.inner.fresh.load(Ordering::Relaxed)
    }

    /// Takes served from recycled storage.
    pub fn reuses(&self) -> u64 {
        self.inner.reused.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_unique_frames_are_reused() {
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"frame one");
        let frame = buf.freeze();
        pool.retire(frame); // sole owner: reclaimable immediately

        let buf = pool.take();
        assert_eq!(pool.takes(), 2);
        assert_eq!(pool.fresh_allocs(), 1, "second take must reuse");
        assert_eq!(pool.reuses(), 1);
        assert!(buf.is_empty(), "recycled buffers come back empty");
    }

    #[test]
    fn duplicate_retired_siblings_do_not_wedge_reclamation() {
        // Retiring several handles of ONE allocation (a batch that
        // shipped N clones of the same body) must not park them all:
        // parked siblings would keep each other's refcount above one
        // forever, so none could ever be reclaimed.
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"shared body");
        let frame = buf.freeze();
        let dup1 = frame.clone();
        let dup2 = frame.clone();
        pool.retire(frame); // still shared: parks
        pool.retire(dup1); // sibling already parked: dropped instead
        pool.retire(dup2); // ditto — parked handle is now the sole owner
        let _b = pool.take();
        assert_eq!(pool.reuses(), 1, "parked sibling must reclaim, not wedge");
    }

    #[test]
    fn shared_frames_park_until_receivers_drop() {
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"payload");
        let frame = buf.freeze();
        let receiver_slice = frame.slice(1..4); // a decoded body
        pool.retire(frame);

        // Still shared: the next take cannot reclaim it.
        let _other = pool.take();
        assert_eq!(pool.fresh_allocs(), 2);

        drop(receiver_slice);
        let _third = pool.take();
        assert_eq!(pool.fresh_allocs(), 2, "freed slice unlocks reuse");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let pool = BufPool::disabled();
        for _ in 0..4 {
            let frame = pool.take().freeze();
            pool.retire(frame);
        }
        assert_eq!(pool.takes(), 4);
        assert_eq!(pool.fresh_allocs(), 4);
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn clones_share_one_pool() {
        let pool = BufPool::new();
        let retirer = pool.clone();
        let mut buf = pool.take();
        buf.extend_from_slice(b"x");
        retirer.retire(buf.freeze());
        let _again = pool.take();
        assert_eq!(pool.reuses(), 1);
        assert_eq!(retirer.reuses(), 1, "counters are shared");
    }

    #[test]
    fn bounded_queues_never_grow_past_their_caps() {
        let pool = BufPool::new();
        // Park far more shared frames than MAX_RETIRED allows.
        let mut keep_alive = Vec::new();
        for _ in 0..(MAX_RETIRED + 50) {
            let mut buf = pool.take();
            buf.extend_from_slice(b"y");
            let frame = buf.freeze();
            keep_alive.push(frame.clone());
            pool.retire(frame);
        }
        assert!(pool.inner.retired.lock().len() <= MAX_RETIRED);
        drop(keep_alive);
        // Everything reclaimable now, but the free list stays bounded.
        let _ = pool.take();
        assert!(pool.inner.free.lock().len() <= MAX_FREE);
    }
}
