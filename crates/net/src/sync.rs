//! Metered mutual exclusion for the transaction hot path.
//!
//! PR 5 made the steady-state transaction allocation-free; the next
//! invariant is **lock-free**: zero blocking lock acquisitions per
//! steady-state transaction. Like every other hot-path invariant in
//! this workspace, it is measured, not asserted — [`HotMutex`] is a
//! drop-in mutex whose every `lock` bumps a process-wide counter
//! (readable via [`hot_lock_acquisitions`], surfaced through
//! `HotPathSnapshot`) and an optional per-fleet [`LockMeter`], so
//! benchmarks can diff locks around a workload and tests can assert on
//! a meter no concurrent test shares.
//!
//! # Scope of the metric
//!
//! The counter covers the workspace's own shared-state software locks:
//! the buffer pool's spill queues, the RPC demux overflow map, the
//! batch accumulator, and the port-lease broker. Deliberately outside
//! the count, mirroring how `bytes::stats` excludes `Arc` control
//! blocks:
//!
//! * **Channel and condvar internals** (the vendored `crossbeam` shim,
//!   blocking receives) — these model kernel scheduling and wakeup,
//!   which the paper's transaction primitives also pay inside the
//!   kernel; the metric is *protocol-layer* lock traffic.
//! * **Network-simulator bookkeeping** (machine registry `RwLock`,
//!   taps) — stand-ins for wire hardware, not part of a real
//!   endpoint's per-message cost.
//! * **The F-box memo table** — the paper's F-box is a VLSI chip
//!   beside the interface; its lookup cost is hardware, and the memo
//!   is only consulted on claim/egress paths the memoized codec
//!   already avoids.
//!
//! "0 locks/op" therefore means: a steady-state transaction touches no
//! workspace mutex at all — demux, mailbox reuse, port recycling,
//! route lookup and buffer recycling all resolve on atomics or
//! thread-local state.

use parking_lot::{Mutex, MutexGuard};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of [`HotMutex`] acquisitions since start.
static HOT_LOCK_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// Cumulative [`HotMutex`] lock acquisitions since process start.
///
/// Process-global and therefore only meaningful diffed around a
/// workload in a sequential process (the bench binary); concurrent
/// tests should assert on a [`LockMeter`] instead.
pub fn hot_lock_acquisitions() -> u64 {
    HOT_LOCK_ACQUISITIONS.load(Ordering::Relaxed)
}

/// A cloneable, shareable lock-acquisition counter.
///
/// Every [`HotMutex`] built with [`HotMutex::with_meter`] bumps its
/// meter on each acquisition in addition to the process-wide counter.
/// A fleet shares one meter (via its `BufPool`), giving tests
/// race-free per-fleet accounting even when unrelated tests lock their
/// own mutexes concurrently.
#[derive(Clone, Debug, Default)]
pub struct LockMeter {
    count: Arc<AtomicU64>,
}

impl LockMeter {
    /// A fresh meter starting at zero.
    pub fn new() -> LockMeter {
        LockMeter::default()
    }

    /// Acquisitions recorded by this meter so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A mutex whose acquisitions are counted (see the module docs).
///
/// Semantics are exactly `parking_lot::Mutex`; the only addition is
/// that `lock` (and a successful `try_lock`) bumps the process-wide
/// counter and, when present, the per-instance [`LockMeter`].
pub struct HotMutex<T: ?Sized> {
    meter: Option<LockMeter>,
    inner: Mutex<T>,
}

/// RAII guard for [`HotMutex`].
pub struct HotMutexGuard<'a, T: ?Sized> {
    inner: MutexGuard<'a, T>,
}

impl<T> HotMutex<T> {
    /// A counted mutex feeding only the process-wide counter.
    pub fn new(value: T) -> HotMutex<T> {
        HotMutex {
            meter: None,
            inner: Mutex::new(value),
        }
    }

    /// A counted mutex that additionally feeds `meter`.
    pub fn with_meter(value: T, meter: LockMeter) -> HotMutex<T> {
        HotMutex {
            meter: Some(meter),
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> HotMutex<T> {
    fn note(&self) {
        HOT_LOCK_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        if let Some(meter) = &self.meter {
            meter.bump();
        }
    }

    /// Acquires the lock, blocking until available. Counted.
    pub fn lock(&self) -> HotMutexGuard<'_, T> {
        self.note();
        HotMutexGuard {
            inner: self.inner.lock(),
        }
    }

    /// Tries to acquire without blocking; counted only on success.
    pub fn try_lock(&self) -> Option<HotMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        self.note();
        Some(HotMutexGuard { inner: guard })
    }

    /// Mutable access without locking (requires exclusive borrow);
    /// never counted — no acquisition happens.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> Deref for HotMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for HotMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for HotMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Some(g) => f.debug_struct("HotMutex").field("data", &&*g).finish(),
            None => f
                .debug_struct("HotMutex")
                .field("data", &"<locked>")
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_bumps_global_and_meter() {
        let meter = LockMeter::new();
        let m = HotMutex::with_meter(0u32, meter.clone());
        let global_before = hot_lock_acquisitions();
        *m.lock() += 1;
        *m.lock() += 1;
        assert_eq!(meter.count(), 2);
        assert!(hot_lock_acquisitions() >= global_before + 2);
    }

    #[test]
    fn try_lock_counts_only_success() {
        let meter = LockMeter::new();
        let m = HotMutex::with_meter((), meter.clone());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        assert_eq!(meter.count(), 1, "failed try_lock must not count");
        drop(held);
        assert!(m.try_lock().is_some());
        assert_eq!(meter.count(), 2);
    }

    #[test]
    fn get_mut_is_free() {
        let meter = LockMeter::new();
        let mut m = HotMutex::with_meter(5u8, meter.clone());
        *m.get_mut() = 6;
        assert_eq!(m.into_inner(), 6);
        assert_eq!(meter.count(), 0);
    }
}
