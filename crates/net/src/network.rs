//! The broadcast-medium simulator: one shared wire, per-machine
//! interfaces, and fault injection.
//!
//! A [`Network`] models the paper's single broadcast LAN. Machines join
//! with [`Network::attach`], providing a
//! [`NetworkInterface`](crate::NetworkInterface) (an open NIC or an
//! F-box) and receiving an [`Endpoint`] — their only handle onto the
//! wire. Every send is offered to every *other* machine's interface;
//! the interface decides, by destination port, whether the frame is
//! taken (associative addressing). The network, not the sender, stamps
//! the unforgeable source machine id.
//!
//! # Delivery model
//!
//! Each machine owns one unbounded MPMC packet channel. That MPMC
//! property is load-bearing for the dispatch engine: a server worker
//! pool shares a single `Endpoint` behind an `Arc`, and each arriving
//! packet is claimed by exactly one concurrent receiver. Simulated
//! latency is applied at *receive* time (packets carry a `deliver_at`
//! instant), so senders never block.
//!
//! # Fault and topology injection
//!
//! [`Network::set_latency`], [`Network::set_drop_rate`],
//! [`Network::partition`]/[`Network::heal`] and [`Network::colocate`]
//! inject wide-area behaviour into tests and benchmarks;
//! [`Network::tap`] wiretaps every frame as transmitted (the intruder's
//! view). [`Network::stats`] exposes the cumulative frame/byte
//! counters ([`NetworkStats`]) that the locate and RPC-batching
//! benchmarks diff around workloads.

use crate::addr::{MachineId, Port};
use crate::nic::{NetworkInterface, OpenNic};
use crate::packet::{Header, Packet};
use crate::reactor::{Clock, Reactor, SimClock, SimSource, Timestamp};
use crate::sim::{FaultCounters, FaultPlan, SimController};
use crate::stats::{HotPathSnapshot, NetworkStats};
use amoeba_obs::Obs;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

struct MachineEntry {
    sender: Sender<Packet>,
    nic: Arc<dyn NetworkInterface>,
    /// The machine's advertised load gauge (e.g. in-flight requests),
    /// shared with the machine's [`Endpoint`]. Placement policies read
    /// it when choosing among service replicas.
    load: Arc<AtomicU32>,
}

struct NetworkInner {
    reactor: Arc<Reactor>,
    machines: RwLock<HashMap<MachineId, MachineEntry>>,
    taps: RwLock<Vec<Sender<Packet>>>,
    colocated: RwLock<HashSet<(MachineId, MachineId)>>,
    partitioned: RwLock<HashSet<(MachineId, MachineId)>>,
    next_id: AtomicU32,
    /// One-way hop latency, stored as whole nanoseconds so the send
    /// path reads it with one atomic load instead of a lock.
    latency_nanos: AtomicU64,
    /// Loss probability, stored as `f64` bits. Zero bits == 0.0 == no
    /// loss, so the send fast path is a single load-and-compare; the
    /// loss RNG below is only locked when the rate is nonzero.
    drop_rate_bits: AtomicU64,
    rng: Mutex<StdRng>,
    stats: NetworkStats,
    /// The network's observability handle (disabled until
    /// [`Network::obs`] + [`Obs::enable`]): shared with the reactor,
    /// the sim controller, and every layer above via
    /// [`Endpoint::obs`].
    obs: Obs,
    /// The deterministic-simulation controller, present only on
    /// networks built with [`Network::new_sim`]. When set, every send
    /// is parked in its schedule instead of entering machine queues
    /// directly, and the seeded fault plan is applied at this gate.
    sim: Option<Arc<SimController>>,
}

/// A simulated broadcast network.
///
/// Cheap to clone (all clones share the same wire). Machines join with
/// [`attach`](Network::attach) and talk through the returned
/// [`Endpoint`].
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("machines", &self.inner.machines.read().len())
            .field(
                "latency",
                &Duration::from_nanos(self.inner.latency_nanos.load(Ordering::Relaxed)),
            )
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network with zero latency and no loss, on the
    /// wall clock (simulated latency costs real wall-clock).
    pub fn new() -> Network {
        Self::with_reactor(Reactor::wall())
    }

    /// Creates an empty network on the **virtual clock**: simulated
    /// latency and timeouts advance the network's timeline without
    /// blocking real time. See [`Reactor`] for the event/quiescence
    /// model.
    pub fn new_virtual() -> Network {
        Self::with_reactor(Reactor::virtual_time())
    }

    /// Creates an empty network over an explicit clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Network {
        Self::with_reactor(Reactor::new(clock))
    }

    fn with_reactor(reactor: Arc<Reactor>) -> Network {
        Self::with_parts(reactor, None)
    }

    fn with_parts(reactor: Arc<Reactor>, sim: Option<Arc<SimController>>) -> Network {
        let obs = Obs::new();
        // The reactor dumps the flight recorder before its stall
        // panic; the sim controller mirrors fault verdicts into it.
        reactor.set_obs(obs.clone());
        if let Some(sim) = &sim {
            sim.attach_obs(obs.clone());
        }
        Network {
            inner: Arc::new(NetworkInner {
                reactor,
                machines: RwLock::new(HashMap::new()),
                taps: RwLock::new(Vec::new()),
                colocated: RwLock::new(HashSet::new()),
                partitioned: RwLock::new(HashSet::new()),
                next_id: AtomicU32::new(1),
                latency_nanos: AtomicU64::new(0),
                drop_rate_bits: AtomicU64::new(0),
                rng: Mutex::new(StdRng::seed_from_u64(0x0A11_0E8A)),
                stats: NetworkStats::default(),
                obs,
                sim,
            }),
        }
    }

    /// Creates an empty network in **deterministic simulation** mode
    /// with a fault-free plan: a [`SimClock`] timeline, centrally
    /// ordered deliveries with seeded tie-breaking, and every source
    /// of scheduling nondeterminism pinned to `seed`. Drive it with a
    /// [`SimExecutor`](crate::SimExecutor), or let blocking receives
    /// advance it one delivery at a time.
    pub fn new_sim(seed: u64) -> Network {
        Self::new_sim_with_plan(seed, FaultPlan::quiet())
    }

    /// As [`new_sim`](Network::new_sim), with a seeded [`FaultPlan`]
    /// applied at the delivery gate (loss, duplication, delay spikes,
    /// reorder jitter, partitions, machine crash windows).
    pub fn new_sim_with_plan(seed: u64, plan: FaultPlan) -> Network {
        let reactor = Reactor::new(Arc::new(SimClock::new()));
        let sim = Arc::new(SimController::new(seed, plan));
        let net = Self::with_parts(reactor, Some(sim));
        net.inner.reactor.set_sim_source(Arc::new(SimHook {
            net: Arc::downgrade(&net.inner),
        }));
        net
    }

    /// The network's reactor (scheduler + clock).
    pub fn reactor(&self) -> &Arc<Reactor> {
        &self.inner.reactor
    }

    /// The current point on the network's timeline.
    pub fn now(&self) -> Timestamp {
        self.inner.reactor.now()
    }

    /// Sleeps `d` of timeline time (real under the wall clock, a
    /// scheduled wakeup under the virtual clock).
    pub fn sleep(&self, d: Duration) {
        self.inner.reactor.sleep(d);
    }

    /// Attaches a machine with the given network interface.
    pub fn attach(&self, nic: Arc<dyn NetworkInterface>) -> Endpoint {
        let id = MachineId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        let load = Arc::new(AtomicU32::new(0));
        self.inner.machines.write().insert(
            id,
            MachineEntry {
                sender: tx,
                nic: Arc::clone(&nic),
                load: Arc::clone(&load),
            },
        );
        Endpoint {
            id,
            // Must clone: the endpoint owns its own handle onto the
            // shared wire (an Arc bump; all clones are one network).
            net: self.clone(),
            nic,
            receiver: rx,
            load,
        }
    }

    /// Attaches a machine with an unprotected [`OpenNic`].
    pub fn attach_open(&self) -> Endpoint {
        self.attach(Arc::new(OpenNic::new()))
    }

    /// Sets the one-way delivery latency for all future packets between
    /// non-co-located machines.
    pub fn set_latency(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.inner.latency_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Sets the probability (0.0–1.0) that a transmitted packet is lost.
    ///
    /// # Panics
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn set_drop_rate(&self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0,1]");
        self.inner
            .drop_rate_bits
            .store(rate.to_bits(), Ordering::Relaxed);
    }

    /// Reseeds the loss-decision RNG, for reproducible failure injection.
    pub fn reseed(&self, seed: u64) {
        *self.inner.rng.lock() = StdRng::seed_from_u64(seed);
    }

    /// Declares two machines co-located (same physical host): traffic
    /// between them skips the network latency. Used to model local
    /// vs remote memory-server placement (§3.1).
    pub fn colocate(&self, a: MachineId, b: MachineId) {
        let mut set = self.inner.colocated.write();
        set.insert((a, b));
        set.insert((b, a));
    }

    /// Severs the link between two machines in both directions: frames
    /// between them silently vanish until [`heal`](Network::heal) —
    /// failure injection for partition testing.
    pub fn partition(&self, a: MachineId, b: MachineId) {
        let mut set = self.inner.partitioned.write();
        set.insert((a, b));
        set.insert((b, a));
    }

    /// Restores the link severed by [`partition`](Network::partition).
    pub fn heal(&self, a: MachineId, b: MachineId) {
        let mut set = self.inner.partitioned.write();
        set.remove(&(a, b));
        set.remove(&(b, a));
    }

    /// Opens a promiscuous tap: the returned receiver observes every
    /// packet on the wire, exactly what a wiretapping intruder sees.
    pub fn tap(&self) -> Receiver<Packet> {
        let (tx, rx) = unbounded();
        self.inner.taps.write().push(tx);
        rx
    }

    /// The cumulative traffic counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    /// The network's observability handle. Disabled (zero-cost) by
    /// default; `net.obs().enable()` switches on the flight recorder
    /// and the metrics registry for every layer sharing this network.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Snapshots the hot-path cost counters: frames sent on this
    /// network, one-way-function evaluations by its attached
    /// interfaces, process-wide payload-buffer allocations, and
    /// process-wide counted lock acquisitions. See [`HotPathSnapshot`]
    /// for the accounting caveats.
    pub fn hot_path(&self) -> HotPathSnapshot {
        use std::sync::atomic::Ordering;
        let oneway_evals = self
            .inner
            .machines
            .read()
            .values()
            .map(|e| e.nic.crypto_evals())
            .sum();
        HotPathSnapshot {
            frames_sent: self.inner.stats.packets_sent.load(Ordering::Relaxed),
            oneway_evals,
            buffer_allocs: bytes::stats::buffer_allocs(),
            lock_acquisitions: crate::sync::hot_lock_acquisitions(),
        }
    }

    /// The advertised load gauge of an attached machine, or `None` if
    /// the machine has detached. See [`Endpoint::set_load`].
    pub fn load_of(&self, id: MachineId) -> Option<u32> {
        self.inner
            .machines
            .read()
            .get(&id)
            .map(|e| e.load.load(Ordering::Relaxed))
    }

    /// Number of currently attached machines.
    pub fn machine_count(&self) -> usize {
        self.inner.machines.read().len()
    }

    /// Transmits a packet from machine `from`. Returns the number of
    /// machines the packet was delivered to.
    ///
    /// The sender's interface transforms the header (unbypassable), the
    /// network stamps the source address, and the packet is offered to
    /// every *other* machine's interface — delivered where the interface
    /// accepts the destination port, or everywhere for
    /// [`Port::BROADCAST`].
    pub(crate) fn send(&self, from: MachineId, mut header: Header, payload: Bytes) -> usize {
        let stats = &self.inner.stats;
        {
            let machines = self.inner.machines.read();
            let Some(entry) = machines.get(&from) else {
                return 0; // detached machine
            };
            entry.nic.egress(&mut header);
        }
        stats.packets_sent.fetch_add(1, Ordering::Relaxed);
        stats.bytes_sent.fetch_add(
            Packet::WIRE_HEADER_BYTES + payload.len() as u64,
            Ordering::Relaxed,
        );
        stats
            .payload_bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if header.dest.is_broadcast() {
            stats.broadcasts_sent.fetch_add(1, Ordering::Relaxed);
            // Discovery traffic (LOCATE et al.) is accounted separately
            // so placement benchmarks can report its overhead honestly.
            stats.broadcast_bytes_sent.fetch_add(
                Packet::WIRE_HEADER_BYTES + payload.len() as u64,
                Ordering::Relaxed,
            );
        }

        // The legacy probabilistic drop knob draws from a shared RNG;
        // in simulation mode loss comes from the seeded fault plan
        // instead, so the knob is ignored for reproducibility.
        let drop_rate = if self.inner.sim.is_some() {
            0.0
        } else {
            f64::from_bits(self.inner.drop_rate_bits.load(Ordering::Relaxed))
        };
        if drop_rate > 0.0 && self.inner.rng.lock().gen::<f64>() < drop_rate {
            stats.packets_dropped.fetch_add(1, Ordering::Relaxed);
            return 0;
        }

        let latency = Duration::from_nanos(self.inner.latency_nanos.load(Ordering::Relaxed));
        let now = self.inner.reactor.now();

        // Intruder taps see the frame as transmitted. Tap copies are
        // diagnostics, not deliveries: they carry no gate.
        {
            let taps = self.inner.taps.read();
            if !taps.is_empty() {
                let pkt = Packet {
                    source: from,
                    // Must clone: each tap owns its copy — an O(1)
                    // refcount bump, the payload bytes are shared.
                    payload: payload.clone(),
                    header,
                    deliver_at: now,
                    gate: None,
                };
                for tap in taps.iter() {
                    let _ = tap.send(pkt.clone());
                }
            }
        }

        if let Some(sim) = &self.inner.sim {
            return self.send_sim(sim, from, header, payload, now, latency);
        }

        let machines = self.inner.machines.read();
        let colocated = self.inner.colocated.read();
        let partitioned = self.inner.partitioned.read();
        let mut delivered = 0;
        for (&id, entry) in machines.iter() {
            if id == from {
                continue; // interfaces do not hear their own frames
            }
            // A machine-targeted frame is addressed, not offered: other
            // machines never see it (broadcast ignores the hint).
            if !header.dest.is_broadcast() && header.target.is_some_and(|t| t != id) {
                continue;
            }
            if !header.dest.is_broadcast() && !entry.nic.accepts(header.dest) {
                stats.packets_filtered.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // A severed link only "drops" frames the peer would actually
            // have taken; counting filtered noise would be misleading.
            if partitioned.contains(&(from, id)) {
                stats.packets_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let deliver_at = if colocated.contains(&(from, id)) {
                now
            } else {
                now + latency
            };
            // Under the virtual clock every enqueued packet gates the
            // timeline at its arrival instant until consumed, keeping
            // concurrent flows causally ordered (see Reactor::deliver).
            let gate = self
                .inner
                .reactor
                .uses_gates()
                .then(|| self.inner.reactor.register_gate(deliver_at));
            let pkt = Packet {
                source: from,
                header,
                // Must clone: broadcast fan-out gives every recipient
                // its own handle onto the one shared payload buffer
                // (refcount bump, no byte copy).
                payload: payload.clone(),
                deliver_at,
                gate,
            };
            if entry.sender.send(pkt).is_ok() {
                delivered += 1;
                stats.packets_delivered.fetch_add(1, Ordering::Relaxed);
            } else if let Some(gate) = gate {
                // Nobody will ever consume it; free the timeline.
                self.inner.reactor.release_gate(gate);
            }
        }
        drop(machines);
        drop(colocated);
        drop(partitioned);
        // Wake every parked receiver to re-poll its queue. The
        // wall-clock fast paths block on the channels themselves, so
        // this only matters to reactor-parked waiters (virtual-clock
        // receives, driver pools).
        self.inner.reactor.notify();
        delivered
    }

    /// The simulation-mode transmit path: applies the same recipient
    /// filters as the live path, then offers each copy to the seeded
    /// fault gate instead of the machine queues. Recipients are
    /// visited in `MachineId` order — the live path's `HashMap`
    /// iteration order is the kind of nondeterminism the simulation
    /// exists to eliminate. Returns how many recipients had at least
    /// one copy parked in the schedule.
    fn send_sim(
        &self,
        sim: &Arc<SimController>,
        from: MachineId,
        header: Header,
        payload: Bytes,
        now: Timestamp,
        latency: Duration,
    ) -> usize {
        let stats = &self.inner.stats;
        let machines = self.inner.machines.read();
        let colocated = self.inner.colocated.read();
        let partitioned = self.inner.partitioned.read();
        let mut recipients: Vec<MachineId> = Vec::new();
        for (&id, entry) in machines.iter() {
            if id == from {
                continue;
            }
            if !header.dest.is_broadcast() && header.target.is_some_and(|t| t != id) {
                continue;
            }
            if !header.dest.is_broadcast() && !entry.nic.accepts(header.dest) {
                stats.packets_filtered.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if partitioned.contains(&(from, id)) {
                stats.packets_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            recipients.push(id);
        }
        recipients.sort_unstable();
        let mut parked = 0;
        for id in recipients {
            let deliver_at = if colocated.contains(&(from, id)) {
                now
            } else {
                now + latency
            };
            let pkt = Packet {
                source: from,
                header,
                // Must clone: fan-out shares the one payload buffer.
                payload: payload.clone(),
                deliver_at,
                // Sim packets are never gated: ordering is enforced
                // centrally by the controller's release schedule.
                gate: None,
            };
            if sim.offer(now, id, pkt) {
                parked += 1;
            } else {
                stats.packets_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(machines);
        drop(colocated);
        drop(partitioned);
        self.inner.reactor.notify();
        parked
    }

    /// Whether this network runs in deterministic simulation mode.
    pub fn is_sim(&self) -> bool {
        self.inner.sim.is_some()
    }

    /// Whether this network may deliver **more than one copy** of a
    /// transmitted frame (a simulation fault plan with duplication).
    /// Layers above consult this to disable optimizations whose
    /// soundness rests on at-most-once delivery — reply-port recycling
    /// reasons "one transmit to one machine ⇒ at most one reply",
    /// which a duplicating wire falsifies.
    pub fn may_duplicate(&self) -> bool {
        self.inner
            .sim
            .as_deref()
            .is_some_and(SimController::duplicates)
    }

    fn sim(&self) -> &Arc<SimController> {
        self.inner
            .sim
            .as_ref()
            .expect("not a simulation network (use Network::new_sim)")
    }

    /// The simulation seed.
    ///
    /// # Panics
    /// Panics (like every `sim_*` accessor) on a non-sim network.
    pub fn sim_seed(&self) -> u64 {
        self.sim().seed()
    }

    /// Binds fault-target index `index` of the [`FaultPlan`] to a
    /// machine. Plan windows naming unbound indices are inert, so a
    /// harness chooses which machines a seeded plan may victimise.
    pub fn sim_bind_fault_target(&self, index: usize, machine: MachineId) {
        self.sim().bind_target(index, machine);
    }

    /// Schedules an explicit crash/restart window for `machine` (in
    /// addition to any windows in the plan).
    pub fn sim_crash(&self, machine: MachineId, from: Timestamp, until: Timestamp) {
        self.sim().crash_machine(machine, from, until);
    }

    /// The end of the crash window covering `machine` at `t`, if any.
    pub fn sim_down_until(&self, machine: MachineId, t: Timestamp) -> Option<Timestamp> {
        self.sim().down_until(machine, t)
    }

    /// Whether `machine` is inside a crash window at `t`.
    pub fn sim_is_down(&self, machine: MachineId, t: Timestamp) -> bool {
        self.sim_down_until(machine, t).is_some()
    }

    /// The instant of the earliest parked delivery, if any.
    pub fn sim_next_delivery_at(&self) -> Option<Timestamp> {
        self.sim().next_at()
    }

    /// Releases the earliest parked delivery: advances the timeline to
    /// its instant and pushes the packet into the target machine's
    /// queue (unless the target crashed or detached in the meantime —
    /// then the in-flight frame is gone).
    pub fn sim_release_next(&self) -> SimRelease {
        let Some((at, target, pkt)) = self.sim().pop_next() else {
            return SimRelease::Idle;
        };
        self.inner.reactor.advance_to(at);
        let Some(pkt) = pkt else {
            self.inner
                .stats
                .packets_dropped
                .fetch_add(1, Ordering::Relaxed);
            self.inner.reactor.notify();
            return SimRelease::Dropped { at };
        };
        let delivered = {
            let machines = self.inner.machines.read();
            machines
                .get(&target)
                .is_some_and(|entry| entry.sender.send(pkt).is_ok())
        };
        self.inner.reactor.notify();
        if delivered {
            self.inner
                .stats
                .packets_delivered
                .fetch_add(1, Ordering::Relaxed);
            SimRelease::Delivered { at, to: target }
        } else {
            self.inner
                .stats
                .packets_dropped
                .fetch_add(1, Ordering::Relaxed);
            SimRelease::Dropped { at }
        }
    }

    /// The run's event fingerprint: `(fnv1a_hash, event_count)` over
    /// every schedule event so far. Equal fingerprints for equal seeds
    /// is the determinism contract CI asserts.
    pub fn sim_fingerprint(&self) -> (u64, u64) {
        self.sim().fingerprint()
    }

    /// Cumulative fault-injection counters.
    pub fn sim_fault_counters(&self) -> FaultCounters {
        self.sim().counters()
    }

    /// Starts (or stops) recording the raw event log for byte-identical
    /// comparison between runs. Recording resets any previous log.
    pub fn sim_record_log(&self, on: bool) {
        self.sim().record_log(on);
    }

    /// Takes the recorded event log (empty if recording was off).
    pub fn sim_take_log(&self) -> Vec<u8> {
        self.sim().take_log()
    }

    fn detach(&self, id: MachineId) {
        self.inner.machines.write().remove(&id);
        // Parked receivers of the detached endpoint observe the
        // disconnect on their next poll.
        self.inner.reactor.notify();
    }
}

/// The outcome of [`Network::sim_release_next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimRelease {
    /// The earliest delivery landed in `to`'s queue at instant `at`.
    Delivered {
        /// The delivery instant the timeline advanced to.
        at: Timestamp,
        /// The receiving machine.
        to: MachineId,
    },
    /// The earliest delivery was consumed but not delivered (target
    /// crashed mid-flight or detached).
    Dropped {
        /// The instant the timeline advanced to.
        at: Timestamp,
    },
    /// Nothing was pending.
    Idle,
}

/// Bridges the reactor's deterministic park branch to the simulation
/// controller: a parked thread with no earlier deadline asks the
/// network to release the next scheduled delivery.
struct SimHook {
    net: Weak<NetworkInner>,
}

impl SimSource for SimHook {
    fn next_delivery_at(&self) -> Option<Timestamp> {
        let inner = self.net.upgrade()?;
        inner.sim.as_ref()?.next_at()
    }

    fn release_next(&self) -> bool {
        let Some(inner) = self.net.upgrade() else {
            return false;
        };
        let net = Network { inner };
        !matches!(net.sim_release_next(), SimRelease::Idle)
    }
}

/// Error returned by the blocking receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No packet arrived within the timeout.
    Timeout,
    /// The endpoint is detached from the network.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "endpoint detached from network"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A machine's handle onto the network.
///
/// The receive queue is an MPMC channel: an endpoint shared across
/// threads (e.g. behind an `Arc` in a server worker pool) hands each
/// packet to exactly one concurrent receiver.
///
/// Dropping the endpoint detaches the machine.
pub struct Endpoint {
    id: MachineId,
    net: Network,
    nic: Arc<dyn NetworkInterface>,
    receiver: Receiver<Packet>,
    load: Arc<AtomicU32>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish()
    }
}

impl Endpoint {
    /// This machine's (unforgeable) address.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The network this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The machine's network interface.
    pub fn nic(&self) -> &Arc<dyn NetworkInterface> {
        &self.nic
    }

    /// The network's observability handle (see [`Network::obs`]).
    pub fn obs(&self) -> &Obs {
        self.net.obs()
    }

    /// Sets this machine's advertised load gauge (an arbitrary
    /// unit — the dispatch engine publishes its in-flight request
    /// count). Placement policies compare gauges across the replicas
    /// of a service; see [`Network::load_of`].
    pub fn set_load(&self, load: u32) {
        self.load.store(load, Ordering::Relaxed);
    }

    /// Increments the load gauge (a request entered service).
    pub fn add_load(&self, delta: u32) {
        self.load.fetch_add(delta, Ordering::Relaxed);
    }

    /// Decrements the load gauge, saturating at zero.
    pub fn sub_load(&self, delta: u32) {
        let _ = self
            .load
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// The current value of this machine's load gauge.
    pub fn load(&self) -> u32 {
        self.load.load(Ordering::Relaxed)
    }

    /// The network's reactor (scheduler + clock) — the clock every
    /// timeout above this endpoint should be computed against.
    pub fn reactor(&self) -> &Arc<Reactor> {
        self.net.reactor()
    }

    /// The current point on the network's timeline.
    pub fn now(&self) -> Timestamp {
        self.net.now()
    }

    /// Sleeps `d` of timeline time (see [`Network::sleep`]).
    pub fn sleep(&self, d: Duration) {
        self.net.sleep(d);
    }

    /// Registers interest in `port` (a GET in the paper's terms).
    /// Returns the wire port actually listened on — `F(port)` under an
    /// F-box.
    pub fn claim(&self, port: Port) -> Port {
        self.nic.claim(port)
    }

    /// Withdraws a claim made with [`claim`](Endpoint::claim).
    pub fn release(&self, port: Port) {
        self.nic.release(port)
    }

    /// Transmits a packet. Returns how many machines received it.
    pub fn send(&self, header: Header, payload: Bytes) -> usize {
        self.net.send(self.id, header, payload)
    }

    /// Blocks until a packet arrives (advancing the clock over its
    /// simulated latency: a real wait on the wall clock, a jump on the
    /// virtual one).
    ///
    /// # Errors
    /// Returns [`RecvError::Disconnected`] if the endpoint has been
    /// detached.
    pub fn recv(&self) -> Result<Packet, RecvError> {
        let reactor = self.net.reactor();
        if reactor.is_virtual() {
            return self.recv_parked(None);
        }
        let pkt = self.receiver.recv().map_err(|_| RecvError::Disconnected)?;
        reactor.deliver(&pkt);
        Ok(pkt)
    }

    /// Like [`recv`](Endpoint::recv) but gives up after `timeout` of
    /// timeline time.
    ///
    /// # Errors
    /// [`RecvError::Timeout`] on expiry, [`RecvError::Disconnected`] if
    /// detached.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Packet, RecvError> {
        self.recv_deadline(self.net.now() + timeout)
    }

    /// Like [`recv`](Endpoint::recv) but gives up once the timeline
    /// reaches `deadline`.
    ///
    /// # Errors
    /// As for [`recv_timeout`](Endpoint::recv_timeout).
    pub fn recv_deadline(&self, deadline: Timestamp) -> Result<Packet, RecvError> {
        let reactor = self.net.reactor();
        if reactor.is_virtual() {
            return self.recv_parked(Some(deadline));
        }
        let real = reactor
            .clock()
            .real_instant(deadline)
            .expect("wall clocks map to real instants");
        let pkt = self.receiver.recv_deadline(real).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RecvError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })?;
        // If the packet's simulated arrival lands past the caller's
        // deadline we still deliver it after waiting (a consumed channel
        // message cannot be requeued); the leniency only helps callers.
        reactor.deliver(&pkt);
        Ok(pkt)
    }

    /// The reactor-parked receive: registers this waiter with the
    /// reactor and re-polls the queue on every event, instead of
    /// blocking an OS thread on the channel.
    fn recv_parked(&self, deadline: Option<Timestamp>) -> Result<Packet, RecvError> {
        let reactor = self.net.reactor();
        let got = reactor.park_until(deadline, || match self.receiver.try_recv() {
            Ok(pkt) => Some(Ok(pkt)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(RecvError::Disconnected)),
        });
        match got {
            Some(Ok(pkt)) => {
                reactor.deliver(&pkt);
                Ok(pkt)
            }
            Some(Err(e)) => Err(e),
            None => Err(RecvError::Timeout),
        }
    }

    /// Non-blocking receive of an already-arrived packet (the clock is
    /// still advanced over the packet's simulated latency).
    pub fn try_recv(&self) -> Option<Packet> {
        let pkt = self.poll_arrival()?;
        self.net.reactor().deliver(&pkt);
        Some(pkt)
    }

    /// Pops the next queued packet **without consuming its delivery**
    /// (the clock is not advanced, the gate not released). This is the
    /// building block for reactor-driven consumers whose poll runs
    /// inside [`Reactor::park_until`] (where delivering would re-enter
    /// the reactor): they pass the packet to
    /// [`Reactor::deliver`](crate::Reactor::deliver) once parked-out.
    /// Most callers want [`try_recv`](Endpoint::try_recv).
    pub fn poll_arrival(&self) -> Option<Packet> {
        self.receiver.try_recv().ok()
    }

    /// Whether at least one packet is queued on this endpoint
    /// (regardless of its simulated arrival time).
    pub fn has_arrivals(&self) -> bool {
        !self.receiver.is_empty()
    }
}

// Server worker pools share one endpoint across threads.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Endpoint>();
    assert_shareable::<Network>();
};

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.net.detach(self.id);
        // Packets still queued here will never be consumed; release
        // their delivery gates so the virtual timeline is not wedged.
        while let Ok(pkt) = self.receiver.try_recv() {
            self.net.reactor().discard(&pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn port(v: u64) -> Port {
        Port::new(v).unwrap()
    }

    #[test]
    fn unicast_delivers_only_to_claimer() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        b.claim(port(7));

        let n = a.send(Header::to(port(7)), Bytes::from_static(b"x"));
        assert_eq!(n, 1);
        assert_eq!(&b.recv().unwrap().payload[..], b"x");
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn source_is_stamped_by_network() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(9));
        a.send(Header::to(port(9)), Bytes::new());
        assert_eq!(b.recv().unwrap().source, a.id());
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        let n = a.send(Header::to(Port::BROADCAST), Bytes::from_static(b"loc"));
        assert_eq!(n, 2);
        assert!(b.recv().is_ok());
        assert!(c.recv().is_ok());
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn sender_does_not_hear_own_unicast() {
        let net = Network::new();
        let a = net.attach_open();
        a.claim(port(5));
        let n = a.send(Header::to(port(5)), Bytes::new());
        assert_eq!(n, 0);
    }

    #[test]
    fn taps_see_everything() {
        let net = Network::new();
        let wire = net.tap();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(3));
        a.send(Header::to(port(3)), Bytes::from_static(b"secret"));
        a.send(Header::to(port(4)), Bytes::from_static(b"undelivered"));
        let p1 = wire.recv().unwrap();
        let p2 = wire.recv().unwrap();
        assert_eq!(&p1.payload[..], b"secret");
        // Even packets nobody accepted are visible on the wire.
        assert_eq!(&p2.payload[..], b"undelivered");
    }

    #[test]
    fn drop_rate_one_loses_everything() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(2));
        net.set_drop_rate(1.0);
        assert_eq!(a.send(Header::to(port(2)), Bytes::new()), 0);
        assert_eq!(net.stats().snapshot().packets_dropped, 1);
        net.set_drop_rate(0.0);
        assert_eq!(a.send(Header::to(port(2)), Bytes::new()), 1);
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn invalid_drop_rate_panics() {
        Network::new().set_drop_rate(1.5);
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(2));
        net.set_latency(Duration::from_millis(30));
        let t0 = Instant::now();
        a.send(Header::to(port(2)), Bytes::new());
        b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn colocated_machines_skip_latency() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(2));
        net.set_latency(Duration::from_millis(50));
        net.colocate(a.id(), b.id());
        let t0 = Instant::now();
        a.send(Header::to(port(2)), Bytes::new());
        b.recv().unwrap();
        assert!(t0.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn partition_blocks_traffic_both_ways_until_healed() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        a.claim(port(1));
        b.claim(port(2));
        c.claim(port(3));

        net.partition(a.id(), b.id());
        assert_eq!(a.send(Header::to(port(2)), Bytes::new()), 0);
        assert_eq!(b.send(Header::to(port(1)), Bytes::new()), 0);
        // Third parties are unaffected.
        assert_eq!(a.send(Header::to(port(3)), Bytes::new()), 1);
        assert_eq!(net.stats().snapshot().packets_dropped, 2);

        net.heal(a.id(), b.id());
        assert_eq!(a.send(Header::to(port(2)), Bytes::new()), 1);
    }

    #[test]
    fn partition_also_blocks_broadcast_between_the_pair() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        net.partition(a.id(), b.id());
        assert_eq!(a.send(Header::to(Port::BROADCAST), Bytes::new()), 1);
        assert!(c.try_recv().is_some());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new();
        let a = net.attach_open();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn detached_sender_sends_nothing() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(2));
        let from = a.id();
        drop(a);
        assert_eq!(net.send(from, Header::to(port(2)), Bytes::new()), 0);
        assert_eq!(net.machine_count(), 1);
    }

    #[test]
    fn stats_count_filtering() {
        let net = Network::new();
        let a = net.attach_open();
        let _b = net.attach_open();
        let _c = net.attach_open();
        a.send(Header::to(port(42)), Bytes::new()); // nobody claimed it
        let s = net.stats().snapshot();
        assert_eq!(s.packets_sent, 1);
        assert_eq!(s.packets_delivered, 0);
        assert_eq!(s.packets_filtered, 2);
    }

    #[test]
    fn targeted_frame_reaches_only_the_named_claimer() {
        // Two machines claim the same port (service replicas); a
        // machine-targeted frame must reach the named one only.
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        b.claim(port(7));
        c.claim(port(7));

        // Untargeted: associative addressing delivers to both claimers.
        assert_eq!(a.send(Header::to(port(7)), Bytes::new()), 2);
        assert!(b.try_recv().is_some());
        assert!(c.try_recv().is_some());

        // Targeted: only machine b hears it.
        assert_eq!(
            a.send(Header::to(port(7)).targeted(b.id()), Bytes::new()),
            1
        );
        assert!(b.try_recv().is_some());
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn target_cannot_bypass_port_filtering() {
        // Targeting a machine that never claimed the port delivers
        // nothing: the interface's accept check still gates.
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        assert_eq!(
            a.send(Header::to(port(9)).targeted(b.id()), Bytes::new()),
            0
        );
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn broadcast_ignores_target_hint() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let c = net.attach_open();
        let n = a.send(Header::to(Port::BROADCAST).targeted(b.id()), Bytes::new());
        assert_eq!(n, 2, "broadcast still reaches every other machine");
        assert!(b.try_recv().is_some());
        assert!(c.try_recv().is_some());
    }

    #[test]
    fn load_gauge_is_shared_and_saturating() {
        let net = Network::new();
        let a = net.attach_open();
        assert_eq!(net.load_of(a.id()), Some(0));
        a.add_load(3);
        assert_eq!(a.load(), 3);
        assert_eq!(net.load_of(a.id()), Some(3));
        a.sub_load(5);
        assert_eq!(net.load_of(a.id()), Some(0), "gauge saturates at zero");
        a.set_load(7);
        assert_eq!(net.load_of(a.id()), Some(7));
        let id = a.id();
        drop(a);
        assert_eq!(net.load_of(id), None, "detached machines have no gauge");
    }

    #[test]
    fn broadcast_bytes_are_accounted_separately() {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(3));
        a.send(Header::to(port(3)), Bytes::from_static(b"req"));
        let s = net.stats().snapshot();
        assert_eq!(s.broadcast_bytes_sent, 0, "unicast is not discovery");

        a.send(Header::to(Port::BROADCAST), Bytes::from_static(b"locate!"));
        let s = net.stats().snapshot();
        assert_eq!(
            s.broadcast_bytes_sent,
            Packet::WIRE_HEADER_BYTES + 7,
            "broadcast frames charge header + payload to discovery"
        );
        assert!(s.bytes_sent > s.broadcast_bytes_sent, "subset of total");
    }

    #[test]
    fn shared_endpoint_delivers_each_packet_to_one_receiver() {
        use std::sync::Arc;
        let net = Network::new();
        let rx = Arc::new(net.attach_open());
        rx.claim(port(88));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv_timeout(Duration::from_millis(100)).is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let tx = net.attach_open();
        for _ in 0..200 {
            tx.send(Header::to(port(88)), Bytes::from_static(b"x"));
        }
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200, "every packet claimed exactly once");
    }

    #[test]
    fn virtual_clock_makes_latency_free_in_real_time() {
        let net = Network::new_virtual();
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(2));
        net.set_latency(Duration::from_millis(500));
        let t0 = std::time::Instant::now();
        let v0 = net.now();
        a.send(Header::to(port(2)), Bytes::new());
        b.recv().unwrap();
        assert!(
            net.now().saturating_duration_since(v0) >= Duration::from_millis(500),
            "virtual time must cover the hop latency"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "the 500 ms hop must not cost real wall-clock: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn virtual_recv_timeout_expires_without_real_waiting() {
        let net = Network::new_virtual();
        let a = net.attach_open();
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(2)).unwrap_err(),
            RecvError::Timeout
        );
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a 2 s virtual timeout must expire via the reactor, not a sleep"
        );
        assert!(net.now().since_epoch() >= Duration::from_secs(2));
    }

    #[test]
    fn virtual_shared_endpoint_still_delivers_each_packet_once() {
        use std::sync::Arc;
        let net = Network::new_virtual();
        net.set_latency(Duration::from_millis(2));
        let rx = Arc::new(net.attach_open());
        rx.claim(port(88));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv_timeout(Duration::from_millis(100)).is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let tx = net.attach_open();
        for _ in 0..100 {
            tx.send(Header::to(port(88)), Bytes::from_static(b"x"));
        }
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100, "every packet claimed exactly once");
    }

    #[test]
    fn many_threads_can_send_concurrently() {
        let net = Network::new();
        let rx = net.attach_open();
        rx.claim(port(77));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ep = net.attach_open();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    ep.send(Header::to(port(77)), Bytes::from_static(b"m"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while rx.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 800);
    }
}
