//! Atomic traffic counters, used by the locate and match-making
//! benchmarks to count broadcast vs unicast traffic, and by the RPC
//! batching benchmark to count frames and bytes on the wire.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of network activity.
///
/// All counters are cumulative since network creation; use
/// [`snapshot`](NetworkStats::snapshot) to diff around a workload.
#[derive(Debug, Default)]
pub struct NetworkStats {
    pub(crate) packets_sent: AtomicU64,
    pub(crate) packets_delivered: AtomicU64,
    pub(crate) broadcasts_sent: AtomicU64,
    pub(crate) packets_dropped: AtomicU64,
    pub(crate) packets_filtered: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) payload_bytes_sent: AtomicU64,
    pub(crate) broadcast_bytes_sent: AtomicU64,
}

/// A point-in-time copy of [`NetworkStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Send operations performed (unicast and broadcast alike).
    pub packets_sent: u64,
    /// Copies delivered into machine inboxes (a broadcast counts once
    /// per recipient).
    pub packets_delivered: u64,
    /// Sends whose destination was the broadcast port.
    pub broadcasts_sent: u64,
    /// Packets lost to the configured drop rate.
    pub packets_dropped: u64,
    /// (machine, packet) pairs rejected by interface filtering — the
    /// associative-addressing misses.
    pub packets_filtered: u64,
    /// Wire bytes in send operations: payload plus the fixed per-frame
    /// header overhead ([`Packet::WIRE_HEADER_BYTES`]); what batching
    /// amortises is exactly the header share of this.
    ///
    /// [`Packet::WIRE_HEADER_BYTES`]: crate::Packet::WIRE_HEADER_BYTES
    pub bytes_sent: u64,
    /// Payload bytes alone in send operations (excluding the per-frame
    /// header overhead).
    pub payload_bytes_sent: u64,
    /// Wire bytes (header + payload) of broadcast-destination frames —
    /// the LOCATE discovery traffic. A subset of `bytes_sent`, split
    /// out so placement benchmarks can report discovery overhead
    /// separately from request/reply traffic.
    pub broadcast_bytes_sent: u64,
}

impl NetworkStats {
    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            packets_sent: self.packets_sent.load(Ordering::Relaxed),
            packets_delivered: self.packets_delivered.load(Ordering::Relaxed),
            broadcasts_sent: self.broadcasts_sent.load(Ordering::Relaxed),
            packets_dropped: self.packets_dropped.load(Ordering::Relaxed),
            packets_filtered: self.packets_filtered.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            payload_bytes_sent: self.payload_bytes_sent.load(Ordering::Relaxed),
            broadcast_bytes_sent: self.broadcast_bytes_sent.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of the four hot-path cost counters the
/// zero-copy codec and lock-free demux optimise: frames on the wire,
/// payload-buffer allocations, one-way-function evaluations, and
/// blocking lock acquisitions. Diff two snapshots around a workload to
/// get per-operation costs.
///
/// `frames_sent` is per network; `oneway_evals` sums the
/// [`crypto_evals`](crate::NetworkInterface::crypto_evals) of the
/// machines *currently attached* (detached machines take their counts
/// with them, so snapshot while the fleet is stable); `buffer_allocs`
/// is the process-wide counter from the vendored `bytes` shim (for
/// race-free per-workload accounting prefer diffing
/// [`BufPool`](crate::BufPool) instances directly);
/// `lock_acquisitions` is the process-wide [`HotMutex`](crate::HotMutex) counter (see
/// [`hot_lock_acquisitions`](crate::hot_lock_acquisitions) for its
/// scope, and prefer [`LockMeter`](crate::LockMeter) accounting under
/// concurrent tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotPathSnapshot {
    /// Send operations performed on this network.
    pub frames_sent: u64,
    /// One-way-function evaluations by this network's attached
    /// interfaces.
    pub oneway_evals: u64,
    /// Process-wide fresh payload-buffer allocations
    /// ([`bytes::stats::buffer_allocs`]).
    pub buffer_allocs: u64,
    /// Process-wide counted mutex acquisitions
    /// ([`crate::hot_lock_acquisitions`]).
    pub lock_acquisitions: u64,
}

impl std::ops::Sub for HotPathSnapshot {
    type Output = HotPathSnapshot;

    fn sub(self, rhs: HotPathSnapshot) -> HotPathSnapshot {
        HotPathSnapshot {
            frames_sent: self.frames_sent - rhs.frames_sent,
            // Saturating: the eval sum spans *currently attached*
            // machines, so it can legitimately shrink when a machine
            // detaches between snapshots (e.g. a halted replica).
            oneway_evals: self.oneway_evals.saturating_sub(rhs.oneway_evals),
            buffer_allocs: self.buffer_allocs - rhs.buffer_allocs,
            lock_acquisitions: self.lock_acquisitions - rhs.lock_acquisitions,
        }
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            packets_sent: self.packets_sent - rhs.packets_sent,
            packets_delivered: self.packets_delivered - rhs.packets_delivered,
            broadcasts_sent: self.broadcasts_sent - rhs.broadcasts_sent,
            packets_dropped: self.packets_dropped - rhs.packets_dropped,
            packets_filtered: self.packets_filtered - rhs.packets_filtered,
            bytes_sent: self.bytes_sent - rhs.bytes_sent,
            payload_bytes_sent: self.payload_bytes_sent - rhs.payload_bytes_sent,
            broadcast_bytes_sent: self.broadcast_bytes_sent - rhs.broadcast_bytes_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let stats = NetworkStats::default();
        stats.packets_sent.store(10, Ordering::Relaxed);
        let a = stats.snapshot();
        stats.packets_sent.store(17, Ordering::Relaxed);
        stats.packets_delivered.store(3, Ordering::Relaxed);
        let b = stats.snapshot();
        let d = b - a;
        assert_eq!(d.packets_sent, 7);
        assert_eq!(d.packets_delivered, 3);
        assert_eq!(d.broadcasts_sent, 0);
    }
}
