//! The network-interface abstraction the F-box plugs into.

use crate::addr::Port;
use crate::packet::Header;
use parking_lot::Mutex;
use std::collections::HashSet;

/// A machine's network interface.
///
/// Every packet a machine sends passes through [`egress`], and every
/// packet on the wire is offered to [`accepts`] to decide delivery —
/// *by the network itself*, so user code cannot bypass the interface.
/// This is the enforcement point the paper puts in VLSI: "we assume that
/// somehow or other all messages entering and leaving every processor
/// undergo a simple transformation that users cannot bypass".
///
/// Implementations: [`OpenNic`] (no transformation — the unprotected
/// baseline and the §2.4 software-protection setting) and
/// `amoeba_fbox::FBox` (the hardware solution of §2.2).
///
/// [`egress`]: NetworkInterface::egress
/// [`accepts`]: NetworkInterface::accepts
pub trait NetworkInterface: Send + Sync + std::fmt::Debug {
    /// Registers interest in a port. `port` is what the *process* asked
    /// to GET (a get-port under the F-box model); the return value is
    /// the wire port the interface will actually listen on (`F(G)` for
    /// an F-box, `port` itself for an open interface).
    fn claim(&self, port: Port) -> Port;

    /// Withdraws a previous claim (by the same process-visible port).
    fn release(&self, port: Port);

    /// Transforms an outgoing header in place. Called by the network on
    /// every send — unbypassable.
    fn egress(&self, header: &mut Header);

    /// Whether a packet destined to `dest` should be delivered to this
    /// machine. Broadcast packets bypass this check.
    fn accepts(&self, dest: Port) -> bool;

    /// Cumulative one-way-function evaluations this interface has
    /// performed (its real crypto work, memoization hits excluded).
    /// Interfaces with no crypto — like [`OpenNic`] — report zero;
    /// `amoeba_fbox::FBox` reports its F-eval counter. Summed across a
    /// network's machines by [`Network::hot_path`] so benchmarks can
    /// meter crypto cost per operation.
    ///
    /// [`Network::hot_path`]: crate::Network::hot_path
    fn crypto_evals(&self) -> u64 {
        0
    }
}

/// An interface with no protection: claims are literal, egress is the
/// identity.
///
/// This models both the raw network of §2.4 (protection done in
/// software above the network) and the "intruder removed his F-box"
/// scenario used as a negative control in tests.
#[derive(Debug, Default)]
pub struct OpenNic {
    claimed: Mutex<HashSet<Port>>,
}

impl OpenNic {
    /// Creates an interface with no claims.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NetworkInterface for OpenNic {
    fn claim(&self, port: Port) -> Port {
        self.claimed.lock().insert(port);
        port
    }

    fn release(&self, port: Port) {
        self.claimed.lock().remove(&port);
    }

    fn egress(&self, _header: &mut Header) {}

    fn accepts(&self, dest: Port) -> bool {
        self.claimed.lock().contains(&dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_nic_claims_literally() {
        let nic = OpenNic::new();
        let p = Port::new(99).unwrap();
        assert!(!nic.accepts(p));
        assert_eq!(nic.claim(p), p);
        assert!(nic.accepts(p));
        nic.release(p);
        assert!(!nic.accepts(p));
    }

    #[test]
    fn open_nic_egress_is_identity() {
        let nic = OpenNic::new();
        let mut h = Header::to(Port::new(1).unwrap())
            .with_reply(Port::new(2).unwrap())
            .with_signature(Port::new(3).unwrap());
        let before = h;
        nic.egress(&mut h);
        assert_eq!(h, before);
    }

    #[test]
    fn release_of_unclaimed_port_is_noop() {
        let nic = OpenNic::new();
        nic.release(Port::new(5).unwrap());
        assert!(!nic.accepts(Port::new(5).unwrap()));
    }
}
