//! Deterministic simulation: seeded fault plans, the delivery
//! controller, and the single-threaded [`SimExecutor`].
//!
//! A network created with [`Network::new_sim`](crate::Network::new_sim)
//! runs on a [`SimClock`](crate::SimClock): one thread, exact virtual
//! time, and **every** source of nondeterminism pinned to a `u64` seed.
//! Sends do not go straight into machine queues — they are parked in
//! the controller's pending set, keyed by `(deliver_at, seeded tie)`,
//! and released strictly in timeline order by whoever drives the
//! simulation (the executor's advance step, or a thread parked inside
//! the reactor). Simultaneous deliveries are ordered by a tie-break
//! drawn from the seed, so "two replies arrive at the same instant" is
//! a *scheduled* adversarial event, not an OS scheduling accident.
//!
//! On top of the controller sits the [`FaultPlan`]: packet loss,
//! duplication, delay spikes, reorder jitter, link partitions and
//! machine crash/restart windows, all drawn deterministically from the
//! seed at the delivery gate. The controller folds every event into a
//! running FNV-1a fingerprint (and, on request, a byte log), which is
//! what lets tests assert that two runs of one seed are bit-identical
//! and that a failing seed replays exactly.
//!
//! The [`SimExecutor`] runs services and clients as **polled state
//! machines**: each actor is a closure returning [`ActorPoll`], woken
//! when a delivery lands on its machine or its own timer expires. No
//! OS threads, no grace/patience heuristics — a million simulated
//! clients fit in one process because an idle client is just a pending
//! timer in a B-tree.

use crate::addr::MachineId;
use crate::network::{Network, SimRelease};
use crate::packet::Packet;
use crate::reactor::Timestamp;
use amoeba_obs::{EventKind, Obs};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// The splitmix64 mixer: the simulation's only randomness primitive.
/// Statistically uniform, one u64 of state, trivially reproducible.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A machine crash/restart window: the victim is unreachable (frames
/// to and from it vanish, its actors are not polled) from `from` until
/// `until` of simulated time, then comes back with whatever backlog
/// queued at its endpoint — a restart that serves stale requests, the
/// classic straggler generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Fault-target index (bound to a machine by the harness via
    /// [`Network::sim_bind_fault_target`](crate::Network::sim_bind_fault_target)).
    pub victim: usize,
    /// Window start, as simulated time since the epoch.
    pub from: Duration,
    /// Window end (exclusive).
    pub until: Duration,
}

/// A bidirectional link cut between two fault targets for a bounded
/// window of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First fault-target index.
    pub a: usize,
    /// Second fault-target index.
    pub b: usize,
    /// Window start, as simulated time since the epoch.
    pub from: Duration,
    /// Window end (exclusive).
    pub until: Duration,
}

/// How many fault-target indices [`FaultPlan::from_seed`] draws its
/// crash and partition victims from. Harnesses bind their replicas
/// (and optionally clients) to indices `0..SEED_PLAN_TARGETS`; unbound
/// indices leave their windows inert.
pub const SEED_PLAN_TARGETS: usize = 6;

/// A seeded fault schedule, applied at the network's delivery gate.
///
/// Probabilities are per-mille so the plan is pure integers — no
/// float rounding can creep into the schedule. All windows are bounded
/// (they end by ~500 ms of simulated time), so an invariant harness
/// that retries past them always terminates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Per-mille probability that a transmitted frame is lost.
    pub loss_per_mille: u16,
    /// Per-mille probability that a frame is delivered twice (the
    /// second copy arrives later by a seeded extra delay).
    pub dup_per_mille: u16,
    /// Per-mille probability that a frame's delivery is delayed by a
    /// spike in `spike_min..=spike_max`.
    pub spike_per_mille: u16,
    /// Minimum delay-spike magnitude.
    pub spike_min: Duration,
    /// Maximum delay-spike magnitude.
    pub spike_max: Duration,
    /// Maximum reorder jitter added to every delivery (uniform in
    /// `0..=jitter_max`); nonzero jitter is what lets two frames sent
    /// in order arrive swapped.
    pub jitter_max: Duration,
    /// Machine crash/restart windows.
    pub crashes: Vec<CrashWindow>,
    /// Link-cut windows.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// The no-fault plan: deterministic scheduling and seeded
    /// tie-breaking only.
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives a bounded adversarial plan from `seed`: moderate loss,
    /// duplication and delay spikes for the whole run, plus up to two
    /// crash windows and one partition window among the first
    /// [`SEED_PLAN_TARGETS`] fault targets, all inside the first
    /// ~500 ms of simulated time.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0xFA_07_1A_0B_5E_ED_00_01;
        let loss_per_mille = (splitmix64(&mut s) % 81) as u16;
        let dup_per_mille = (splitmix64(&mut s) % 61) as u16;
        let spike_per_mille = (splitmix64(&mut s) % 51) as u16;
        let spike_min = Duration::from_millis(1 + splitmix64(&mut s) % 3);
        let spike_max = spike_min + Duration::from_millis(2 + splitmix64(&mut s) % 14);
        let jitter_max = Duration::from_micros(splitmix64(&mut s) % 2001);
        let crashes = (0..splitmix64(&mut s) % 3)
            .map(|_| {
                let victim = (splitmix64(&mut s) as usize) % SEED_PLAN_TARGETS;
                let from = Duration::from_millis(20 + splitmix64(&mut s) % 350);
                let until = from + Duration::from_millis(15 + splitmix64(&mut s) % 60);
                CrashWindow {
                    victim,
                    from,
                    until,
                }
            })
            .collect();
        let partitions = (0..splitmix64(&mut s) % 2)
            .map(|_| {
                let a = (splitmix64(&mut s) as usize) % SEED_PLAN_TARGETS;
                let b = (a + 1 + (splitmix64(&mut s) as usize) % (SEED_PLAN_TARGETS - 1))
                    % SEED_PLAN_TARGETS;
                let from = Duration::from_millis(20 + splitmix64(&mut s) % 350);
                let until = from + Duration::from_millis(20 + splitmix64(&mut s) % 80);
                PartitionWindow { a, b, from, until }
            })
            .collect();
        FaultPlan {
            loss_per_mille,
            dup_per_mille,
            spike_per_mille,
            spike_min,
            spike_max,
            jitter_max,
            crashes,
            partitions,
        }
    }
}

/// Cumulative per-kind fault counters, for tests asserting that a plan
/// actually exercised the machinery it claims to.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames lost at the delivery gate.
    pub lost: u64,
    /// Extra duplicate copies enqueued.
    pub duplicated: u64,
    /// Frames hit by a delay spike.
    pub spiked: u64,
    /// Frames dropped because an endpoint of the hop was inside a
    /// crash window (at transmission or at arrival).
    pub crash_dropped: u64,
    /// Frames dropped by an active partition window.
    pub partition_dropped: u64,
}

/// One parked delivery: the packet and the machine that will receive
/// it when the schedule reaches its instant.
#[derive(Debug)]
struct Pending {
    target: MachineId,
    pkt: Packet,
}

#[derive(Debug)]
struct SimState {
    rng: u64,
    seq: u64,
    plan: FaultPlan,
    /// Fault-target index → bound machine. Windows naming an unbound
    /// index are inert.
    targets: Vec<Option<MachineId>>,
    /// The schedule: deliveries keyed by `(instant, seeded tie)`.
    pending: BTreeMap<(Timestamp, u64), Pending>,
    /// FNV-1a over every event record — the run's fingerprint.
    hash: u64,
    events: u64,
    /// The raw event records, kept only when a test asked for
    /// byte-identical comparison.
    log: Option<Vec<u8>>,
    counters: FaultCounters,
    /// The network's observability handle: every schedule event is
    /// mirrored into the flight recorder (and fault verdicts into the
    /// metrics) when enabled. Recording never touches the RNG, the
    /// fingerprint, or the byte log, so determinism is unaffected.
    obs: Obs,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl SimState {
    fn record(
        &mut self,
        tag: u8,
        at: Timestamp,
        source: MachineId,
        target: MachineId,
        pkt: &Packet,
    ) {
        let mut buf = [0u8; 29];
        buf[0] = tag;
        buf[1..9].copy_from_slice(&(at.since_epoch().as_nanos() as u64).to_le_bytes());
        buf[9..13].copy_from_slice(&source.as_u32().to_le_bytes());
        buf[13..17].copy_from_slice(&target.as_u32().to_le_bytes());
        buf[17..25].copy_from_slice(&pkt.header.dest.value().to_le_bytes());
        buf[25..29].copy_from_slice(&(pkt.payload.len() as u32).to_le_bytes());
        for &b in &buf {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.events += 1;
        if let Some(log) = &mut self.log {
            log.extend_from_slice(&buf);
        }
        if self.obs.enabled() {
            let kind = match tag {
                b'E' => EventKind::DeliveryGate,
                b'L' => EventKind::Loss,
                b'C' => EventKind::CrashDrop,
                b'P' => EventKind::PartitionDrop,
                b'D' => EventKind::Delivered,
                _ => EventKind::Unknown,
            };
            self.obs.record(
                kind,
                at.since_epoch().as_nanos() as u64,
                0,
                pkt.header.dest.value(),
                u64::from(target.as_u32()),
            );
            if let Some(m) = self.obs.metrics() {
                match tag {
                    b'L' => m.faults_lost.add(1),
                    b'C' => m.faults_crash_dropped.add(1),
                    b'P' => m.faults_partition_dropped.add(1),
                    _ => {}
                }
            }
        }
    }

    fn victim_of(&self, machine: MachineId) -> Option<usize> {
        self.targets.iter().position(|&t| t == Some(machine))
    }

    /// The end of the crash window covering `machine` at `t`, if any.
    fn down_until(&self, machine: MachineId, t: Timestamp) -> Option<Timestamp> {
        let victim = self.victim_of(machine)?;
        self.plan
            .crashes
            .iter()
            .filter(|w| w.victim == victim)
            .filter(|w| {
                let d = t.since_epoch();
                w.from <= d && d < w.until
            })
            .map(|w| Timestamp::ZERO + w.until)
            .max()
    }

    fn partitioned(&self, a: MachineId, b: MachineId, t: Timestamp) -> bool {
        let (Some(va), Some(vb)) = (self.victim_of(a), self.victim_of(b)) else {
            return false;
        };
        let d = t.since_epoch();
        self.plan.partitions.iter().any(|w| {
            ((w.a == va && w.b == vb) || (w.a == vb && w.b == va)) && w.from <= d && d < w.until
        })
    }

    fn duration_draw(&mut self, max: Duration) -> Duration {
        let nanos = max.as_nanos().min(u64::MAX as u128) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(splitmix64(&mut self.rng) % (nanos + 1))
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && splitmix64(&mut self.rng) % 1000 < u64::from(per_mille)
    }

    /// Mirrors a spike/duplicate verdict into the flight recorder and
    /// metrics (the loss/crash/partition verdicts piggyback on
    /// [`record`](Self::record)'s tag mapping instead).
    fn obs_fault(&self, kind: EventKind, at: Timestamp, target: MachineId, pkt: &Packet) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.record(
            kind,
            at.since_epoch().as_nanos() as u64,
            0,
            pkt.header.dest.value(),
            u64::from(target.as_u32()),
        );
        if let Some(m) = self.obs.metrics() {
            match kind {
                EventKind::Spike => m.faults_spiked.add(1),
                EventKind::Duplicate => m.faults_duplicated.add(1),
                _ => {}
            }
        }
    }

    /// Parks one copy of `pkt` for `target` at `at`, with a seeded
    /// tie-break against other deliveries at the same instant.
    fn park(&mut self, target: MachineId, mut pkt: Packet, at: Timestamp) {
        pkt.deliver_at = at;
        self.seq += 1;
        let tie = (splitmix64(&mut self.rng) << 32) | (self.seq & 0xFFFF_FFFF);
        self.record(b'E', at, pkt.source, target, &pkt);
        self.pending.insert((at, tie), Pending { target, pkt });
    }
}

/// The per-network simulation controller: owns the seeded RNG, the
/// pending-delivery schedule, the fault plan and the event fingerprint.
#[derive(Debug)]
pub(crate) struct SimController {
    seed: u64,
    state: Mutex<SimState>,
}

impl SimController {
    pub(crate) fn new(seed: u64, plan: FaultPlan) -> SimController {
        SimController {
            seed,
            state: Mutex::new(SimState {
                rng: seed,
                seq: 0,
                plan,
                targets: Vec::new(),
                pending: BTreeMap::new(),
                hash: FNV_OFFSET,
                events: 0,
                log: None,
                counters: FaultCounters::default(),
                obs: Obs::new(),
            }),
        }
    }

    /// Shares the network's observability handle with the controller
    /// (called once from the network constructor).
    pub(crate) fn attach_obs(&self, obs: Obs) {
        self.state.lock().obs = obs;
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can deliver duplicate copies of a frame.
    pub(crate) fn duplicates(&self) -> bool {
        self.state.lock().plan.dup_per_mille > 0
    }

    pub(crate) fn bind_target(&self, index: usize, machine: MachineId) {
        let mut st = self.state.lock();
        if st.targets.len() <= index {
            st.targets.resize(index + 1, None);
        }
        st.targets[index] = Some(machine);
    }

    /// Appends an explicit crash window for `machine` (binding it to a
    /// fresh fault-target index if needed).
    pub(crate) fn crash_machine(&self, machine: MachineId, from: Timestamp, until: Timestamp) {
        let mut st = self.state.lock();
        let victim = match st.victim_of(machine) {
            Some(v) => v,
            None => {
                st.targets.push(Some(machine));
                st.targets.len() - 1
            }
        };
        st.plan.crashes.push(CrashWindow {
            victim,
            from: from.since_epoch(),
            until: until.since_epoch(),
        });
    }

    pub(crate) fn down_until(&self, machine: MachineId, t: Timestamp) -> Option<Timestamp> {
        self.state.lock().down_until(machine, t)
    }

    /// Offers one recipient's copy to the fault gate: applies the
    /// seeded loss/duplication/spike/jitter draws and the crash and
    /// partition windows, parking 0, 1 or 2 deliveries. Returns `true`
    /// if at least one copy was parked.
    pub(crate) fn offer(&self, now: Timestamp, target: MachineId, pkt: Packet) -> bool {
        let mut st = self.state.lock();
        if st.down_until(pkt.source, now).is_some() || st.down_until(target, now).is_some() {
            // A dead transmitter or a dead interface: the frame never
            // makes it onto the wire segment.
            st.counters.crash_dropped += 1;
            st.record(b'C', now, pkt.source, target, &pkt);
            return false;
        }
        if st.partitioned(pkt.source, target, now) {
            st.counters.partition_dropped += 1;
            st.record(b'P', now, pkt.source, target, &pkt);
            return false;
        }
        let (loss, dup_pm, spike_pm, spike_min, spike_max, jitter_max) = (
            st.plan.loss_per_mille,
            st.plan.dup_per_mille,
            st.plan.spike_per_mille,
            st.plan.spike_min,
            st.plan.spike_max,
            st.plan.jitter_max,
        );
        if st.roll(loss) {
            st.counters.lost += 1;
            st.record(b'L', now, pkt.source, target, &pkt);
            return false;
        }
        let mut at = pkt.deliver_at + st.duration_draw(jitter_max);
        if st.roll(spike_pm) {
            let extra = spike_max.saturating_sub(spike_min);
            at = at + spike_min + st.duration_draw(extra);
            st.counters.spiked += 1;
            st.obs_fault(EventKind::Spike, now, target, &pkt);
        }
        let dup = st.roll(dup_pm);
        if dup {
            let lag = spike_min.max(Duration::from_micros(100))
                + st.duration_draw(spike_max.max(Duration::from_millis(1)));
            let copy_at = at + lag;
            st.counters.duplicated += 1;
            st.obs_fault(EventKind::Duplicate, now, target, &pkt);
            st.park(target, pkt.clone(), copy_at);
        }
        st.park(target, pkt, at);
        true
    }

    pub(crate) fn next_at(&self) -> Option<Timestamp> {
        self.state.lock().pending.keys().next().map(|&(t, _)| t)
    }

    /// Pops the earliest pending delivery, applying the arrival-time
    /// crash check (a frame in flight toward a machine that crashed
    /// before it landed is gone). `None` when nothing is pending;
    /// otherwise the instant, the target, and the packet unless it was
    /// crash-dropped on arrival.
    pub(crate) fn pop_next(&self) -> Option<(Timestamp, MachineId, Option<Packet>)> {
        let mut st = self.state.lock();
        let (&key, _) = st.pending.iter().next()?;
        let Pending { target, pkt } = st.pending.remove(&key).expect("key just observed");
        let at = key.0;
        if st.down_until(target, at).is_some() {
            st.counters.crash_dropped += 1;
            st.record(b'C', at, pkt.source, target, &pkt);
            return Some((at, target, None));
        }
        st.record(b'D', at, pkt.source, target, &pkt);
        Some((at, target, Some(pkt)))
    }

    pub(crate) fn fingerprint(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.hash, st.events)
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.state.lock().counters
    }

    pub(crate) fn record_log(&self, on: bool) {
        let mut st = self.state.lock();
        st.log = on.then(Vec::new);
    }

    pub(crate) fn take_log(&self) -> Vec<u8> {
        self.state.lock().log.take().unwrap_or_default()
    }
}

/// What an actor reports from one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorPoll {
    /// The actor made progress and wants to be polled again this
    /// round.
    Progress,
    /// Nothing to do until a delivery lands on this actor's machine.
    Idle,
    /// Nothing to do until a delivery lands **or** the timeline
    /// reaches the given instant (a retransmission deadline, an
    /// open-loop arrival time).
    IdleUntil(Timestamp),
    /// The actor finished its script and need never be polled again.
    Done,
}

struct ActorEntry<'a> {
    machine: MachineId,
    poll: Box<dyn FnMut() -> ActorPoll + 'a>,
    done: bool,
    /// Daemons (service pumps) are polled like any actor but do not
    /// count toward completion: the run ends when every *workload*
    /// actor is done, however many daemons still listen.
    daemon: bool,
    wake_at: Option<Timestamp>,
}

/// The deterministic executor stalled: live actors remain but no
/// delivery is pending and no timer is armed — an actor is waiting on
/// an event that can never arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStall {
    /// Actors that had not reported [`ActorPoll::Done`].
    pub live_actors: usize,
}

impl std::fmt::Display for SimStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation stalled with {} live actor(s): no pending deliveries, no armed timers",
            self.live_actors
        )
    }
}

impl std::error::Error for SimStall {}

/// The single-threaded deterministic executor: services and clients
/// registered as polled state machines on one seeded schedule.
///
/// Actors are closures returning [`ActorPoll`], registered against the
/// machine whose deliveries should wake them. [`run`](Self::run) polls
/// runnable actors to quiescence, then advances simulated time to the
/// next event — the controller's earliest pending delivery or the
/// earliest actor timer — and wakes exactly the actors that event
/// concerns. Poll order within a round is rotated by a seeded draw, so
/// even "who runs first on a tie" is part of the reproducible
/// schedule.
pub struct SimExecutor<'a> {
    net: Network,
    rng: u64,
    actors: Vec<ActorEntry<'a>>,
    by_machine: BTreeMap<MachineId, Vec<usize>>,
}

impl std::fmt::Debug for SimExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimExecutor")
            .field("actors", &self.actors.len())
            .finish()
    }
}

impl<'a> SimExecutor<'a> {
    /// An executor over a simulation network (see
    /// [`Network::new_sim`](crate::Network::new_sim)).
    ///
    /// # Panics
    /// Panics if `net` is not a simulation network.
    pub fn new(net: &Network) -> SimExecutor<'a> {
        assert!(
            net.is_sim(),
            "SimExecutor requires a network built with Network::new_sim"
        );
        SimExecutor {
            net: net.clone(),
            rng: net.sim_seed() ^ 0x5EED_AC70_1234_5678,
            actors: Vec::new(),
            by_machine: BTreeMap::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Registers an actor woken by deliveries to `machine`. Returns
    /// its index (registration order — the deterministic identity used
    /// in tie rotation).
    pub fn spawn(&mut self, machine: MachineId, poll: impl FnMut() -> ActorPoll + 'a) -> usize {
        self.spawn_entry(machine, Box::new(poll), false)
    }

    /// Registers a **daemon**: polled exactly like a workload actor,
    /// but [`run`](Self::run) does not wait for it to report
    /// [`ActorPoll::Done`] — service pumps serve for as long as the
    /// workload lasts and simply stop being polled when it ends.
    pub fn spawn_daemon(
        &mut self,
        machine: MachineId,
        poll: impl FnMut() -> ActorPoll + 'a,
    ) -> usize {
        self.spawn_entry(machine, Box::new(poll), true)
    }

    fn spawn_entry(
        &mut self,
        machine: MachineId,
        poll: Box<dyn FnMut() -> ActorPoll + 'a>,
        daemon: bool,
    ) -> usize {
        let index = self.actors.len();
        self.actors.push(ActorEntry {
            machine,
            poll,
            done: false,
            daemon,
            wake_at: None,
        });
        self.by_machine.entry(machine).or_default().push(index);
        index
    }

    /// Drives the simulation until every workload actor reports
    /// [`ActorPoll::Done`] (daemons are exempt).
    ///
    /// # Errors
    /// [`SimStall`] if live workload actors remain but nothing is
    /// pending on the timeline — the deterministic analogue of a
    /// deadlock, with the whole schedule replayable from the seed.
    pub fn run(&mut self) -> Result<(), SimStall> {
        let mut runnable: Vec<usize> = (0..self.actors.len()).collect();
        loop {
            while !runnable.is_empty() {
                runnable.sort_unstable();
                runnable.dedup();
                if runnable.len() > 1 {
                    let rot = (splitmix64(&mut self.rng) as usize) % runnable.len();
                    runnable.rotate_left(rot);
                }
                let batch = std::mem::take(&mut runnable);
                for i in batch {
                    if self.actors[i].done {
                        continue;
                    }
                    let now = self.net.now();
                    if let Some(until) = self.net.sim_down_until(self.actors[i].machine, now) {
                        // A crashed machine's actors are not polled:
                        // the service is dead until the window ends.
                        // Its endpoint queue survives, so the restart
                        // serves stale backlog — late replies, exactly
                        // the straggler schedule the recycling
                        // invariants must survive.
                        self.actors[i].wake_at = Some(until);
                        continue;
                    }
                    match (self.actors[i].poll)() {
                        ActorPoll::Progress => {
                            self.actors[i].wake_at = None;
                            runnable.push(i);
                        }
                        ActorPoll::Idle => self.actors[i].wake_at = None,
                        ActorPoll::IdleUntil(t) => self.actors[i].wake_at = Some(t),
                        ActorPoll::Done => self.actors[i].done = true,
                    }
                }
            }
            if self.actors.iter().all(|a| a.done || a.daemon) {
                return Ok(());
            }
            // Quiescent: advance simulated time to the next event.
            let next_delivery = self.net.sim_next_delivery_at();
            let next_timer = self
                .actors
                .iter()
                .filter(|a| !a.done)
                .filter_map(|a| a.wake_at)
                .min();
            let deliver = match (next_delivery, next_timer) {
                (Some(d), Some(t)) => d <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    let stall = SimStall {
                        live_actors: self.actors.iter().filter(|a| !a.done && !a.daemon).count(),
                    };
                    // Postmortem before the error propagates: the
                    // flight recorder holds the events leading up to
                    // the wedge (no-op when obs is disabled).
                    self.net.obs().dump(&format!(
                        "SimStall seed {:#x}: {stall}",
                        self.net.sim_seed()
                    ));
                    return Err(stall);
                }
            };
            if deliver {
                if let SimRelease::Delivered { to, .. } = self.net.sim_release_next() {
                    if let Some(indices) = self.by_machine.get(&to) {
                        runnable.extend(indices.iter().copied());
                    }
                }
            } else if let Some(t) = next_timer {
                self.net.reactor().advance_to(t);
            }
            let now = self.net.now();
            for (i, a) in self.actors.iter_mut().enumerate() {
                if !a.done && a.wake_at.is_some_and(|w| w <= now) {
                    runnable.push(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Header;
    use crate::Port;
    use bytes::Bytes;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::time::Instant;

    fn port(v: u64) -> Port {
        Port::new(v).unwrap()
    }

    #[test]
    fn sim_timeouts_never_sleep_real_time() {
        // The satellite fix: a far-future deadline on a deterministic
        // clock must expire via a direct jump, not a far-jump
        // confirmation wait or a quiescence grace.
        let net = Network::new_sim(7);
        let a = net.attach_open();
        let t0 = Instant::now();
        assert!(a.recv_timeout(Duration::from_secs(30)).is_err());
        assert!(net.now().since_epoch() >= Duration::from_secs(30));
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "a 30 s simulated timeout must cost ~zero real time, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn blocking_recv_is_driven_by_the_parked_thread() {
        // A blocking receive on the sim network must release the
        // controller's pending delivery itself (the deterministic
        // park branch), not deadlock waiting for an executor.
        let net = Network::new_sim(3);
        net.set_latency(Duration::from_millis(4));
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(9));
        a.send(Header::to(port(9)), Bytes::from_static(b"hi"));
        let pkt = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&pkt.payload[..], b"hi");
        assert!(net.now().since_epoch() >= Duration::from_millis(4));
    }

    #[test]
    fn executor_wakes_actor_on_delivery_and_timer() {
        let net = Network::new_sim(11);
        net.set_latency(Duration::from_millis(2));
        let a = net.attach_open();
        let b = net.attach_open();
        b.claim(port(5));
        let got = Rc::new(Cell::new(false));
        let got2 = Rc::clone(&got);
        let deadline = net.now() + Duration::from_millis(50);
        let mut exec = SimExecutor::new(&net);
        let b_id = b.id();
        exec.spawn(b_id, move || {
            if let Some(pkt) = b.poll_arrival() {
                b.reactor().deliver(&pkt);
                assert_eq!(&pkt.payload[..], b"ping");
                got2.set(true);
                return ActorPoll::Done;
            }
            ActorPoll::IdleUntil(deadline)
        });
        let sent = Rc::new(Cell::new(false));
        let sent2 = Rc::clone(&sent);
        let fire_at = net.now() + Duration::from_millis(10);
        exec.spawn(a.id(), move || {
            if sent2.get() {
                return ActorPoll::Done;
            }
            if a.now() >= fire_at {
                a.send(Header::to(port(5)), Bytes::from_static(b"ping"));
                sent2.set(true);
                return ActorPoll::Done;
            }
            ActorPoll::IdleUntil(fire_at)
        });
        exec.run().unwrap();
        assert!(got.get(), "the delivery must wake the receiving actor");
        assert!(net.now() >= fire_at + Duration::from_millis(2));
    }

    #[test]
    fn executor_stall_is_reported_not_hung() {
        let net = Network::new_sim(1);
        let a = net.attach_open();
        let mut exec = SimExecutor::new(&net);
        exec.spawn(a.id(), || ActorPoll::Idle);
        let err = exec.run().unwrap_err();
        assert_eq!(err.live_actors, 1);
    }

    #[test]
    fn from_seed_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::from_seed(42);
        let b = FaultPlan::from_seed(42);
        assert_eq!(a, b);
        assert!(a.loss_per_mille <= 80);
        assert!(a.dup_per_mille <= 60);
        for w in &a.crashes {
            assert!(w.until <= Duration::from_millis(500));
        }
        assert_ne!(a, FaultPlan::from_seed(43), "distinct seeds diverge");
    }
}
