//! The event-driven transport core: a shared timeline, two
//! interchangeable clocks, and a scheduler for time-bounded waits.
//!
//! Every [`Network`](crate::Network) owns one [`Reactor`]. The reactor
//! carries the network's **clock** — the single source of truth for
//! "now" on the simulated timeline — and a scheduler that parks
//! waiting threads until an event arrives or a timeline deadline
//! passes. Two clocks implement the [`Clock`] contract:
//!
//! * [`WallClock`] — the timeline is real time. Waiting until a
//!   deadline blocks the OS thread; simulated latency costs real
//!   wall-clock, exactly the pre-reactor behaviour.
//! * [`VirtualClock`] — the timeline is a counter. Delivering a packet
//!   *jumps* the clock to its `deliver_at` instant instead of
//!   sleeping, so a 2 ms hop costs nothing in wall-clock; when every
//!   thread is parked (the system is quiescent), the reactor advances
//!   time to the earliest pending deadline and wakes its owner. Timing
//!   tests become deterministic in *modeled* time and fast in real
//!   time.
//!
//! # Timestamps
//!
//! [`Timestamp`] is a point on the reactor's timeline (a duration
//! since the clock's epoch), deliberately **not** a
//! [`std::time::Instant`]: virtual timelines have no meaningful
//! mapping to the OS clock. Packets carry their `deliver_at` as a
//! `Timestamp`; all timeout arithmetic above `net` (RPC attempt
//! deadlines, demux ticks, locate TTLs, registry leases) is done in
//! timestamps obtained from the endpoint's clock, which is what lets
//! the whole stack run under either clock unchanged.
//!
//! # Quiescence (virtual clock only)
//!
//! The virtual clock cannot know, from inside one thread, whether
//! another OS thread is still computing. The reactor therefore uses a
//! grace heuristic: a parked thread that observes no reactor events
//! for [`QUIESCENCE_GRACE`] of real time declares the system idle and
//! advances the clock to the earliest pending deadline. A thread that
//! computes for longer than the grace without touching the network can
//! therefore see timers fire "early" in virtual time; every timer user
//! in this workspace (RPC retransmission, failover, leases) already
//! tolerates early expiry, because expiry is always legal under the
//! at-least-once contract. The grace bounds the real-time cost of a
//! virtual timeout: the first expiry in an idle window costs one
//! grace, consecutive expiries are immediate.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A point on a reactor's timeline: the duration since the clock's
/// epoch (network creation). Ordered, copyable, and cheap.
///
/// Not convertible to [`std::time::Instant`]: under a
/// [`VirtualClock`] there is no corresponding OS-clock moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(Duration);

impl Timestamp {
    /// The clock's epoch.
    pub const ZERO: Timestamp = Timestamp(Duration::ZERO);

    /// The duration since the epoch.
    pub fn since_epoch(self) -> Duration {
        self.0
    }

    /// Timeline distance from `earlier` to `self`, zero if `earlier`
    /// is actually later (mirrors
    /// [`Instant::saturating_duration_since`]).
    pub fn saturating_duration_since(self, earlier: Timestamp) -> Duration {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs))
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.0.saturating_sub(rhs.0)
    }
}

/// A source of timeline time, shared by every endpoint of a network.
///
/// Implementations must be cheap to query and safe to share across
/// threads; the two provided clocks are [`WallClock`] and
/// [`VirtualClock`].
pub trait Clock: Send + Sync + fmt::Debug + 'static {
    /// The current point on the timeline.
    fn now(&self) -> Timestamp;

    /// Whether this clock can jump (virtual) instead of waiting
    /// (wall).
    fn is_virtual(&self) -> bool;

    /// Whether this clock belongs to the **deterministic simulation
    /// executor** ([`SimClock`]): a single-threaded timeline with no
    /// grace/patience heuristics and no delivery gates. Every
    /// real-time wait in the reactor is bypassed for such clocks —
    /// progress comes exclusively from releasing the simulation
    /// controller's next pending delivery or jumping straight to the
    /// next timeline deadline.
    fn is_deterministic(&self) -> bool {
        false
    }

    /// Attempts to move the timeline forward to `t` without waiting.
    /// Returns `true` if the clock jumped (virtual clocks; a no-op
    /// when `t` is already past), `false` if the caller must physically
    /// wait (wall clocks).
    fn try_jump_to(&self, t: Timestamp) -> bool;

    /// Maps a timeline point to the real [`Instant`] at which it
    /// occurs, or `None` for clocks with no real-time correspondence.
    fn real_instant(&self, t: Timestamp) -> Option<Instant>;
}

/// The wall clock: the timeline is anchored to a real [`Instant`] and
/// advances with the OS clock. Waiting out simulated latency blocks
/// the thread — the pre-reactor behaviour, and the right choice when
/// measuring real wall-clock throughput.
#[derive(Debug)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.anchor.elapsed())
    }

    fn is_virtual(&self) -> bool {
        false
    }

    fn try_jump_to(&self, _t: Timestamp) -> bool {
        false
    }

    fn real_instant(&self, t: Timestamp) -> Option<Instant> {
        Some(self.anchor + t.0)
    }
}

/// The virtual clock: the timeline is an atomic counter that only
/// moves when something moves it — a delivered packet's `deliver_at`,
/// or the reactor advancing to the next deadline when the system is
/// quiescent. Simulated latency is free in wall-clock terms.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at the epoch.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp(Duration::from_nanos(self.nanos.load(Ordering::Acquire)))
    }

    fn is_virtual(&self) -> bool {
        true
    }

    fn try_jump_to(&self, t: Timestamp) -> bool {
        let target = t.0.as_nanos().min(u64::MAX as u128) as u64;
        let _ = self
            .nanos
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < target).then_some(target)
            });
        true
    }

    fn real_instant(&self, _t: Timestamp) -> Option<Instant> {
        None
    }
}

/// The deterministic simulation clock: an atomic-nanosecond timeline
/// like [`VirtualClock`], but flagged [`Clock::is_deterministic`] so
/// the reactor takes the exact single-threaded paths — no quiescence
/// grace, no far-jump confirmation, no gate patience, no real-time
/// waits of any kind. Two runs over the same seed produce the same
/// timeline, event for event. Construct networks on it with
/// [`Network::new_sim`](crate::Network::new_sim).
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A deterministic simulation clock at the epoch.
    pub fn new() -> SimClock {
        SimClock::default()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp(Duration::from_nanos(self.nanos.load(Ordering::Acquire)))
    }

    fn is_virtual(&self) -> bool {
        true
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn try_jump_to(&self, t: Timestamp) -> bool {
        let target = t.0.as_nanos().min(u64::MAX as u128) as u64;
        let _ = self
            .nanos
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < target).then_some(target)
            });
        true
    }

    fn real_instant(&self, _t: Timestamp) -> Option<Instant> {
        None
    }
}

/// The deterministic executor's hook into the reactor: the network's
/// simulation controller exposes its earliest pending delivery so a
/// thread parked inside [`Reactor::park_until`] can release it (and
/// thereby make progress) instead of waiting out a real-time grace.
/// Registered once by `Network::new_sim`; only consulted under a
/// deterministic clock.
pub(crate) trait SimSource: Send + Sync {
    /// The timeline instant of the earliest pending (not yet released)
    /// delivery, if any.
    fn next_delivery_at(&self) -> Option<Timestamp>;

    /// Releases the earliest pending delivery into its destination
    /// machine's queue, advancing the clock to its instant. Returns
    /// `false` if nothing was pending.
    fn release_next(&self) -> bool;
}

/// How long a parked thread waits without observing any reactor event
/// before declaring the system quiescent and advancing a
/// [`VirtualClock`] to the next pending deadline. See the module docs
/// for the trade-off this heuristic makes.
pub const QUIESCENCE_GRACE: Duration = Duration::from_millis(2);

/// Jumps farther than this ahead of `now` are **far jumps** — almost
/// always a pending retransmission/lease deadline that should only
/// fire if the system is genuinely idle, not merely between the
/// events of a computing thread the reactor cannot see.
const FAR_JUMP: Duration = Duration::from_millis(250);

/// How long (real time) quiescence must have persisted before a far
/// jump is allowed. Bounds the real-time cost of a long virtual
/// timeout; more importantly, a busy handler thread on a loaded host
/// gets this much scheduling slack before its peers' big timeouts can
/// fire under it.
const FAR_JUMP_CONFIRM: Duration = Duration::from_millis(20);

/// After a quiescent jump fired *someone else's* deadline, how long
/// the jumping thread yields so the woken owner can run (and possibly
/// produce events, e.g. a retransmission) before the next jump.
const JUMP_YIELD: Duration = Duration::from_micros(100);

/// How long (real time) a delivery gate actively holds the timeline
/// after registration. Within the window, the clock will not pass the
/// gate — this is what keeps a *runnable but not yet host-scheduled*
/// consumer from being leapfrogged (the ordering fidelity of the
/// virtual clock). Past the window the gate stops blocking: either
/// its consumer is legitimately busy in model terms (a saturated
/// server's queue — arrival happened, service comes later) or it is
/// gone entirely (a halted replica's queue), and in both cases the
/// rest of the system must keep moving. Flows that are actually
/// progressing refresh their protection with every hop's fresh gate.
const GATE_PATIENCE: Duration = Duration::from_millis(10);

/// A claim on the timeline: until released, the clock will not be
/// advanced past the gate's instant by other deliveries (parked
/// timeouts may still pass it; see [`Reactor::park_until`]).
///
/// Every packet enqueued under a virtual clock carries a gate at its
/// `deliver_at`, released when the receiver consumes it via
/// [`Reactor::deliver`] — this is what keeps concurrent flows causally
/// ordered: one flow cannot fast-forward virtual time past another
/// flow's pending delivery just because its own thread got scheduled
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    at: Timestamp,
    id: u64,
}

#[derive(Debug, Default)]
struct ReactorState {
    /// Bumped by [`Reactor::notify`]; parked threads compare it to
    /// detect activity.
    events: u64,
    /// `Some((e, when))` when the system was declared quiescent at
    /// event count `e` (at real time `when`); any new event clears it.
    quiescent_at: Option<(u64, Instant)>,
    /// Pending timeline deadlines of parked threads, with a tie-break
    /// id.
    sleepers: BTreeSet<(Timestamp, u64)>,
    /// Pending delivery gates with their (real) registration time —
    /// a gate only blocks within [`GATE_PATIENCE`] of registration.
    gates: BTreeMap<(Timestamp, u64), Instant>,
    next_id: u64,
}

/// The per-network scheduler: owns the clock, parks waiting threads,
/// and (under a virtual clock) advances time across quiescent gaps.
///
/// Shared by every [`Endpoint`](crate::Endpoint) of a network; higher
/// layers reach it through [`Endpoint::reactor`](crate::Endpoint::reactor)
/// or [`Network::reactor`](crate::Network::reactor).
pub struct Reactor {
    clock: Arc<dyn Clock>,
    state: Mutex<ReactorState>,
    cv: Condvar,
    /// Threads currently inside [`park_until`](Self::park_until) or a
    /// [`deliver`](Self::deliver) wait — lets [`notify`](Self::notify)
    /// skip the lock entirely on the (wall-clock hot path) common case
    /// of nobody waiting.
    waiters: AtomicUsize,
    /// The deterministic executor's delivery source (set once by
    /// `Network::new_sim`, never on wall/virtual networks).
    sim_source: std::sync::OnceLock<Arc<dyn SimSource>>,
    /// The owning network's observability handle, for a flight-
    /// recorder dump ahead of the deterministic-stall panic.
    obs: std::sync::OnceLock<amoeba_obs::Obs>,
}

impl fmt::Debug for Reactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reactor")
            .field("clock", &self.clock)
            .field("now", &self.now())
            .finish()
    }
}

impl Reactor {
    /// A reactor over an explicit clock.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Reactor> {
        Arc::new(Reactor {
            clock,
            state: Mutex::new(ReactorState::default()),
            cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
            sim_source: std::sync::OnceLock::new(),
            obs: std::sync::OnceLock::new(),
        })
    }

    /// A reactor on the wall clock (real time; the default).
    pub fn wall() -> Arc<Reactor> {
        Self::new(Arc::new(WallClock::new()))
    }

    /// A reactor on the virtual clock (time jumps to the next event).
    pub fn virtual_time() -> Arc<Reactor> {
        Self::new(Arc::new(VirtualClock::new()))
    }

    /// The reactor's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The current point on the timeline.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Whether the timeline is virtual.
    pub fn is_virtual(&self) -> bool {
        self.clock.is_virtual()
    }

    /// Whether the timeline belongs to the deterministic simulation
    /// executor (see [`SimClock`]).
    pub fn is_deterministic(&self) -> bool {
        self.clock.is_deterministic()
    }

    /// Whether enqueued packets should carry delivery gates. Gates
    /// keep concurrent OS threads causally ordered under the
    /// cooperative virtual clock; the deterministic executor is
    /// single-threaded and orders deliveries centrally, so gating it
    /// would only add real-time patience waits nobody needs.
    pub fn uses_gates(&self) -> bool {
        self.clock.is_virtual() && !self.clock.is_deterministic()
    }

    /// Registers the deterministic executor's delivery source. First
    /// registration wins; called once per network by `new_sim`.
    pub(crate) fn set_sim_source(&self, source: Arc<dyn SimSource>) {
        let _ = self.sim_source.set(source);
    }

    /// Shares the owning network's observability handle. First
    /// registration wins; called once per network constructor.
    pub(crate) fn set_obs(&self, obs: amoeba_obs::Obs) {
        let _ = self.obs.set(obs);
    }

    fn lock(&self) -> MutexGuard<'_, ReactorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an event (a packet enqueued, a request readied) and
    /// wakes every parked thread to re-poll its sources. Called by the
    /// network on every send; timer-free layers never need it.
    pub fn notify(&self) {
        // Fast path: nobody is parked, so there is nothing to wake and
        // no quiescence verdict to clear (a thread that parks later
        // re-reads its sources under the lock and sees this event's
        // effects). SeqCst pairs with the waiter-count increment that
        // park/deliver perform while holding the state lock: if the
        // load sees 0, the parker has not yet polled, and its poll
        // will observe whatever this notify announces.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut st = self.lock();
        st.events = st.events.wrapping_add(1);
        st.quiescent_at = None;
        drop(st);
        self.cv.notify_all();
    }

    /// Moves the timeline to `t`: jumps a virtual clock (waking parked
    /// threads whose deadlines passed), blocks the thread until the
    /// real instant on a wall clock. Receivers call this with a
    /// packet's `deliver_at` — it is the reactor replacement for
    /// "sleep out the simulated latency".
    pub fn advance_to(&self, t: Timestamp) {
        if self.clock.try_jump_to(t) {
            // Deadlines at or before `t` may have fired; their owners
            // re-check when woken.
            self.cv.notify_all();
            return;
        }
        let deadline = self.clock.real_instant(t).expect("wall clock");
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }

    /// Sleeps `d` of timeline time: real sleep under a wall clock, a
    /// scheduled wakeup under a virtual one (the thread still yields
    /// until either the deadline is reached or the system quiesces).
    pub fn sleep(&self, d: Duration) {
        if !self.is_virtual() {
            std::thread::sleep(d);
            return;
        }
        let deadline = self.now() + d;
        let _: Option<()> = self.park_until(Some(deadline), || None);
    }

    /// Registers a gate at `t`: other deliveries will not advance the
    /// clock past `t` until the gate is released. Only meaningful under
    /// a virtual clock; the network gates every enqueued packet.
    pub fn register_gate(&self, t: Timestamp) -> Gate {
        let mut st = self.lock();
        st.next_id = st.next_id.wrapping_add(1);
        let gate = Gate {
            at: t,
            id: st.next_id,
        };
        st.gates.insert((gate.at, gate.id), Instant::now());
        gate
    }

    /// Releases a gate without advancing the clock (the packet was
    /// discarded, not delivered). Idempotent.
    pub fn release_gate(&self, gate: Gate) {
        let mut st = self.lock();
        if st.gates.remove(&(gate.at, gate.id)).is_some() {
            drop(st);
            // Deliveries waiting for their turn re-evaluate.
            self.cv.notify_all();
        }
    }

    /// Consumes a packet's delivery: waits until no *earlier* gate is
    /// pending (its owner has not yet consumed its own delivery), then
    /// advances the clock to the packet's `deliver_at` and releases its
    /// gate. This is the ordered-delivery heart of the virtual clock —
    /// without the wait, whichever thread the OS schedules first would
    /// drag the timeline forward and distort every other flow's
    /// timing.
    ///
    /// Liveness valve: an earlier gate only blocks this delivery
    /// within the gate-patience window after its registration (a few
    /// real milliseconds) — once that lapses (its owner is wedged
    /// behind us, legitimately busy, or starved by the host scheduler)
    /// the delivery proceeds, trading timing fidelity for progress.
    pub fn deliver(&self, pkt: &crate::Packet) {
        let Some(gate) = pkt.gate else {
            // Wall clock (or a tap copy): advancing is a real wait.
            self.advance_to(pkt.deliver_at());
            return;
        };
        let mut state = self.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        loop {
            // Our own gate sits at `gate.at`, so "strictly earlier"
            // can never match it. Expired earlier gates (their
            // consumers are busy or gone) do not block.
            let blocked = state
                .gates
                .iter()
                .take_while(|&(&(t, _), _)| t < gate.at)
                .any(|(_, born)| born.elapsed() < GATE_PATIENCE);
            if !blocked {
                break;
            }
            let (s, _) = self
                .cv
                .wait_timeout(state, JUMP_YIELD)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
        state.gates.remove(&(gate.at, gate.id));
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(state);
        if self.clock.try_jump_to(gate.at) {
            self.cv.notify_all();
        }
    }

    /// Releases a packet's gate without delivering it (e.g. draining a
    /// queue on teardown). No-op for ungated packets.
    pub fn discard(&self, pkt: &crate::Packet) {
        if let Some(gate) = pkt.gate {
            self.release_gate(gate);
        }
    }

    /// Re-gates a packet that is being handed off to another in-process
    /// queue (e.g. a demux routing a reply into a peer's mailbox): the
    /// timeline again may not pass the packet's `deliver_at` until the
    /// final consumer [`deliver`](Self::deliver)s it. No-op under a
    /// wall clock.
    pub fn regate(&self, pkt: &mut crate::Packet) {
        if self.uses_gates() {
            pkt.gate = Some(self.register_gate(pkt.deliver_at()));
        }
    }

    /// Parks the calling thread until `poll` yields a value or the
    /// timeline reaches `deadline` (`None` = wait for events forever).
    ///
    /// `poll` is invoked under the reactor's internal lock on every
    /// wakeup, so it must be quick and must not call back into the
    /// reactor (channel `try_recv`s are the intended shape). Senders
    /// that feed a polled source must call [`notify`](Self::notify)
    /// after enqueueing — the network does this for every packet —
    /// which is what makes the check-then-park sequence race-free.
    ///
    /// Returns `Some(value)` when `poll` produced one, `None` on
    /// deadline expiry. Under a virtual clock a parked thread may be
    /// the one that advances the clock (see the module docs on
    /// quiescence).
    pub fn park_until<T>(
        &self,
        deadline: Option<Timestamp>,
        mut poll: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        let mut state = self.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let id = {
            state.next_id = state.next_id.wrapping_add(1);
            state.next_id
        };
        let registered = deadline.inspect(|&d| {
            state.sleepers.insert((d, id));
        });
        let result = loop {
            if let Some(v) = poll() {
                break Some(v);
            }
            let now = self.clock.now();
            if deadline.is_some_and(|d| now >= d) {
                break None;
            }
            if self.clock.is_deterministic() {
                // The deterministic executor: single-threaded, so the
                // quiescence grace, far-jump confirmation and gate
                // patience below would be pure real-time sleeps that
                // nothing can interrupt. Progress instead comes from
                // releasing the simulation controller's earliest
                // pending delivery, or jumping straight to the next
                // registered deadline — exact virtual time, zero
                // heuristics.
                let next_delivery = self.sim_source.get().and_then(|s| s.next_delivery_at());
                let next_sleeper = state.sleepers.iter().map(|&(t, _)| t).find(|&t| t > now);
                let release = match (next_delivery, next_sleeper) {
                    (Some(d), Some(s)) => d <= s,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => {
                        if let Some(obs) = self.obs.get() {
                            obs.dump("deterministic reactor stalled");
                        }
                        panic!(
                            "deterministic reactor stalled: parked with no pending \
                             deliveries or deadlines (an actor blocked on an event \
                             that can never arrive)"
                        )
                    }
                };
                if release {
                    let source = Arc::clone(self.sim_source.get().expect("checked above"));
                    // Releasing pushes into a machine queue and
                    // notifies this reactor; the state lock must not
                    // be held across it.
                    drop(state);
                    let _ = source.release_next();
                    state = self.lock();
                } else if let Some(t) = next_sleeper {
                    self.clock.try_jump_to(t);
                    self.cv.notify_all();
                }
                continue;
            }
            if self.clock.is_virtual() {
                let seen = state.events;
                if let Some((q, established)) = state.quiescent_at.filter(|&(q, _)| q == seen) {
                    let _ = q;
                    // An *active* overdue delivery gate means a
                    // runnable consumer simply has not been scheduled
                    // yet: jumping now would advance the timeline
                    // under its feet (host scheduling lag would
                    // masquerade as modeled time). Yield until it runs
                    // or its gate's patience lapses.
                    let overdue_active = state
                        .gates
                        .iter()
                        .take_while(|&(&(t, _), _)| t <= now)
                        .any(|(_, born)| born.elapsed() < GATE_PATIENCE);
                    if overdue_active {
                        let (s, _) = self
                            .cv
                            .wait_timeout(state, JUMP_YIELD)
                            .unwrap_or_else(PoisonError::into_inner);
                        state = s;
                        continue;
                    }
                    // The system is idle: advance to the next pending
                    // deadline — a parked thread's, or an unconsumed
                    // delivery's gate (jumping past a future delivery
                    // would distort its flow's timing). Entries at or
                    // before `now` belong to already-woken owners that
                    // have not yet re-acquired the lock to deregister.
                    let next_sleeper = state.sleepers.iter().map(|&(t, _)| t).find(|&t| t > now);
                    let next_gate = state.gates.keys().map(|&(t, _)| t).find(|&t| t > now);
                    let next = match (next_sleeper, next_gate) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    match next {
                        Some(t) => {
                            if t.saturating_duration_since(now) > FAR_JUMP
                                && established.elapsed() < FAR_JUMP_CONFIRM
                            {
                                // A distant deadline (retransmission,
                                // lease): only fire it once the calm
                                // has persisted long enough that no
                                // unseen thread is still computing.
                                let (s, _) = self
                                    .cv
                                    .wait_timeout(state, JUMP_YIELD)
                                    .unwrap_or_else(PoisonError::into_inner);
                                state = s;
                                continue;
                            }
                            if std::env::var_os("AMOEBA_REACTOR_TRACE").is_some()
                                && t.saturating_duration_since(now) > FAR_JUMP
                            {
                                eprintln!(
                                    "FAR JUMP {:?} -> {:?} (sleepers={}, gates={}, own={:?})",
                                    now.since_epoch(),
                                    t.since_epoch(),
                                    state.sleepers.len(),
                                    state.gates.len(),
                                    deadline.map(|d| d.since_epoch()),
                                );
                            }
                            self.clock.try_jump_to(t);
                            self.cv.notify_all();
                            // Every jump consumes the quiescence
                            // verdict: the next jump requires a fresh
                            // calm period, so woken owners (and any
                            // thread the reactor cannot see computing)
                            // get real time to run before the timeline
                            // moves again. Without this, a re-arming
                            // idle tick loop climbs the clock at CPU
                            // speed straight through in-flight work's
                            // timeouts.
                            state.quiescent_at = None;
                        }
                        None => {
                            // No pending deadlines anywhere: only an
                            // event can unblock anyone.
                            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                } else {
                    let (s, timeout) = self
                        .cv
                        .wait_timeout(state, QUIESCENCE_GRACE)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = s;
                    if timeout.timed_out() && state.events == seen {
                        state.quiescent_at = Some((seen, Instant::now()));
                    }
                }
            } else {
                match deadline.and_then(|d| self.clock.real_instant(d)) {
                    Some(real) => {
                        let now_r = Instant::now();
                        if real <= now_r {
                            continue; // the loop head reports expiry
                        }
                        let (s, _) = self
                            .cv
                            .wait_timeout(state, real - now_r)
                            .unwrap_or_else(PoisonError::into_inner);
                        state = s;
                    }
                    None => {
                        state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        if let Some(d) = registered {
            state.sleepers.remove(&(d, id));
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_tracks_real_time() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(5));
        assert!(c.now().saturating_duration_since(a) >= Duration::from_millis(5));
        assert!(!c.is_virtual());
        assert!(!c.try_jump_to(a + Duration::from_secs(100)));
    }

    #[test]
    fn virtual_clock_only_moves_when_jumped() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(c.now(), Timestamp::ZERO, "real time must not leak in");
        assert!(c.try_jump_to(Timestamp::ZERO + Duration::from_millis(40)));
        assert_eq!(c.now().since_epoch(), Duration::from_millis(40));
        // Jumps never go backwards.
        c.try_jump_to(Timestamp::ZERO + Duration::from_millis(10));
        assert_eq!(c.now().since_epoch(), Duration::from_millis(40));
    }

    #[test]
    fn virtual_sleep_is_fast_in_real_time() {
        let r = Reactor::virtual_time();
        let t0 = Instant::now();
        r.sleep(Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a 5 s virtual sleep must not cost 5 real seconds"
        );
        assert!(r.now().since_epoch() >= Duration::from_secs(5));
    }

    #[test]
    fn wall_park_wakes_on_notify() {
        let r = Reactor::wall();
        let r2 = Arc::clone(&r);
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            r2.park_until(None, || (f2.load(Ordering::Acquire) == 1).then_some(()))
        });
        std::thread::sleep(Duration::from_millis(10));
        flag.store(1, Ordering::Release);
        r.notify();
        assert_eq!(t.join().unwrap(), Some(()));
    }

    #[test]
    fn wall_park_times_out() {
        let r = Reactor::wall();
        let deadline = r.now() + Duration::from_millis(10);
        let got: Option<()> = r.park_until(Some(deadline), || None);
        assert!(got.is_none());
        assert!(r.now() >= deadline);
    }

    #[test]
    fn repeated_virtual_sleeps_cost_a_grace_each_not_their_face_value() {
        // 40 consecutive 100 ms virtual sleeps (4 s of timeline) must
        // complete in well under their face value: each costs roughly
        // one quiescence grace of real time, not 100 ms.
        let r = Reactor::virtual_time();
        let t0 = Instant::now();
        for _ in 0..40 {
            let d = r.now() + Duration::from_millis(100);
            let got: Option<()> = r.park_until(Some(d), || None);
            assert!(got.is_none());
        }
        assert!(r.now().since_epoch() >= Duration::from_secs(4));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "virtual sleeps must not cost their face value: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn earliest_deadline_fires_first_under_virtual_time() {
        let r = Reactor::virtual_time();
        let r_far = Arc::clone(&r);
        let far = std::thread::spawn(move || {
            let d = r_far.now() + Duration::from_millis(500);
            let _: Option<()> = r_far.park_until(Some(d), || None);
            r_far.now()
        });
        let near_deadline = r.now() + Duration::from_millis(5);
        let _: Option<()> = r.park_until(Some(near_deadline), || None);
        let near_woke_at = r.now();
        let far_woke_at = far.join().unwrap();
        assert!(near_woke_at >= near_deadline);
        assert!(far_woke_at >= near_woke_at, "far deadline fires later");
    }
}
