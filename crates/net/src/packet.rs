//! Packets and the standard Amoeba header.

use crate::addr::{MachineId, Port};
use crate::reactor::{Gate, Timestamp};
use bytes::Bytes;

/// The three special header fields the F-box operates on (§2.2):
/// destination, reply and signature ports.
///
/// "Each message presented to the F-box for transmission contains three
/// special header fields: destination (P), reply (G′), and signature
/// (S). The F-box applies the one-way function to the second and third
/// of these."
///
/// Higher layers (RPC, capabilities) put everything else — the operated-
/// on capability, the operation code, parameters — in the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    /// Destination put-port `P`. Passed through the F-box untransformed.
    pub dest: Port,
    /// Reply port. The *sender* fills in its secret get-port `G′`; the
    /// F-box transmits `F(G′)`, the put-port the receiver should answer.
    pub reply: Port,
    /// Signature. The sender fills in its secret signature `S`; the
    /// F-box transmits `F(S)`, which receivers compare with the sender's
    /// published `F(S)`.
    pub signature: Port,
    /// Optional machine hint: when set, the network delivers the frame
    /// only to this machine (if its interface accepts `dest`). This is
    /// the §2.2 software simulation of associative addressing — a
    /// kernel's `(port, machine-number)` cache turns a logical port
    /// into a machine-addressed frame — and what lets several replicas
    /// serve one put-port without every replica hearing every request.
    /// `None` keeps the pure associative behaviour: every claimer of
    /// `dest` receives the frame. Broadcast destinations ignore it.
    pub target: Option<MachineId>,
}

impl Header {
    /// A header addressed to `dest` with null reply and signature.
    pub fn to(dest: Port) -> Header {
        Header {
            dest,
            reply: Port::NULL,
            signature: Port::NULL,
            target: None,
        }
    }

    /// Sets the reply field (builder style).
    pub fn with_reply(mut self, reply: Port) -> Header {
        self.reply = reply;
        self
    }

    /// Sets the signature field (builder style).
    pub fn with_signature(mut self, signature: Port) -> Header {
        self.signature = signature;
        self
    }

    /// Restricts delivery to one machine (builder style) — the cached
    /// `(port, machine)` pair of a LOCATE answer turned into routing.
    pub fn targeted(mut self, machine: MachineId) -> Header {
        self.target = Some(machine);
        self
    }
}

/// A frame on the simulated wire.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source machine, stamped by the network — unforgeable.
    pub source: MachineId,
    /// The port header *as transmitted*, i.e. after the sender's
    /// interface applied its egress transformation.
    pub header: Header,
    /// Opaque payload (cheaply clonable for broadcast fan-out).
    pub payload: Bytes,
    /// Simulated arrival point on the network's timeline; receivers
    /// advance the clock to it before acting on the packet (a real
    /// wait under [`WallClock`](crate::WallClock), a jump under
    /// [`VirtualClock`](crate::VirtualClock)).
    pub(crate) deliver_at: Timestamp,
    /// The delivery gate holding the virtual timeline at `deliver_at`
    /// until this packet is consumed ([`Reactor::deliver`]); `None`
    /// under a wall clock and on tap copies.
    ///
    /// [`Reactor::deliver`]: crate::Reactor::deliver
    pub(crate) gate: Option<Gate>,
}

impl Packet {
    /// Fixed per-frame overhead charged by the wire-byte accounting:
    /// three 8-byte port fields (destination, reply, signature), the
    /// 4-byte source machine stamp, and the 4-byte machine-hint field
    /// (null when untargeted). Every frame pays this regardless of
    /// payload size — it is exactly what request batching amortises.
    pub const WIRE_HEADER_BYTES: u64 = 3 * 8 + 4 + 4;

    /// The simulated arrival time of this packet on the network's
    /// timeline.
    pub fn deliver_at(&self) -> Timestamp {
        self.deliver_at
    }

    /// Bytes this frame occupies on the wire: header overhead plus
    /// payload.
    pub fn wire_len(&self) -> u64 {
        Self::WIRE_HEADER_BYTES + self.payload.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_builder() {
        let p = Port::new(5).unwrap();
        let r = Port::new(6).unwrap();
        let s = Port::new(7).unwrap();
        let h = Header::to(p).with_reply(r).with_signature(s);
        assert_eq!(h.dest, p);
        assert_eq!(h.reply, r);
        assert_eq!(h.signature, s);
    }

    #[test]
    fn header_to_defaults_null() {
        let h = Header::to(Port::new(5).unwrap());
        assert!(h.reply.is_null());
        assert!(h.signature.is_null());
    }
}
