//! A simulated broadcast network for the Amoeba reproduction.
//!
//! The paper's protocols rest on three physical-layer properties that
//! this crate enforces exactly:
//!
//! 1. **Broadcast medium with associative addressing** (§2.2): every
//!    packet is visible to every network interface; an interface
//!    delivers a packet to its machine only if the machine has *claimed*
//!    the packet's destination port ("protected associative
//!    addressing"). Claims and the egress transformation are mediated by
//!    a [`NetworkInterface`] so that the F-box (see `amoeba-fbox`)
//!    **cannot be bypassed** — user code on a machine never touches raw
//!    frames.
//! 2. **Unforgeable source addresses** (§2.4): "in nearly all networks
//!    an intruder can forge nearly all parts of a message being sent
//!    except the source address, which is supplied by the network
//!    interface hardware". Every send through the network stamps the sender's
//!    [`MachineId`] itself; no API lets a caller choose the source.
//! 3. **An intruder toolkit**: promiscuous [taps](Network::tap) (wire
//!    sniffing), arbitrary injection (with the intruder's own source
//!    address) and replay — everything the paper's adversary can do, so
//!    the security claims can be validated by real attacks in tests.
//!
//! The simulator also offers per-link latency and probabilistic drop for
//! failure injection, and atomic [traffic counters](NetworkStats) used
//! by the locate/broadcast benchmarks.
//!
//! # Example
//!
//! ```
//! use amoeba_net::{Network, Header, Port};
//! use bytes::Bytes;
//!
//! let net = Network::new();
//! let server = net.attach_open();
//! let client = net.attach_open();
//!
//! let port = Port::new(0x1234).unwrap();
//! server.claim(port);
//! client.send(Header::to(port), Bytes::from_static(b"hi"));
//! let pkt = server.recv().unwrap();
//! assert_eq!(&pkt.payload[..], b"hi");
//! assert_eq!(pkt.source, client.id());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod network;
mod nic;
mod packet;
mod pool;
mod reactor;
mod sim;
mod stats;
mod sync;

pub use addr::{MachineId, Port};
pub use network::{Endpoint, Network, RecvError, SimRelease};
pub use nic::{NetworkInterface, OpenNic};
pub use packet::{Header, Packet};
pub use pool::BufPool;
pub use reactor::{
    Clock, Gate, Reactor, SimClock, Timestamp, VirtualClock, WallClock, QUIESCENCE_GRACE,
};
pub use sim::{
    ActorPoll, CrashWindow, FaultCounters, FaultPlan, PartitionWindow, SimExecutor, SimStall,
    SEED_PLAN_TARGETS,
};
pub use stats::{HotPathSnapshot, NetworkStats, StatsSnapshot};
pub use sync::{hot_lock_acquisitions, HotMutex, HotMutexGuard, LockMeter};

// Observability is threaded through every layer above `net`, so the
// transport crate re-exports the whole handle surface.
pub use amoeba_obs::{Counter, EventKind, FlightEvent, Histogram, Metrics, MetricsSnapshot, Obs};
