//! The Amoeba **flat file server** (§3.3).
//!
//! "The flat file server provides its clients with files consisting of a
//! linear sequence of bytes, numbered from 0 to the file size − 1. The
//! basic operations here are CREATE FILE, DESTROY FILE, WRITE FILE, and
//! READ FILE. ... The server does not have any concept of an 'open'
//! file. One can operate on any file for which a valid capability can be
//! presented."
//!
//! Optionally the server enforces **bank-backed quotas** (§3.6): it is
//! configured with its own bank account and a price per kilobyte; a
//! CREATE may carry an account capability and a pre-payment, which the
//! file server transfers to itself via a real bank-server RPC. The paid
//! amount fixes the file's byte quota — "quotas can be implemented by
//! limiting how many dollars each client has."
//!
//! # Example
//!
//! ```
//! use amoeba_cap::{schemes::SchemeKind, Rights};
//! use amoeba_flatfs::{FlatFsClient, FlatFsServer};
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
//! let fs = FlatFsClient::open(&net, runner.put_port());
//!
//! let cap = fs.create().unwrap();
//! fs.write(&cap, 0, b"hello world").unwrap();
//! assert_eq!(&fs.read(&cap, 6, 5).unwrap(), b"world");
//! assert_eq!(fs.size(&cap).unwrap(), 11);
//!
//! // Delegate read-only access by diminishing locally (scheme 3).
//! let scheme = amoeba_cap::schemes::CommutativeScheme::standard();
//! use amoeba_cap::schemes::ProtectionScheme;
//! let ro = scheme.diminish(&cap, Rights::ALL.without(Rights::READ)).unwrap();
//! assert!(fs.read(&ro, 0, 5).is_ok());
//! assert!(fs.write(&ro, 0, b"nope").is_err());
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block_backed;

pub use block_backed::BlockFlatFsServer;

use amoeba_bank::{BankClient, CurrencyId};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{
    wire, ClientError, MigrateData, ObjectTable, RequestCtx, Service, ServiceClient, ShardMigrator,
};
use bytes::Bytes;

/// Flat-file-server operation codes.
pub mod ops {
    /// CREATE FILE; anonymous. Params: none, or (`cap account`,
    /// `u64 prepay`) under quota enforcement. Reply: capability.
    pub const CREATE: u32 = 1;
    /// DESTROY FILE (requires DELETE).
    pub const DESTROY: u32 = 2;
    /// READ FILE. Params: `u64 offset`, `u32 len`. Reply: bytes
    /// (short reads at end-of-file).
    pub const READ: u32 = 3;
    /// WRITE FILE at `u64 offset` (extends the file). Params: offset,
    /// bytes. Reply: `u64` new size.
    pub const WRITE: u32 = 4;
    /// File size. Reply: `u64`.
    pub const SIZE: u32 = 5;
}

/// A file plus its (optional) purchased quota and refund ticket.
#[derive(Debug, Default)]
struct File {
    data: Vec<u8>,
    quota_bytes: Option<u64>,
    /// For metered files: (payer's account, prepay) so DESTROY can
    /// refund the unused quota — §3.6: "in some cases (e.g., disk
    /// blocks...) returning the resource might result in the client
    /// getting his money" back.
    paid: Option<(Capability, u64)>,
}

impl MigrateData for File {
    fn encode(&self) -> Vec<u8> {
        let mut w = wire::Writer::new().bytes(&self.data);
        w = match self.quota_bytes {
            Some(q) => w.u32(1).u64(q),
            None => w.u32(0),
        };
        w = match &self.paid {
            Some((account, prepay)) => w.u32(1).cap(account).u64(*prepay),
            None => w.u32(0),
        };
        w.finish().to_vec()
    }

    fn decode(bytes: &[u8]) -> Option<File> {
        let mut r = wire::Reader::new(bytes);
        let data = r.bytes()?.to_vec();
        let quota_bytes = match r.u32()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return None,
        };
        let paid = match r.u32()? {
            0 => None,
            1 => Some((r.cap()?, r.u64()?)),
            _ => return None,
        };
        Some(File {
            data,
            quota_bytes,
            paid,
        })
    }
}

/// Pricing for bank-backed quotas.
#[derive(Debug)]
pub struct QuotaPolicy {
    /// The file server's *own* bank client (the server is itself a bank
    /// customer).
    pub bank: BankClient,
    /// Where payments are deposited.
    pub server_account: Capability,
    /// The charged currency.
    pub currency: CurrencyId,
    /// Price per 1024 bytes of file quota ("x dollars per kiloblock").
    pub price_per_kib: u64,
}

/// The flat file server.
#[derive(Debug)]
pub struct FlatFsServer {
    table: ObjectTable<File>,
    quota: Option<QuotaPolicy>,
}

impl FlatFsServer {
    /// An unmetered server: files grow without limit.
    pub fn new(scheme: SchemeKind) -> FlatFsServer {
        FlatFsServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            quota: None,
        }
    }

    /// A metered server: CREATE must pre-pay for its quota through the
    /// bank.
    pub fn with_quota(scheme: SchemeKind, quota: QuotaPolicy) -> FlatFsServer {
        FlatFsServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            quota: Some(quota),
        }
    }

    /// Derives per-object secrets from `seed` instead of OS entropy.
    /// Simulation-only (see [`ObjectTable::reseed_secrets`]): the
    /// deterministic executor needs byte-identical minting across
    /// replays of one scenario seed.
    pub fn reseed_secrets(&self, seed: u64) {
        self.table.reseed_secrets(seed);
    }

    fn create(&self, req: &Request) -> Reply {
        let mut paid = None;
        let quota_bytes = match &self.quota {
            None => None,
            Some(policy) => {
                // Metered: the request must carry (account cap, prepay).
                let mut r = wire::Reader::new(&req.params);
                let (Some(account), Some(prepay)) = (r.cap(), r.u64()) else {
                    return Reply::status(Status::BadRequest);
                };
                // Collect the payment with a real bank transaction. The
                // client's account capability needs WRITE; ours is the
                // deposit side.
                match policy.bank.transfer(
                    &account,
                    &policy.server_account,
                    policy.currency,
                    prepay,
                ) {
                    Ok(()) => {}
                    Err(ClientError::Status(s)) => return Reply::status(s),
                    Err(_) => return Reply::status(Status::BadRequest),
                }
                paid = Some((account, prepay));
                Some(prepay.saturating_mul(1024) / policy.price_per_kib.max(1))
            }
        };
        match self.table.try_create(File {
            data: Vec::new(),
            quota_bytes,
            paid,
        }) {
            Ok((_, cap)) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
            Err(e) => {
                // A drained replica (every owned shard migrated away)
                // cannot mint; hand the payment back before refusing so
                // the client can retry against the shard map's owner.
                if let (Some(policy), Some((account, prepay))) = (&self.quota, paid) {
                    let _ = policy.bank.transfer(
                        &policy.server_account,
                        &account,
                        policy.currency,
                        prepay,
                    );
                }
                Reply::status(e.into())
            }
        }
    }

    fn read(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(len)) = (r.u64(), r.u32()) else {
            return Reply::status(Status::BadRequest);
        };
        match self.table.with_object(&req.cap, Rights::READ, |f| {
            let start = (offset as usize).min(f.data.len());
            let end = start.saturating_add(len as usize).min(f.data.len());
            Bytes::copy_from_slice(&f.data[start..end])
        }) {
            Ok(data) => Reply::ok(data),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn write(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(data)) = (r.u64(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |f| {
            let end = (offset as usize).checked_add(data.len())?;
            if let Some(quota) = f.quota_bytes {
                if end as u64 > quota {
                    return None;
                }
            }
            if end > f.data.len() {
                f.data.resize(end, 0);
            }
            f.data[offset as usize..end].copy_from_slice(data);
            Some(f.data.len() as u64)
        });
        match result {
            Ok(Some(size)) => Reply::ok(wire::Writer::new().u64(size).finish()),
            Ok(None) => Reply::status(Status::NoSpace),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn size(&self, req: &Request) -> Reply {
        match self
            .table
            .with_object(&req.cap, Rights::READ, |f| f.data.len() as u64)
        {
            Ok(s) => Reply::ok(wire::Writer::new().u64(s).finish()),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn destroy(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(file) => {
                // §3.6 refund: returning disk space returns the money
                // for the *unused* part of the quota.
                if let (Some(policy), Some((account, prepay))) = (&self.quota, file.paid) {
                    let used_kib = (file.data.len() as u64).div_ceil(1024);
                    let spent = used_kib.saturating_mul(policy.price_per_kib);
                    let refund = prepay.saturating_sub(spent);
                    if refund > 0 {
                        // The server pays out of its own account; a
                        // failed refund (e.g. the payer closed the
                        // account) forfeits the money rather than the
                        // deletion.
                        let _ = policy.bank.transfer(
                            &policy.server_account,
                            &account,
                            policy.currency,
                            refund,
                        );
                    }
                }
                Reply::ok(Bytes::new())
            }
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for FlatFsServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn bind_shard_range(&mut self, owner: usize, replicas: usize) {
        // As replica `owner` of a sharded placement group, only mint
        // file numbers in the owned shard range so every capability's
        // object number names the replica that stores the file.
        self.table.set_owned_shards(owner, replicas);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE => self.create(req),
            ops::DESTROY => self.destroy(req),
            ops::READ => self.read(req),
            ops::WRITE => self.write(req),
            ops::SIZE => self.size(req),
            _ => Reply::status(Status::BadCommand),
        }
    }

    fn migrator(&self) -> Option<&dyn ShardMigrator> {
        Some(&self.table)
    }
}

/// A typed client for the flat file server.
#[derive(Debug)]
pub struct FlatFsClient {
    svc: ServiceClient,
    port: Port,
}

impl FlatFsClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> FlatFsClient {
        FlatFsClient {
            svc: ServiceClient::open(net),
            port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> FlatFsClient {
        FlatFsClient { svc, port }
    }

    /// The server's put-port.
    pub fn port(&self) -> Port {
        self.port
    }

    /// CREATE FILE on an unmetered server.
    ///
    /// # Errors
    /// `BadRequest` against a metered server (use
    /// [`create_paid`](Self::create_paid)); transport errors.
    pub fn create(&self) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::CREATE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// CREATE FILE on a metered server, pre-paying `prepay` from
    /// `account` (the server converts the payment into a byte quota).
    ///
    /// # Errors
    /// `InsufficientFunds` if the account cannot cover the payment.
    pub fn create_paid(
        &self,
        account: &Capability,
        prepay: u64,
    ) -> Result<Capability, ClientError> {
        let body = self.svc.call_anonymous(
            self.port,
            ops::CREATE,
            wire::Writer::new().cap(account).u64(prepay).finish(),
        )?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// READ FILE: up to `len` bytes at `offset` (short read at EOF).
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn read(&self, cap: &Capability, offset: u64, len: u32) -> Result<Vec<u8>, ClientError> {
        let body = self.svc.call(
            cap,
            ops::READ,
            wire::Writer::new().u64(offset).u32(len).finish(),
        )?;
        Ok(body.to_vec())
    }

    /// WRITE FILE at `offset`, extending as needed. Returns the new
    /// size.
    ///
    /// # Errors
    /// `NoSpace` past a purchased quota; rights/validation errors.
    pub fn write(&self, cap: &Capability, offset: u64, data: &[u8]) -> Result<u64, ClientError> {
        let body = self.svc.call(
            cap,
            ops::WRITE,
            wire::Writer::new().u64(offset).bytes(data).finish(),
        )?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// The file's size in bytes.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn size(&self, cap: &Capability) -> Result<u64, ClientError> {
        let body = self.svc.call(cap, ops::SIZE, Bytes::new())?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// DESTROY FILE (requires DELETE).
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn destroy(&self, cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(cap, ops::DESTROY, Bytes::new())?;
        Ok(())
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_bank::{BankServer, Currency};
    use amoeba_server::ServiceRunner;

    fn setup() -> (Network, ServiceRunner, FlatFsClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
        let client = FlatFsClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn create_write_read_cycle() {
        let (_n, runner, fs) = setup();
        let cap = fs.create().unwrap();
        assert_eq!(fs.size(&cap).unwrap(), 0);
        assert_eq!(fs.write(&cap, 0, b"linear sequence of bytes").unwrap(), 24);
        assert_eq!(&fs.read(&cap, 7, 8).unwrap(), b"sequence");
        runner.stop();
    }

    #[test]
    fn write_past_end_zero_fills() {
        let (_n, runner, fs) = setup();
        let cap = fs.create().unwrap();
        fs.write(&cap, 10, b"tail").unwrap();
        assert_eq!(fs.size(&cap).unwrap(), 14);
        assert_eq!(fs.read(&cap, 0, 10).unwrap(), vec![0u8; 10]);
        runner.stop();
    }

    #[test]
    fn read_past_eof_is_short() {
        let (_n, runner, fs) = setup();
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, b"abc").unwrap();
        assert_eq!(&fs.read(&cap, 1, 100).unwrap(), b"bc");
        assert!(fs.read(&cap, 50, 10).unwrap().is_empty());
        runner.stop();
    }

    #[test]
    fn no_open_state_interleaved_clients() {
        // Two clients hammer the same file with no open/close anywhere.
        let (net, runner, fs1) = setup();
        let cap = fs1.create().unwrap();
        let fs2 = FlatFsClient::open(&net, fs1.port());
        fs1.write(&cap, 0, b"AAAA").unwrap();
        fs2.write(&cap, 2, b"BB").unwrap();
        assert_eq!(&fs1.read(&cap, 0, 4).unwrap(), b"AABB");
        runner.stop();
    }

    #[test]
    fn destroy_then_dead() {
        let (_n, runner, fs) = setup();
        let cap = fs.create().unwrap();
        fs.destroy(&cap).unwrap();
        assert!(fs.size(&cap).is_err());
        runner.stop();
    }

    #[test]
    fn delegation_read_only_via_server_restrict() {
        let (_n, runner, fs) = setup();
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, b"secret").unwrap();
        let ro = fs.service().restrict(&cap, Rights::READ).unwrap();
        assert_eq!(&fs.read(&ro, 0, 6).unwrap(), b"secret");
        assert_eq!(
            fs.write(&ro, 0, b"tamper").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        assert_eq!(
            fs.destroy(&ro).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn destroy_refunds_unused_quota() {
        let net = Network::new();
        let (bank_server, treasury_rx) = BankServer::new(
            vec![Currency::convertible("dollar", 1)],
            SchemeKind::Commutative,
        );
        let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
        let bank_port = bank_runner.put_port();
        let treasury = treasury_rx.recv().unwrap();
        let bank = BankClient::open(&net, bank_port);

        let server_account = bank.open_account().unwrap();
        // The DESTROY handler needs WRITE on the server account to pay
        // refunds; keep its full capability in the policy.
        let fs_server = FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_port),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        );
        let fs_runner = ServiceRunner::spawn_open(&net, fs_server);
        let fs = FlatFsClient::open(&net, fs_runner.put_port());

        let wallet = bank.open_account().unwrap();
        bank.mint(&treasury, &wallet, CurrencyId(0), 10).unwrap();

        // Pay 10 dollars (10 KiB quota), use 2 KiB + 1 byte = 3 KiB
        // priced, destroy: 7 dollars come back.
        let cap = fs.create_paid(&wallet, 10).unwrap();
        assert_eq!(bank.balance(&wallet, CurrencyId(0)).unwrap(), 0);
        fs.write(&cap, 0, &vec![1u8; 2049]).unwrap();
        fs.destroy(&cap).unwrap();
        assert_eq!(bank.balance(&wallet, CurrencyId(0)).unwrap(), 7);

        fs_runner.stop();
        bank_runner.stop();
    }

    #[test]
    fn quota_enforced_through_real_bank() {
        let net = Network::new();
        // Start the bank.
        let (bank_server, treasury_rx) = BankServer::new(
            vec![Currency::convertible("dollar", 1)],
            SchemeKind::Commutative,
        );
        let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
        let bank_port = bank_runner.put_port();
        let treasury = treasury_rx.recv().unwrap();
        let bank = BankClient::open(&net, bank_port);

        // The file server opens its own account.
        let server_account = bank.open_account().unwrap();
        let fs_server = FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_port),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 2, // 2 dollars per KiB
            },
        );
        let fs_runner = ServiceRunner::spawn_open(&net, fs_server);
        let fs = FlatFsClient::open(&net, fs_runner.put_port());

        // Client gets 10 dollars.
        let wallet = bank.open_account().unwrap();
        bank.mint(&treasury, &wallet, CurrencyId(0), 10).unwrap();

        // Unpaid create is rejected outright.
        assert_eq!(
            fs.create().unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );

        // Pay 4 dollars => 2 KiB quota.
        let cap = fs.create_paid(&wallet, 4).unwrap();
        assert_eq!(bank.balance(&wallet, CurrencyId(0)).unwrap(), 6);
        fs.write(&cap, 0, &vec![1u8; 2048]).unwrap();
        assert_eq!(
            fs.write(&cap, 2048, b"!").unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );

        // Overdraft: cannot pay more than the wallet holds.
        assert_eq!(
            fs.create_paid(&wallet, 100).unwrap_err(),
            ClientError::Status(Status::InsufficientFunds)
        );

        fs_runner.stop();
        bank_runner.stop();
    }
}
