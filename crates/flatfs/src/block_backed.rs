//! The *modular* flat file server of §3.2–3.3: file bytes live in
//! **block-server blocks**, not in the file server's memory.
//!
//! "The first file system is highly modular, consisting of a block
//! server, flat file server, and directory server." This implementation
//! completes that stack: it speaks the exact same wire protocol as
//! [`FlatFsServer`](crate::FlatFsServer) (one [`FlatFsClient`] works
//! against both), but every byte of file data is stored in raw blocks
//! it allocates, as a client, from a block server — which is what lets
//! "any user implement any kind of special-purpose file system without
//! having to get into the details of disk storage management".
//!
//! The in-memory [`FlatFsServer`](crate::FlatFsServer) and this one are
//! an ablation pair: bench `fileserver_paths` can be pointed at either
//! to price the extra block-server hop.
//!
//! [`FlatFsClient`]: crate::FlatFsClient

use crate::ops;
use amoeba_block::BlockClient;
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectLocks, ObjectTable, RequestCtx, Service};
use bytes::Bytes;

/// One contiguous allocation: a block-server extent capability and the
/// number of blocks it covers. Each file write that grows the file
/// adds at most one extent (one `ALLOC_N` round-trip), so a file's
/// metadata is O(growth events), not O(blocks).
#[derive(Debug, Clone, Copy)]
struct Extent {
    /// Full-rights extent capability, private to this server.
    cap: Capability,
    blocks: u32,
}

#[derive(Debug)]
struct Inode {
    size: u64,
    extents: Vec<Extent>,
}

/// Maps the byte range `[start, end)` onto `(extent index,
/// within-extent offset, length)` runs, in order.
fn extent_runs(extents: &[Extent], bs: u64, start: u64, end: u64) -> Vec<(usize, u32, u32)> {
    let mut runs = Vec::new();
    let mut base = 0u64;
    for (idx, ext) in extents.iter().enumerate() {
        let ext_end = base + u64::from(ext.blocks) * bs;
        if ext_end > start && base < end {
            let run_start = start.max(base);
            let run_end = end.min(ext_end);
            runs.push((idx, (run_start - base) as u32, (run_end - run_start) as u32));
        }
        if ext_end >= end {
            break;
        }
        base = ext_end;
    }
    runs
}

/// A flat file server whose storage is a block server.
///
/// The RPC client demuxes concurrent transactions, so reads go to the
/// block server with no locking at all. Mutating operations (WRITE,
/// DESTROY) serialise **per inode** on a striped [`ObjectLocks`]: a
/// write snapshots the inode, allocates blocks and writes data in
/// separate steps, and two concurrent writers to *one* file would
/// otherwise leak blocks and lose metadata — but writers to distinct
/// files share no metadata and proceed in parallel across the worker
/// pool. (The in-memory [`FlatFsServer`](crate::FlatFsServer) has no
/// disk hop and scales across workers freely.)
#[derive(Debug)]
pub struct BlockFlatFsServer {
    table: ObjectTable<Inode>,
    disk: BlockClient,
    inode_locks: ObjectLocks,
    block_size: u64,
}

impl BlockFlatFsServer {
    /// Creates the server as a client of the block server at
    /// `disk_port`.
    ///
    /// # Panics
    /// Panics if the block server cannot be reached to learn its
    /// geometry.
    pub fn new(net: &Network, disk_port: Port, scheme: SchemeKind) -> BlockFlatFsServer {
        let disk = BlockClient::open(net, disk_port);
        let block_size = disk
            .statfs()
            .expect("block server must be reachable at construction")
            .block_size as u64;
        BlockFlatFsServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            disk,
            inode_locks: ObjectLocks::default(),
            block_size,
        }
    }

    fn create(&self) -> Reply {
        let (_, cap) = self.table.create(Inode {
            size: 0,
            extents: Vec::new(),
        });
        Reply::ok(wire::Writer::new().cap(&cap).finish())
    }

    fn read(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(len)) = (r.u64(), r.u32()) else {
            return Reply::status(Status::BadRequest);
        };
        let meta = self
            .table
            .with_object(&req.cap, Rights::READ, |f| (f.size, f.extents.clone()));
        let (size, extents) = match meta {
            Ok(m) => m,
            Err(e) => return Reply::status(e.into()),
        };
        let start = offset.min(size);
        let end = offset.saturating_add(len as u64).min(size);
        // One gather frame covers the whole range, however many extents
        // it crosses. No lock on the read path: the RPC client demuxes
        // concurrent transactions and reads never touch inode metadata.
        let gathers: Vec<(Capability, u32, u32)> =
            extent_runs(&extents, self.block_size, start, end)
                .into_iter()
                .map(|(idx, within, take)| (extents[idx].cap, within, take))
                .collect();
        match self.disk.read_many(&gathers) {
            Ok(bodies) => {
                let mut out = Vec::with_capacity((end - start) as usize);
                for body in bodies {
                    out.extend_from_slice(&body);
                }
                Reply::ok(Bytes::from(out))
            }
            Err(ClientError::Status(s)) => Reply::status(s),
            Err(_) => Reply::status(Status::NoSpace),
        }
    }

    fn write(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(data)) = (r.u64(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        // Serialise writers *of this inode* before snapshotting it, so
        // a concurrent writer's allocations are always visible in the
        // snapshot (no leaked blocks, no lost metadata). Writers to
        // other files take other stripes and run in parallel.
        let _writing = self.inode_locks.lock(req.cap.object);
        let meta = self
            .table
            .with_object(&req.cap, Rights::WRITE, |f| (f.size, f.extents.clone()));
        let (old_size, mut extents) = match meta {
            Ok(m) => m,
            Err(e) => return Reply::status(e.into()),
        };
        let bs = self.block_size;
        let Some(end) = offset.checked_add(data.len() as u64) else {
            return Reply::status(Status::OutOfRange);
        };
        let have: u64 = extents.iter().map(|e| u64::from(e.blocks)).sum();
        let needed = end.div_ceil(bs);
        // At most ONE allocation round-trip, however many blocks the
        // write needs: the shortfall comes back as a single contiguous
        // extent. On any failure below the fresh extent is returned
        // whole — it is not yet in the inode and would otherwise leak
        // disk capacity forever.
        let mut fresh: Option<Capability> = None;
        if needed > have {
            let Ok(shortfall) = u32::try_from(needed - have) else {
                return Reply::status(Status::OutOfRange);
            };
            match self.disk.alloc_n(shortfall) {
                Ok((cap, blocks)) => {
                    fresh = Some(cap);
                    extents.push(Extent { cap, blocks });
                }
                Err(e) => {
                    return Reply::status(match e {
                        ClientError::Status(s) => s,
                        _ => Status::NoSpace,
                    });
                }
            }
        }
        let free_fresh = || {
            if let Some(cap) = &fresh {
                let _ = self.disk.free(cap);
            }
        };
        // One scatter frame carries every byte of the write.
        let runs = extent_runs(&extents, bs, offset, end);
        let mut scatters: Vec<(Capability, u32, &[u8])> = Vec::with_capacity(runs.len());
        let mut taken = 0usize;
        for (idx, within, take) in runs {
            scatters.push((
                extents[idx].cap,
                within,
                &data[taken..taken + take as usize],
            ));
            taken += take as usize;
        }
        if let Err(e) = self.disk.write_many(&scatters) {
            free_fresh();
            return Reply::status(match e {
                ClientError::Status(s) => s,
                _ => Status::NoSpace,
            });
        }
        let new_size = old_size.max(end);
        match self.table.with_object_mut(&req.cap, Rights::WRITE, |f| {
            f.size = new_size;
            f.extents = extents.clone();
        }) {
            Ok(()) => Reply::ok(wire::Writer::new().u64(new_size).finish()),
            Err(e) => {
                // The file vanished mid-write (revoked/destroyed): the
                // new extent never made it into any inode.
                free_fresh();
                Reply::status(e.into())
            }
        }
    }

    fn size(&self, req: &Request) -> Reply {
        match self.table.with_object(&req.cap, Rights::READ, |f| f.size) {
            Ok(s) => Reply::ok(wire::Writer::new().u64(s).finish()),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn destroy(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(inode) => {
                // Wait for any in-flight writer of this inode before
                // freeing its extents (one batch frame); unrelated
                // files are unaffected.
                let _writing = self.inode_locks.lock(req.cap.object);
                let caps: Vec<Capability> = inode.extents.iter().map(|e| e.cap).collect();
                let _ = self.disk.free_many(&caps);
                Reply::ok(Bytes::new())
            }
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for BlockFlatFsServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE => self.create(),
            ops::DESTROY => self.destroy(req),
            ops::READ => self.read(req),
            ops::WRITE => self.write(req),
            ops::SIZE => self.size(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatFsClient;
    use amoeba_block::{BlockServer, DiskConfig};
    use amoeba_server::ServiceRunner;

    fn setup(cfg: DiskConfig) -> (Network, ServiceRunner, ServiceRunner, FlatFsClient) {
        let net = Network::new();
        let disk = ServiceRunner::spawn_open(&net, BlockServer::new(cfg, SchemeKind::OneWay));
        let server = BlockFlatFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
        let fs_runner = ServiceRunner::spawn_open(&net, server);
        let client = FlatFsClient::open(&net, fs_runner.put_port());
        (net, disk, fs_runner, client)
    }

    fn small() -> DiskConfig {
        DiskConfig {
            block_size: 128,
            capacity_blocks: 32,
        }
    }

    #[test]
    fn same_client_same_protocol_block_backed_storage() {
        // The ordinary FlatFsClient drives the modular server untouched.
        let (_n, disk, fsr, fs) = setup(small());
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, b"modular file system").unwrap();
        assert_eq!(&fs.read(&cap, 8, 4).unwrap(), b"file");
        assert_eq!(fs.size(&cap).unwrap(), 19);
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn data_really_lives_on_the_block_server() {
        let (net, disk, fsr, fs) = setup(small());
        let stats = BlockClient::open(&net, disk.put_port());
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 0);
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, &vec![3u8; 300]).unwrap(); // 3 × 128B blocks
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 3);
        fs.destroy(&cap).unwrap();
        assert_eq!(
            stats.statfs().unwrap().allocated_blocks,
            0,
            "destroy must return its blocks"
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn spanning_writes_and_reads() {
        let (_n, disk, fsr, fs) = setup(small());
        let cap = fs.create().unwrap();
        let data: Vec<u8> = (0..=255u8).chain(0..=255u8).collect(); // 512 B, 4 blocks
        let mut off = 0u64;
        for chunk in data.chunks(200) {
            fs.write(&cap, off, chunk).unwrap();
            off += chunk.len() as u64;
        }
        assert_eq!(fs.read(&cap, 0, 512).unwrap(), data);
        assert_eq!(fs.read(&cap, 120, 20).unwrap(), data[120..140]);
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn disk_exhaustion_propagates() {
        let (_n, disk, fsr, fs) = setup(DiskConfig {
            block_size: 64,
            capacity_blocks: 2,
        });
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, &[1u8; 128]).unwrap();
        assert_eq!(
            fs.write(&cap, 128, b"x").unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn rights_still_enforced_through_the_stack() {
        let (_n, disk, fsr, fs) = setup(small());
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, b"layered").unwrap();
        let ro = fs.service().restrict(&cap, Rights::READ).unwrap();
        assert_eq!(&fs.read(&ro, 0, 7).unwrap(), b"layered");
        assert_eq!(
            fs.write(&ro, 0, b"x").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn writes_to_distinct_files_proceed_in_parallel() {
        // Per-inode locking acceptance, measured in virtual time so
        // the result is modeled latency, not host speed: four
        // concurrent writers to four DISTINCT files must beat half the
        // serial bound (4 × one write's span). The replaced global
        // write mutex serialised exactly this workload and would fail
        // the gate.
        use amoeba_rpc::RpcConfig;
        use amoeba_server::ServiceClient;
        use std::time::Duration;

        // One write = 1 alloc RTT + 1 data RTT against the disk, plus
        // the client↔fs RTT; at 200 ms per hop the modeled cost towers
        // over any scheduler noise in the timeline. The modeled call
        // (1.2 s) exceeds the default RPC timeout, so the outer client
        // gets an explicit generous one.
        const HOP: Duration = Duration::from_millis(200);
        const PATIENT: RpcConfig = RpcConfig {
            timeout: Duration::from_secs(120),
            attempts: 2,
        };

        let run = |writers: usize| -> Duration {
            let net = Network::new_virtual();
            let disk = ServiceRunner::spawn_open_workers(
                &net,
                BlockServer::new(
                    DiskConfig {
                        block_size: 128,
                        capacity_blocks: 64,
                    },
                    SchemeKind::OneWay,
                ),
                4,
            );
            let server = BlockFlatFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
            let fs_runner = ServiceRunner::spawn_open_workers(&net, server, 4);
            let fs = FlatFsClient::with_service(
                ServiceClient::open_with_config(&net, PATIENT),
                fs_runner.put_port(),
            );
            let caps: Vec<Capability> = (0..writers).map(|_| fs.create().unwrap()).collect();
            net.set_latency(HOP);
            let v0 = net.now();
            let handles: Vec<_> = caps
                .into_iter()
                .map(|cap| {
                    let net = net.clone();
                    let port = fs_runner.put_port();
                    std::thread::spawn(move || {
                        let fs = FlatFsClient::with_service(
                            ServiceClient::open_with_config(&net, PATIENT),
                            port,
                        );
                        fs.write(&cap, 0, &[7u8; 100]).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let elapsed = net.now().saturating_duration_since(v0);
            net.set_latency(Duration::ZERO);
            fs_runner.stop();
            disk.stop();
            elapsed
        };

        let single = run(1);
        // Host-scheduling lag can only *inflate* the virtual timeline
        // (a late thread stamps later sends), never deflate it, so the
        // minimum over a few runs is the faithful measurement on an
        // oversubscribed host.
        let parallel = (0..3).map(|_| run(4)).min().unwrap();
        assert!(
            parallel * 2 <= single * 4,
            "4 distinct-file writes must overlap their disk hops \
             (≥2× over serial): single={single:?} 4-parallel={parallel:?}"
        );
    }

    #[test]
    fn concurrent_distinct_file_writes_stay_correct_under_a_pool() {
        // Correctness side of per-inode locking: a worker pool writing
        // many files at once must neither mix data nor leak blocks.
        use amoeba_server::ServiceClient;

        let net = Network::new();
        let disk = ServiceRunner::spawn_open_workers(
            &net,
            BlockServer::new(
                DiskConfig {
                    block_size: 64,
                    capacity_blocks: 256,
                },
                SchemeKind::OneWay,
            ),
            4,
        );
        let server = BlockFlatFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
        let fs_runner = ServiceRunner::spawn_open_workers(&net, server, 4);
        let port = fs_runner.put_port();
        let handles: Vec<_> = (0..6u8)
            .map(|t| {
                let net = net.clone();
                std::thread::spawn(move || {
                    let fs = FlatFsClient::with_service(ServiceClient::open(&net), port);
                    for round in 0..4u8 {
                        let cap = fs.create().unwrap();
                        let body = vec![t * 16 + round; 150]; // 3 blocks
                        fs.write(&cap, 0, &body).unwrap();
                        assert_eq!(fs.read(&cap, 0, 150).unwrap(), body);
                        fs.destroy(&cap).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = BlockClient::open(&net, disk.put_port());
        assert_eq!(
            stats.statfs().unwrap().allocated_blocks,
            0,
            "every destroyed file must have returned its blocks"
        );
        fs_runner.stop();
        disk.stop();
    }

    #[test]
    fn revocation_works_on_the_modular_server_too() {
        let (_n, disk, fsr, fs) = setup(small());
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, b"will be orphaned").unwrap();
        let fresh = fs.service().revoke(&cap).unwrap();
        assert!(fs.read(&cap, 0, 1).is_err());
        assert_eq!(&fs.read(&fresh, 0, 4).unwrap(), b"will");
        fsr.stop();
        disk.stop();
    }
}
