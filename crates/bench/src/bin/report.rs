//! The non-timing half of the experiment suite: attack outcomes,
//! traffic counts, cache hit rates and copy-on-write sharing ratios.
//!
//! Criterion measures *time*; this binary regenerates every *count*
//! EXPERIMENTS.md reports. Run with:
//!
//! ```bash
//! cargo run --release -p amoeba-bench --bin report
//! ```

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_cap::schemes::{CommutativeScheme, ProtectionScheme, SchemeKind};
use amoeba_cap::{Capability, ObjectNum, Rights};
use amoeba_crypto::oneway::ShaOneWay;
use amoeba_fbox::FBox;
use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
use amoeba_mvfs::{MvfsClient, MvfsServer};
use amoeba_net::{Header, Network, NetworkInterface, Port};
use amoeba_rpc::{Client, Locator, ServerPort};
use amoeba_server::{ServiceClient, ServiceRunner};
use amoeba_softprot::{CapSealer, KeyMatrix};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("# Amoeba reproduction — experiment report (counts & outcomes)\n");
    f1_attack_outcomes();
    f1_sparseness_monte_carlo();
    e2_diminish_traffic();
    e4_revocation_sweep();
    e5_softprot_outcomes();
    e7_locate_traffic();
    e9_cow_sharing();
    e10_quota_accounting();
    println!("\nreport complete.");
}

fn fbox_machine(net: &Network) -> amoeba_net::Endpoint {
    net.attach(Arc::new(FBox::hardware(ShaOneWay)))
}

/// F1: the four Fig-1 attacks, each run 100 times; success counts must
/// be zero (and the no-F-box control must succeed 100 times).
fn f1_attack_outcomes() {
    println!("## F1 — Fig 1 attack outcomes (100 trials each)\n");
    println!("| attack | F-boxes | successes |");
    println!("|---|---|---|");

    // Impersonation with F-boxes.
    let mut successes = 0;
    for i in 0..100u64 {
        let net = Network::new();
        let server_ep = fbox_machine(&net);
        let g = Port::new(0x1000 + i).unwrap();
        let server = ServerPort::bind(server_ep, g);
        let p = server.put_port();
        let intruder = fbox_machine(&net);
        intruder.claim(p);
        let client = fbox_machine(&net);
        client.send(Header::to(p), Bytes::from_static(b"secret"));
        if intruder.try_recv().is_some() {
            successes += 1;
        }
    }
    println!("| impersonation (GET on put-port) | yes | {successes} |");

    // Control: no F-boxes.
    let mut control = 0;
    for i in 0..100u64 {
        let net = Network::new();
        let server = net.attach_open();
        let p = Port::new(0x2000 + i).unwrap();
        server.claim(p);
        let intruder = net.attach_open();
        intruder.claim(p);
        let client = net.attach_open();
        client.send(Header::to(p), Bytes::from_static(b"secret"));
        if intruder.try_recv().is_some() {
            control += 1;
        }
    }
    println!("| impersonation (control) | **no** | {control} |");

    // Replay through the intruder's own F-box.
    let mut replay_hits = 0;
    for i in 0..100u64 {
        let net = Network::new();
        let wire = net.tap();
        let server_ep = fbox_machine(&net);
        let server = ServerPort::bind(server_ep, Port::new(0x3000 + i).unwrap());
        let p = server.put_port();
        let handle = std::thread::spawn(move || {
            while let Ok(req) = server.next_request_timeout(Duration::from_millis(200)) {
                server.reply(&req, Bytes::from_static(b"reply"));
            }
        });
        let client = Client::new(fbox_machine(&net));
        let _ = client.trans(p, Bytes::from_static(b"req"));
        if let Ok(frame) = wire.try_recv() {
            let replayer = fbox_machine(&net);
            replayer.send(frame.header, frame.payload.clone());
            std::thread::sleep(Duration::from_millis(5));
            if replayer.try_recv().is_some() {
                replay_hits += 1;
            }
        }
        handle.join().unwrap();
    }
    println!("| replay captured request, receive reply | yes | {replay_hits} |");

    // Signature forgery: forged F(S) never matches the published value.
    let f = ShaOneWay;
    let fbox = FBox::hardware(f.clone());
    let mut sig_hits = 0;
    for i in 1..=100u64 {
        let s = Port::new(0x4000 + i).unwrap();
        let published = amoeba_fbox::put_port_of(&f, s);
        let mut forged = Header::to(Port::new(1).unwrap()).with_signature(published);
        fbox.egress(&mut forged);
        if forged.signature == published {
            sig_hits += 1;
        }
    }
    println!("| signature forgery with published F(S) | yes | {sig_hits} |\n");
}

/// F2/E1: Monte-Carlo forgery — random 48-bit check fields against every
/// scheme.
fn f1_sparseness_monte_carlo() {
    println!("## Sparseness — random check-field forgeries (100k/scheme)\n");
    println!("| scheme | trials | forgeries accepted |");
    println!("|---|---|---|");
    let mut rng = StdRng::seed_from_u64(7);
    for kind in SchemeKind::ALL {
        let scheme = kind.instantiate();
        let secret = scheme.new_secret(&mut rng);
        let cap = scheme.mint(
            Port::new(0xAB).unwrap(),
            ObjectNum::new(1).unwrap(),
            &secret,
        );
        let mut hits = 0u64;
        for _ in 0..100_000 {
            let guess = cap.with_check(rng.gen());
            if guess.check != cap.check && scheme.validate(&guess, &secret).is_ok() {
                hits += 1;
            }
        }
        println!("| {kind} | 100000 | {hits} |");
    }
    println!();
}

/// E2: packets on the wire per delegation, local diminish vs RESTRICT.
fn e2_diminish_traffic() {
    println!("## E2 — network traffic per read-only delegation\n");
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let cap = fs.create().unwrap();
    let scheme = CommutativeScheme::standard();

    let before = net.stats().snapshot();
    let _local = scheme
        .diminish(&cap, Rights::ALL.without(Rights::READ))
        .unwrap();
    let mid = net.stats().snapshot();
    let _remote = fs.service().restrict(&cap, Rights::READ).unwrap();
    let after = net.stats().snapshot();

    println!("| method | packets sent |");
    println!("|---|---|");
    println!(
        "| scheme 3 local diminish | {} |",
        (mid - before).packets_sent
    );
    println!(
        "| STD_RESTRICT server RPC | {} |\n",
        (after - mid).packets_sent
    );
    runner.stop();
}

/// E4: revocation invalidates all outstanding capabilities, any count.
fn e4_revocation_sweep() {
    println!("## E4 — revocation: outstanding capabilities invalidated\n");
    println!("| outstanding caps | still valid after revoke |");
    println!("|---|---|");
    for outstanding in [10usize, 100, 1000, 10_000] {
        let table = amoeba_server::ObjectTable::<u32>::with_port(
            SchemeKind::Commutative.instantiate(),
            Port::new(0xE4).unwrap(),
        );
        let (_, owner) = table.create(0);
        let caps: Vec<Capability> = (0..outstanding)
            .map(|_| table.restrict(&owner, Rights::READ).unwrap())
            .collect();
        table.revoke(&owner).unwrap();
        let alive = caps.iter().filter(|c| table.validate(c).is_ok()).count();
        println!("| {outstanding} | {alive} |");
    }
    println!();
}

/// E5: softprot replay outcomes + cache effectiveness.
fn e5_softprot_outcomes() {
    println!("## E5 — §2.4 software protection\n");
    let net = Network::new();
    let c = net.attach_open();
    let s = net.attach_open();
    let i = net.attach_open();
    let mut rng = StdRng::seed_from_u64(11);
    let matrix = KeyMatrix::random(&[c.id(), s.id(), i.id()], &mut rng);
    let client = CapSealer::new(matrix.view_for(c.id()));
    let server = CapSealer::new(matrix.view_for(s.id()));

    // 1000 replays from the intruder's source address.
    let mut recovered = 0;
    for n in 0..1000u64 {
        let cap = Capability::new(
            Port::new(0xE5).unwrap(),
            ObjectNum::new((n % 100) as u32).unwrap(),
            Rights::ALL,
            n,
        );
        let sealed = client.seal(&cap, s.id()).unwrap();
        match server.unseal(sealed, i.id()) {
            Ok(g) if g == cap => recovered += 1,
            _ => {}
        }
    }
    println!("replays decrypted with M[I][S]: 1000 trials, {recovered} recovered the capability\n");

    // Cache hit rate for a zipf-ish working set.
    let sealer = CapSealer::new(matrix.view_for(c.id()));
    let mut rng2 = StdRng::seed_from_u64(12);
    for _ in 0..10_000 {
        let obj = (rng2.gen::<f64>().powi(3) * 100.0) as u32; // skewed
        let cap = Capability::new(
            Port::new(0xE5).unwrap(),
            ObjectNum::new(obj).unwrap(),
            Rights::ALL,
            obj as u64,
        );
        sealer.seal(&cap, s.id()).unwrap();
    }
    let stats = sealer.cache_stats();
    println!(
        "capability cache over 10k skewed sends: {} hits / {} misses ({:.1}% hit rate)\n",
        stats.hits,
        stats.misses,
        100.0 * stats.hits as f64 / (stats.hits + stats.misses) as f64
    );
}

/// E7: broadcasts saved by the locate cache.
fn e7_locate_traffic() {
    println!("## E7 — LOCATE broadcasts vs cache\n");
    println!("| machines | lookups | broadcasts (cold cache) | broadcasts (warm) |");
    println!("|---|---|---|---|");
    for machines in [4usize, 16, 64] {
        let net = Network::new();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        let target = ServerPort::bind(net.attach_open(), Port::new(0x7A46E7).unwrap());
        let target_port = target.put_port();
        {
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = target.next_request_timeout(Duration::from_millis(5));
                }
            }));
        }
        for j in 0..machines.saturating_sub(2) {
            let bystander =
                ServerPort::bind(net.attach_open(), Port::new(0x99000 + j as u64).unwrap());
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = bystander.next_request_timeout(Duration::from_millis(5));
                }
            }));
        }
        let client = net.attach_open();

        // Cold: clear between lookups.
        let locator = Locator::with_timeout(Duration::from_millis(300));
        let before = net.stats().snapshot();
        for _ in 0..20 {
            locator.clear();
            locator.locate(&client, target_port).expect("found");
        }
        let mid = net.stats().snapshot();
        // Warm: 20 more without clearing.
        for _ in 0..20 {
            locator.locate(&client, target_port).expect("found");
        }
        let after = net.stats().snapshot();
        println!(
            "| {machines} | 20+20 | {} | {} |",
            (mid - before).broadcasts_sent,
            (after - mid).broadcasts_sent
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            let _ = h.join();
        }
    }
    println!();
}

/// E9: pages shared after a 1-page modification, by file size.
fn e9_cow_sharing() {
    println!("## E9 — copy-on-write page sharing\n");
    println!("| file pages | pages copied | pages shared | shared % |");
    println!("|---|---|---|---|");
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
    let fs = MvfsClient::open(&net, runner.put_port());
    for pages in [16u32, 64, 256, 1024] {
        let file = fs.create_file().unwrap();
        let v0 = fs.new_version(&file).unwrap();
        let payload = vec![7u8; 1024];
        for p in 0..pages {
            fs.write_page(&v0, p, &payload).unwrap();
        }
        fs.commit(&v0).unwrap();
        let v1 = fs.new_version(&file).unwrap();
        fs.write_page(&v1, pages / 2, b"edit").unwrap();
        let info = fs.version_info(&v1).unwrap();
        let copied = info.pages - info.shared_with_head;
        println!(
            "| {pages} | {copied} | {} | {:.1}% |",
            info.shared_with_head,
            100.0 * info.shared_with_head as f64 / info.pages as f64
        );
    }
    println!();
    runner.stop();
}

/// E10: money conservation under a quota workload.
fn e10_quota_accounting() {
    println!("## E10 — bank-backed quotas: conservation audit\n");
    let net = Network::new();
    let (bank_server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, bank_runner.put_port());

    let fs_account = bank.open_account().unwrap();
    let fs_audit = bank.service().restrict(&fs_account, Rights::READ).unwrap();
    let fs_runner = ServiceRunner::spawn_open(
        &net,
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_runner.put_port()),
                server_account: fs_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
    );
    let fs = FlatFsClient::open(&net, fs_runner.put_port());

    let minted = 1_000u64;
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), minted)
        .unwrap();

    let mut created = 0u32;
    let mut refused = 0u32;
    loop {
        match fs.create_paid(&wallet, 100) {
            Ok(cap) => {
                created += 1;
                // Fill the purchased quota exactly.
                fs.write(&cap, 0, &vec![1u8; 100 * 1024]).unwrap();
                assert!(fs.write(&cap, 100 * 1024, b"x").is_err());
            }
            Err(_) => {
                refused += 1;
                break;
            }
        }
    }
    let wallet_left = bank.balance(&wallet, CurrencyId(0)).unwrap();
    let earned = bank.balance(&fs_audit, CurrencyId(0)).unwrap();
    println!("minted {minted} dollars; file server price 1 $/KiB, 100 $ per file");
    println!("files created: {created}; refused for lack of funds: {refused}");
    println!(
        "wallet remainder {wallet_left} + server earnings {earned} = {} (must equal {minted})",
        wallet_left + earned
    );
    assert_eq!(wallet_left + earned, minted, "money must be conserved");
    fs_runner.stop();
    bank_runner.stop();
}
