//! Shared scaffolding for the experiment benchmarks.
//!
//! Every bench target in `benches/` regenerates one experiment from
//! EXPERIMENTS.md; this crate holds the common setup so each target
//! reads as the experiment it implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme, SchemeKind};
use amoeba_cap::{Capability, ObjectNum};
use amoeba_net::{Network, Port};
use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A deterministic RNG for benchmark setup.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE_7C_4A_11)
}

/// A server port constant used when minting stand-alone capabilities.
pub fn bench_port() -> Port {
    Port::new(0xBEC4).expect("valid port")
}

/// Mints a (scheme, secret, capability) triple for scheme benchmarks.
pub fn minted(kind: SchemeKind) -> (Box<dyn ProtectionScheme>, ObjectSecret, Capability) {
    let scheme = kind.instantiate();
    let mut rng = bench_rng();
    let secret = scheme.new_secret(&mut rng);
    let cap = scheme.mint(bench_port(), ObjectNum::new(1).expect("small"), &secret);
    (scheme, secret, cap)
}

/// Criterion tuning for pure-CPU experiments.
pub fn cpu_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g
}

/// Criterion tuning for experiments that cross the simulated network
/// (fewer samples; each iteration blocks on real thread wake-ups).
pub fn net_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);
    g
}

/// A fresh zero-latency network.
pub fn quiet_network() -> Network {
    Network::new()
}

/// The hop latency the metered-create comparisons run at.
pub const METERED_HOP_LATENCY: Duration = Duration::from_millis(2);

/// One §3.6 metered-create round — every CREATE pays through a nested
/// bank transaction — at [`METERED_HOP_LATENCY`] per hop, on whichever
/// clock `net` carries. Returns the **real wall-clock** the round
/// took; under `Network::new_virtual()` the hops are timeline jumps,
/// under `Network::new()` they are slept out. Shared by the
/// `reactor_transport` bench and the `tests/scale.rs` ≥10× acceptance
/// gate so both measure the identical workload.
pub fn metered_create_round(net: &Network, creates: usize) -> Duration {
    use amoeba_bank::{BankClient, Currency, CurrencyId};
    use amoeba_cap::schemes::SchemeKind as Kind;
    use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
    use amoeba_server::{ServiceClient, ServiceRunner};

    let patient = amoeba_rpc::RpcConfig {
        timeout: Duration::from_secs(30),
        attempts: 2,
    };
    let (bank_server, treasury_rx) =
        amoeba_bank::BankServer::new(vec![Currency::convertible("dollar", 1)], Kind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(net, bank_server);
    let treasury = treasury_rx.recv().expect("treasury cap");
    let bank = BankClient::open(net, bank_runner.put_port());
    let server_account = bank.open_account().expect("server account");
    let wallet = bank.open_account().expect("wallet");
    bank.mint(&treasury, &wallet, CurrencyId(0), 100_000)
        .expect("mint");
    let runner = ServiceRunner::spawn_open_workers(
        net,
        FlatFsServer::with_quota(
            Kind::OneWay,
            QuotaPolicy {
                bank: BankClient::with_service(
                    ServiceClient::open_with_config(net, patient),
                    bank_runner.put_port(),
                ),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
        2,
    );
    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(net, patient),
        runner.put_port(),
    );
    net.set_latency(METERED_HOP_LATENCY);
    let t0 = std::time::Instant::now();
    for _ in 0..creates {
        let cap = fs.create_paid(&wallet, 1).expect("metered create");
        fs.destroy(&cap).expect("destroy");
    }
    let elapsed = t0.elapsed();
    net.set_latency(Duration::ZERO);
    runner.stop();
    bank_runner.stop();
    elapsed
}
