//! Shared scaffolding for the experiment benchmarks.
//!
//! Every bench target in `benches/` regenerates one experiment from
//! EXPERIMENTS.md; this crate holds the common setup so each target
//! reads as the experiment it implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme, SchemeKind};
use amoeba_cap::{Capability, ObjectNum};
use amoeba_net::{Network, Port};
use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A deterministic RNG for benchmark setup.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE_7C_4A_11)
}

/// A server port constant used when minting stand-alone capabilities.
pub fn bench_port() -> Port {
    Port::new(0xBEC4).expect("valid port")
}

/// Mints a (scheme, secret, capability) triple for scheme benchmarks.
pub fn minted(kind: SchemeKind) -> (Box<dyn ProtectionScheme>, ObjectSecret, Capability) {
    let scheme = kind.instantiate();
    let mut rng = bench_rng();
    let secret = scheme.new_secret(&mut rng);
    let cap = scheme.mint(bench_port(), ObjectNum::new(1).expect("small"), &secret);
    (scheme, secret, cap)
}

/// Criterion tuning for pure-CPU experiments.
pub fn cpu_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g
}

/// Criterion tuning for experiments that cross the simulated network
/// (fewer samples; each iteration blocks on real thread wake-ups).
pub fn net_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);
    g
}

/// A fresh zero-latency network.
pub fn quiet_network() -> Network {
    Network::new()
}
