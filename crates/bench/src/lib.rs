//! Shared scaffolding for the experiment benchmarks.
//!
//! Every bench target in `benches/` regenerates one experiment from
//! EXPERIMENTS.md; this crate holds the common setup so each target
//! reads as the experiment it implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme, SchemeKind};
use amoeba_cap::{Capability, ObjectNum};
use amoeba_net::{Network, Port};
use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A deterministic RNG for benchmark setup.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE_7C_4A_11)
}

/// A server port constant used when minting stand-alone capabilities.
pub fn bench_port() -> Port {
    Port::new(0xBEC4).expect("valid port")
}

/// Mints a (scheme, secret, capability) triple for scheme benchmarks.
pub fn minted(kind: SchemeKind) -> (Box<dyn ProtectionScheme>, ObjectSecret, Capability) {
    let scheme = kind.instantiate();
    let mut rng = bench_rng();
    let secret = scheme.new_secret(&mut rng);
    let cap = scheme.mint(bench_port(), ObjectNum::new(1).expect("small"), &secret);
    (scheme, secret, cap)
}

/// Criterion tuning for pure-CPU experiments.
pub fn cpu_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g
}

/// Criterion tuning for experiments that cross the simulated network
/// (fewer samples; each iteration blocks on real thread wake-ups).
pub fn net_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);
    g
}

/// A fresh zero-latency network.
pub fn quiet_network() -> Network {
    Network::new()
}

/// The hop latency the metered-create comparisons run at.
pub const METERED_HOP_LATENCY: Duration = Duration::from_millis(2);

/// One measured leg of the hot-path experiment: how much CPU-side cost
/// (buffer allocations, one-way-function evaluations, wire frames,
/// wall-clock) a batch of metered creates paid.
#[derive(Debug, Clone, Copy)]
pub struct HotPathMeasure {
    /// Operations measured (one op = one paid create + one destroy).
    pub ops: u64,
    /// Real wall-clock of the measured phase.
    pub elapsed: Duration,
    /// Fresh frame/body-buffer allocations by the parties' shared
    /// [`amoeba_net::BufPool`] during the measured phase.
    pub fresh_allocs: u64,
    /// Buffer takes (fresh + recycled) during the measured phase.
    pub pool_takes: u64,
    /// One-way-function (`F`) evaluations by the parties' F-boxes
    /// during the measured phase.
    pub oneway_evals: u64,
    /// Wire frames sent during the measured phase.
    pub frames: u64,
    /// Hot-mutex acquisitions recorded by the fleet's shared
    /// [`LockMeter`](amoeba_net::LockMeter) during the measured phase
    /// (pool spill queues, demux overflow, batch accumulators, lease
    /// broker — see `amoeba_net::hot_lock_acquisitions` for scope).
    pub hot_locks: u64,
}

impl HotPathMeasure {
    /// Fresh buffer allocations per operation.
    pub fn allocs_per_op(&self) -> f64 {
        self.fresh_allocs as f64 / self.ops as f64
    }

    /// `F` evaluations per operation.
    pub fn oneway_per_op(&self) -> f64 {
        self.oneway_evals as f64 / self.ops as f64
    }

    /// Nanoseconds of real wall-clock per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e9 / self.ops as f64
    }

    /// Fleet-metered hot-mutex acquisitions per operation.
    pub fn locks_per_op(&self) -> f64 {
        self.hot_locks as f64 / self.ops as f64
    }

    /// Operations per second of real wall-clock.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// The steady-state §3.6 metered-create workload with **every machine
/// behind an F-box**, instrumented for per-operation hot-path cost.
///
/// All parties — bank server, file server (with its embedded bank
/// client), and the hammering client — share one
/// [`BufPool`](amoeba_net::BufPool) handle, so `fresh_allocs` is the
/// whole fleet's codec allocation count, race-free even when other
/// tests run in the same process. `legacy = true` runs the pre-PR
/// codec (no buffer pooling, fresh random reply ports, uncached
/// F-boxes); `legacy = false` runs the zero-copy fast path. The wire
/// bytes are identical either way, which is the point: the comparison
/// isolates codec cost.
///
/// `warmup` operations run before counters are snapshotted so pools
/// and memo tables reach steady state; `creates` operations are then
/// measured. Shared by the `hot_path` bench and the acceptance gates
/// in `tests/scale.rs`.
pub fn hot_path_round(
    net: &Network,
    legacy: bool,
    warmup: usize,
    creates: usize,
) -> HotPathMeasure {
    // One pool handle for the whole fleet (disabled = the baseline that
    // allocates on every take, but still counts).
    let codec = if legacy {
        amoeba_rpc::CodecConfig::legacy()
    } else {
        amoeba_rpc::CodecConfig::default()
    };
    let pool = codec.pool.clone();
    let fleet = HotPathFleet::build(net, codec, legacy);
    net.set_latency(METERED_HOP_LATENCY);
    for _ in 0..warmup {
        fleet.one_op();
    }

    let allocs0 = pool.fresh_allocs();
    let takes0 = pool.takes();
    let locks0 = pool.lock_acquisitions();
    let hot0 = net.hot_path();
    let t0 = std::time::Instant::now();
    for _ in 0..creates {
        fleet.one_op();
    }
    let elapsed = t0.elapsed();
    let hot = net.hot_path() - hot0;
    let measure = HotPathMeasure {
        ops: creates as u64,
        elapsed,
        fresh_allocs: pool.fresh_allocs() - allocs0,
        pool_takes: pool.takes() - takes0,
        oneway_evals: hot.oneway_evals,
        frames: hot.frames_sent,
        hot_locks: pool.lock_acquisitions() - locks0,
    };

    net.set_latency(Duration::ZERO);
    fleet.stop();
    measure
}

/// The full metered-create party set of [`hot_path_round`] — bank,
/// quota'd file server, hammering client — as a reusable fleet, so the
/// contended leg can stand up one fleet per core against a shared
/// [`BufPool`](amoeba_net::BufPool).
pub struct HotPathFleet {
    fs: amoeba_flatfs::FlatFsClient,
    wallet: amoeba_cap::Capability,
    runner: amoeba_server::ServiceRunner,
    bank_runner: amoeba_server::ServiceRunner,
}

impl std::fmt::Debug for HotPathFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotPathFleet").finish_non_exhaustive()
    }
}

impl HotPathFleet {
    /// Stands the fleet up on `net` with every party sharing `codec`'s
    /// pool. `legacy` selects uncached F-boxes (the pre-PR baseline);
    /// otherwise the parties run behind memoized hardware F-boxes.
    pub fn build(net: &Network, codec: amoeba_rpc::CodecConfig, legacy: bool) -> HotPathFleet {
        use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
        use amoeba_cap::schemes::SchemeKind as Kind;
        use amoeba_crypto::oneway::ShaOneWay;
        use amoeba_fbox::FBox;
        use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
        use amoeba_net::Endpoint;
        use amoeba_rpc::Client;
        use amoeba_server::{ServiceClient, ServiceRunner};
        use std::sync::Arc;

        let patient = amoeba_rpc::RpcConfig {
            timeout: Duration::from_secs(30),
            attempts: 2,
        };
        let attach_fbox = |net: &Network| -> Endpoint {
            if legacy {
                net.attach(Arc::new(FBox::uncached(ShaOneWay)))
            } else {
                net.attach(Arc::new(FBox::hardware(ShaOneWay)))
            }
        };
        let mut rng = bench_rng();

        let (bank_server, treasury_rx) =
            BankServer::new(vec![Currency::convertible("dollar", 1)], Kind::OneWay);
        let bank_runner = ServiceRunner::spawn_workers_with_codec(
            attach_fbox(net),
            Port::random(&mut rng),
            bank_server,
            1,
            codec.clone(),
        );
        let bank_port = bank_runner.put_port();
        let treasury = treasury_rx.recv().expect("treasury cap");
        let svc_client = |net: &Network| {
            ServiceClient::with_client(
                Client::with_config(attach_fbox(net), patient).with_codec(codec.clone()),
            )
        };
        let bank = BankClient::with_service(svc_client(net), bank_port);
        let server_account = bank.open_account().expect("server account");
        let wallet = bank.open_account().expect("wallet");
        bank.mint(&treasury, &wallet, CurrencyId(0), 1_000_000)
            .expect("mint");

        let runner = ServiceRunner::spawn_workers_with_codec(
            attach_fbox(net),
            Port::random(&mut rng),
            FlatFsServer::with_quota(
                Kind::OneWay,
                QuotaPolicy {
                    bank: BankClient::with_service(svc_client(net), bank_port),
                    server_account,
                    currency: CurrencyId(0),
                    price_per_kib: 1,
                },
            ),
            2,
            codec.clone(),
        );
        let fs = FlatFsClient::with_service(svc_client(net), runner.put_port());
        HotPathFleet {
            fs,
            wallet,
            runner,
            bank_runner,
        }
    }

    /// One operation: a paid create and its destroy.
    pub fn one_op(&self) {
        let cap = self
            .fs
            .create_paid(&self.wallet, 1)
            .expect("metered create");
        self.fs.destroy(&cap).expect("destroy");
    }

    /// Stops both runners.
    pub fn stop(self) {
        self.runner.stop();
        self.bank_runner.stop();
    }
}

/// The contended leg: `threads` independent metered-create fleets, each
/// on its own virtual network, all sharing **one**
/// [`BufPool`](amoeba_net::BufPool) — the shared structure whose lock
/// behaviour is under test. Threads warm up, rendezvous on a barrier,
/// then hammer concurrently; the returned measure aggregates every
/// fleet's ops over the contended wall-clock window, with `hot_locks`
/// diffed from the shared pool's fleet meter.
///
/// With the lock-free demux and thread-local pool caches the fleets
/// share no hot lock, so throughput should scale with cores (the CI
/// gate wants ≥1.5× from one thread to two on a 2-core runner).
pub fn contended_hot_path(threads: usize, warmup: usize, creates: usize) -> HotPathMeasure {
    use std::sync::{Arc, Barrier};

    let codec = amoeba_rpc::CodecConfig::default();
    let pool = codec.pool.clone();
    // Three rendezvous: fleets warm → counters snapshotted, go → done.
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let codec = codec.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let net = Network::new_virtual();
                let fleet = HotPathFleet::build(&net, codec, false);
                net.set_latency(METERED_HOP_LATENCY);
                for _ in 0..warmup {
                    fleet.one_op();
                }
                barrier.wait();
                barrier.wait();
                let hot0 = net.hot_path();
                for _ in 0..creates {
                    fleet.one_op();
                }
                let hot = net.hot_path() - hot0;
                barrier.wait();
                net.set_latency(Duration::ZERO);
                fleet.stop();
                hot
            })
        })
        .collect();

    barrier.wait();
    let allocs0 = pool.fresh_allocs();
    let takes0 = pool.takes();
    let locks0 = pool.lock_acquisitions();
    let t0 = std::time::Instant::now();
    barrier.wait();
    barrier.wait();
    let elapsed = t0.elapsed();
    let fresh_allocs = pool.fresh_allocs() - allocs0;
    let pool_takes = pool.takes() - takes0;
    let hot_locks = pool.lock_acquisitions() - locks0;
    let mut oneway_evals = 0;
    let mut frames = 0;
    for handle in handles {
        let hot = handle.join().expect("contended fleet thread");
        oneway_evals += hot.oneway_evals;
        frames += hot.frames_sent;
    }
    HotPathMeasure {
        ops: (threads * creates) as u64,
        elapsed,
        fresh_allocs,
        pool_takes,
        oneway_evals,
        frames,
        hot_locks,
    }
}

/// One §3.6 metered-create round — every CREATE pays through a nested
/// bank transaction — at [`METERED_HOP_LATENCY`] per hop, on whichever
/// clock `net` carries. Returns the **real wall-clock** the round
/// took; under `Network::new_virtual()` the hops are timeline jumps,
/// under `Network::new()` they are slept out. Shared by the
/// `reactor_transport` bench and the `tests/scale.rs` ≥10× acceptance
/// gate so both measure the identical workload.
pub fn metered_create_round(net: &Network, creates: usize) -> Duration {
    use amoeba_bank::{BankClient, Currency, CurrencyId};
    use amoeba_cap::schemes::SchemeKind as Kind;
    use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
    use amoeba_server::{ServiceClient, ServiceRunner};

    let patient = amoeba_rpc::RpcConfig {
        timeout: Duration::from_secs(30),
        attempts: 2,
    };
    let (bank_server, treasury_rx) =
        amoeba_bank::BankServer::new(vec![Currency::convertible("dollar", 1)], Kind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(net, bank_server);
    let treasury = treasury_rx.recv().expect("treasury cap");
    let bank = BankClient::open(net, bank_runner.put_port());
    let server_account = bank.open_account().expect("server account");
    let wallet = bank.open_account().expect("wallet");
    bank.mint(&treasury, &wallet, CurrencyId(0), 100_000)
        .expect("mint");
    let runner = ServiceRunner::spawn_open_workers(
        net,
        FlatFsServer::with_quota(
            Kind::OneWay,
            QuotaPolicy {
                bank: BankClient::with_service(
                    ServiceClient::open_with_config(net, patient),
                    bank_runner.put_port(),
                ),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
        2,
    );
    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(net, patient),
        runner.put_port(),
    );
    net.set_latency(METERED_HOP_LATENCY);
    let t0 = std::time::Instant::now();
    for _ in 0..creates {
        let cap = fs.create_paid(&wallet, 1).expect("metered create");
        fs.destroy(&cap).expect("destroy");
    }
    let elapsed = t0.elapsed();
    net.set_latency(Duration::ZERO);
    runner.stop();
    bank_runner.stop();
    elapsed
}
