//! Dispatch concurrency: the worker-pool engine and the lock-striped
//! object table, measured against their serialised baselines.
//!
//! Two experiments:
//!
//! * **worker-pool** — eight clients drive metered CREATE/DESTROY
//!   against one quota-enforcing `FlatFsServer` over a network with
//!   per-hop latency. Every CREATE blocks its dispatch worker on a
//!   nested bank RPC (the §3.6 pre-payment), so a single worker
//!   serialises those waits while a pool overlaps them — multi-worker
//!   throughput must beat single-worker even on a single-core host.
//! * **table** — eight threads perform mutating object-table operations
//!   directly (no network) against a legacy single-shard table vs the
//!   striped default, isolating the lock-contention component. (On a
//!   single hardware thread the two tie; the striping payoff appears
//!   with real parallelism.)

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
use amoeba_net::{Network, Port};
use amoeba_server::{ObjectTable, ServiceRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const CLIENT_THREADS: usize = 8;
const CALLS_PER_CLIENT: usize = 2;
const TABLE_THREADS: usize = 8;
const OPS_PER_TABLE_THREAD: usize = 2000;

/// Eight clients doing metered creates: the handler blocks on a bank
/// round-trip per request, so worker count is what scales throughput.
fn bench_worker_pool(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "dispatch/worker-pool");
    for workers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("metered-create", workers),
            &workers,
            |b, &workers| {
                let net = Network::new();
                // The bank and its accounts.
                let (bank_server, treasury_rx) =
                    BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
                let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
                let bank_port = bank_runner.put_port();
                let treasury = treasury_rx.recv().unwrap();
                let bank = BankClient::open(&net, bank_port);
                let server_account = bank.open_account().unwrap();

                // The metered file server under test.
                let runner = ServiceRunner::spawn_open_workers(
                    &net,
                    FlatFsServer::with_quota(
                        SchemeKind::OneWay,
                        QuotaPolicy {
                            bank: BankClient::open(&net, bank_port),
                            server_account,
                            currency: CurrencyId(0),
                            price_per_kib: 1,
                        },
                    ),
                    workers,
                );
                let port = runner.put_port();

                // One funded wallet per client. DESTROY refunds the
                // unused quota, so balances are steady across
                // iterations.
                let wallets: Arc<Vec<Capability>> = Arc::new(
                    (0..CLIENT_THREADS)
                        .map(|_| {
                            let w = bank.open_account().unwrap();
                            bank.mint(&treasury, &w, CurrencyId(0), 100).unwrap();
                            w
                        })
                        .collect(),
                );

                // Only now add wire latency: every nested bank RPC
                // parks the dispatch worker for two hops.
                net.set_latency(Duration::from_millis(2));
                b.iter(|| {
                    let handles: Vec<_> = (0..CLIENT_THREADS)
                        .map(|t| {
                            let net = net.clone();
                            let wallets = Arc::clone(&wallets);
                            std::thread::spawn(move || {
                                let fs = FlatFsClient::open(&net, port);
                                for _ in 0..CALLS_PER_CLIENT {
                                    let cap = fs.create_paid(&wallets[t], 1).unwrap();
                                    black_box(&cap);
                                    fs.destroy(&cap).unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
                net.set_latency(Duration::ZERO);
                runner.stop();
                bank_runner.stop();
            },
        );
    }
    g.finish();
}

/// Direct object-table contention: every operation needs the shard's
/// write lock, so one shard serialises all eight threads while sixteen
/// shards let distinct objects proceed in parallel.
fn bench_table_striping(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "dispatch/table");
    for shards in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("mutate-contended", shards),
            &shards,
            |b, &shards| {
                let table: Arc<ObjectTable<u64>> = Arc::new(ObjectTable::with_shards(
                    SchemeKind::Commutative.instantiate(),
                    shards,
                ));
                table.set_port(Port::new(0xD15B).unwrap());
                let caps: Arc<Vec<Capability>> = Arc::new(
                    (0..TABLE_THREADS * 8)
                        .map(|i| table.create(i as u64).1)
                        .collect(),
                );
                b.iter(|| {
                    let handles: Vec<_> = (0..TABLE_THREADS)
                        .map(|t| {
                            let table = Arc::clone(&table);
                            let caps = Arc::clone(&caps);
                            std::thread::spawn(move || {
                                // Each thread mutates its own slice of
                                // the object space.
                                for i in 0..OPS_PER_TABLE_THREAD {
                                    let cap = &caps[t * 8 + (i & 7)];
                                    table
                                        .with_object_mut(cap, Rights::WRITE, |v| {
                                            *v = v.wrapping_add(1)
                                        })
                                        .unwrap();
                                    black_box(table.validate(cap).unwrap());
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_worker_pool, bench_table_striping);
criterion_main!(benches);
