//! Ablation bench: the from-scratch cryptographic primitives.
//!
//! Everything in the Amoeba design reduces to these operations; their
//! relative costs explain every row of E1/E5. Also compares the
//! historical (Purdy, DES) and modern (SHA-256) constructions, and 3DES
//! as the drop-in matrix strengthening.

use amoeba_bench::cpu_group;
use amoeba_crypto::commutative::CommutativeOwfFamily;
use amoeba_crypto::des::{Des, TripleDes};
use amoeba_crypto::feistel::{Block56, Cipher56, Feistel56};
use amoeba_crypto::oneway::{OneWay, PurdyOneWay, ShaOneWay};
use amoeba_crypto::sha256::Sha256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sha256_throughput(c: &mut Criterion) {
    let mut g = cpu_group(c, "crypto/sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xAAu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(Sha256::digest(&data)))
        });
    }
    g.finish();
}

fn bench_des_family(c: &mut Criterion) {
    let mut g = cpu_group(c, "crypto/des");
    let des = Des::new(0x0123_4567_89AB_CDEF);
    let tdes = TripleDes::two_key(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);
    g.bench_function("des-block", |b| {
        b.iter(|| black_box(des.encrypt_block(black_box(42))))
    });
    g.bench_function("3des-block", |b| {
        b.iter(|| black_box(tdes.encrypt_block(black_box(42))))
    });
    let payload = vec![0x55u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("des-cbc-1KiB", |b| {
        b.iter(|| black_box(des.encrypt_cbc(&payload, 7)))
    });
    g.finish();
}

fn bench_feistel56(c: &mut Criterion) {
    let mut g = cpu_group(c, "crypto/feistel56");
    let cipher = Feistel56::new(0xDEAD_BEEF);
    let block = Block56::truncate(0x1234_5678_9ABC);
    g.bench_function("encrypt", |b| b.iter(|| black_box(cipher.encrypt(block))));
    g.bench_function("key-setup", |b| {
        b.iter(|| black_box(Feistel56::new(black_box(0xDEAD_BEEF))))
    });
    g.finish();
}

fn bench_oneway_ablation(c: &mut Criterion) {
    // The DESIGN.md ablation: historical vs modern port OWF.
    let mut g = cpu_group(c, "crypto/port-owf");
    let sha = ShaOneWay;
    let purdy = PurdyOneWay::new();
    g.bench_function("sha256-48bit", |b| {
        b.iter(|| black_box(sha.apply48(black_box(0xF00D))))
    });
    g.bench_function("purdy-48bit", |b| {
        b.iter(|| black_box(purdy.apply48(black_box(0xF00D))))
    });
    g.finish();
}

fn bench_commutative_owf(c: &mut Criterion) {
    let mut g = cpu_group(c, "crypto/commutative-owf");
    let fam = CommutativeOwfFamily::standard();
    g.bench_function("single-apply", |b| {
        b.iter(|| black_box(fam.apply(3, black_box(0x1234_5678))))
    });
    g.bench_function("apply-all-8", |b| {
        b.iter(|| black_box(fam.apply_mask(0xFF, black_box(0x1234_5678))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256_throughput,
    bench_des_family,
    bench_feistel56,
    bench_oneway_ablation,
    bench_commutative_owf
);
criterion_main!(benches);
