//! Reactor transport: what the virtual clock buys in wall-clock terms,
//! and how many services a small driver pool can carry.
//!
//! Two experiments:
//!
//! * **virtual-vs-wall / metered-create** — the §3.6 metered-create
//!   workload (every CREATE pays through a nested bank transaction) at
//!   2 ms per hop, run once on the wall clock (hops are real sleeps)
//!   and once on the virtual clock (hops are timeline jumps), with
//!   identical request counts and reply contents. The acceptance bar
//!   (asserted in `tests/scale.rs`) is a ≥10× wall-clock speedup; the
//!   virtual figure takes the fastest of three runs since host
//!   scheduling can only slow a virtual run down.
//! * **driver-pool density** — `spawn_reactor` drives 64 services on 4
//!   driver threads through the scale hammer (8 client threads
//!   spraying echo traffic across every port); the headline is
//!   services per driver thread, the regression guard is that the
//!   hammer completes at all (no deadlock).
//!
//! Besides stdout, the run writes the headline numbers to
//! `BENCH_reactor.json` (override the path with `BENCH_REACTOR_OUT`)
//! so CI can archive the perf trajectory. The JSON is written in both
//! smoke and measure modes — the numbers come from direct wall-clock
//! measurement, not the criterion harness.

use amoeba_bench::METERED_HOP_LATENCY;
use amoeba_net::Network;
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{RequestCtx, Service, ServiceClient, ServiceRunner};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const CREATES: usize = 16;
const POOL_SERVICES: usize = 64;
const POOL_DRIVERS: usize = 4;

/// A stateless echo used for the driver-pool density hammer.
struct Echo;

impl Service for Echo {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if req.command == 1 {
            Reply::ok(req.params.clone())
        } else {
            Reply::status(Status::BadCommand)
        }
    }
}

/// Hammers a reactor pool of `services` echoes on `drivers` threads;
/// returns the wall-clock for the whole hammer.
fn pool_hammer(services: usize, drivers: usize) -> Duration {
    const CLIENTS: usize = 8;
    const CALLS: usize = 24;
    let net = Network::new();
    let boxed: Vec<Box<dyn Service>> = (0..services)
        .map(|_| Box::new(Echo) as Box<dyn Service>)
        .collect();
    let pool = ServiceRunner::spawn_reactor(&net, boxed, drivers);
    let ports = pool.put_ports().to_vec();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let net = net.clone();
            let ports = ports.clone();
            std::thread::spawn(move || {
                let client = ServiceClient::open(&net);
                for i in 0..CALLS {
                    let port = ports[(t * 11 + i * 7) % ports.len()];
                    let body = Bytes::from((i as u32).to_be_bytes().to_vec());
                    assert_eq!(client.call_anonymous(port, 1, body.clone()).unwrap(), body);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();
    pool.stop();
    elapsed
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "reactor-transport");
    g.sample_size(10);
    g.bench_function("metered-create/virtual", |b| {
        b.iter(|| amoeba_bench::metered_create_round(&Network::new_virtual(), CREATES))
    });
    g.finish();
}

fn report_headline_numbers() {
    let wall = amoeba_bench::metered_create_round(&Network::new(), CREATES);
    let virt = (0..3)
        .map(|_| amoeba_bench::metered_create_round(&Network::new_virtual(), CREATES))
        .min()
        .unwrap();
    let ratio = wall.as_secs_f64() / virt.as_secs_f64();
    let hammer = pool_hammer(POOL_SERVICES, POOL_DRIVERS);

    println!(
        "reactor-transport/metered-create ({CREATES} creates at \
         {METERED_HOP_LATENCY:?}/hop): wall {wall:?}, virtual {virt:?} ({ratio:.1}x)"
    );
    println!(
        "reactor-transport/driver-pool: {POOL_SERVICES} services on \
         {POOL_DRIVERS} drivers ({} services/driver), hammer {hammer:?}",
        POOL_SERVICES / POOL_DRIVERS
    );

    let json = format!(
        "{{\n  \"workload\": \"metered-create\",\n  \"creates\": {CREATES},\n  \
         \"hop_latency_ms\": {},\n  \"wall_clock_ms\": {:.3},\n  \
         \"virtual_clock_ms\": {:.3},\n  \"virtual_speedup\": {:.3},\n  \
         \"pool_services\": {POOL_SERVICES},\n  \"pool_drivers\": {POOL_DRIVERS},\n  \
         \"services_per_driver\": {},\n  \"pool_hammer_ms\": {:.3}\n}}\n",
        METERED_HOP_LATENCY.as_millis(),
        wall.as_secs_f64() * 1e3,
        virt.as_secs_f64() * 1e3,
        ratio,
        POOL_SERVICES / POOL_DRIVERS,
        hammer.as_secs_f64() * 1e3,
    );
    let out = std::env::var("BENCH_REACTOR_OUT").unwrap_or_else(|_| "BENCH_reactor.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("reactor-transport: wrote {out}"),
        Err(e) => println!("reactor-transport: could not write {out}: {e}"),
    }
}

fn bench_reactor(c: &mut Criterion) {
    bench_rounds(c);
    report_headline_numbers();
}

criterion_group!(benches, bench_reactor);
criterion_main!(benches);
