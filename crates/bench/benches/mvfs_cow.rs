//! Experiment **E9** — copy-on-write versions and atomic commit (§3.5).
//!
//! "The new version acts like it is a page-by-page copy of the original,
//! although in fact, pages are only copied when they are changed." The
//! sweep over file size compares the paper's design (derive version,
//! touch 1 page, commit) against the naive page-by-page copy it
//! replaces; the gap should grow linearly with file size while the COW
//! path stays flat. Sharing ratios are printed alongside.

use amoeba_bench::net_group;
use amoeba_cap::schemes::SchemeKind;
use amoeba_mvfs::{MvfsClient, MvfsServer};
use amoeba_net::Network;
use amoeba_server::ServiceRunner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cow_vs_full_copy(c: &mut Criterion) {
    let mut g = net_group(c, "E9/new-version-modify-commit");
    g.sample_size(10);

    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
    let fs = MvfsClient::open(&net, runner.put_port());

    for pages in [16u32, 64, 256] {
        // A committed file of `pages` 1 KiB pages.
        let file = fs.create_file().unwrap();
        let base = fs.new_version(&file).unwrap();
        let payload = vec![0x5Au8; 1024];
        for p in 0..pages {
            fs.write_page(&base, p, &payload).unwrap();
        }
        fs.commit(&base).unwrap();

        // Paper's path: COW version, modify one page, commit.
        g.bench_with_input(BenchmarkId::new("cow", pages), &pages, |b, _| {
            b.iter(|| {
                let v = fs.new_version(&file).unwrap();
                fs.write_page(&v, pages / 2, b"edited").unwrap();
                fs.commit(&v).unwrap();
                black_box(v)
            })
        });

        // Report the sharing ratio once per size.
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, b"probe").unwrap();
        let info = fs.version_info(&v).unwrap();
        println!(
            "E9 sharing: {pages}-page file, 1 page modified => {}/{} pages shared",
            info.shared_with_head, info.pages
        );

        // Baseline: what a versioning file server WITHOUT COW must do —
        // physically rewrite every page into the new version.
        g.bench_with_input(BenchmarkId::new("full-copy", pages), &pages, |b, _| {
            b.iter(|| {
                let v = fs.new_version(&file).unwrap();
                for p in 0..pages {
                    fs.write_page(&v, p, &payload).unwrap();
                }
                fs.write_page(&v, pages / 2, b"edited").unwrap();
                fs.commit(&v).unwrap();
                black_box(v)
            })
        });
    }
    g.finish();
    runner.stop();
}

fn bench_commit_conflict_detection(c: &mut Criterion) {
    // The optimistic-concurrency check itself: deriving and committing
    // competing versions, where exactly one of each pair must lose.
    let mut g = net_group(c, "E9/optimistic-concurrency");
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::OneWay));
    let fs = MvfsClient::open(&net, runner.put_port());
    let file = fs.create_file().unwrap();
    let v0 = fs.new_version(&file).unwrap();
    fs.write_page(&v0, 0, b"seed").unwrap();
    fs.commit(&v0).unwrap();

    g.bench_function("winner-and-loser-pair", |b| {
        b.iter(|| {
            let a = fs.new_version(&file).unwrap();
            let b2 = fs.new_version(&file).unwrap();
            fs.write_page(&a, 0, b"A").unwrap();
            fs.write_page(&b2, 0, b"B").unwrap();
            let first = fs.commit(&a);
            let second = fs.commit(&b2);
            assert!(first.is_ok());
            assert!(second.is_err(), "second committer must conflict");
            black_box((first, second))
        })
    });
    g.finish();
    runner.stop();
}

criterion_group!(
    benches,
    bench_cow_vs_full_copy,
    bench_commit_conflict_detection
);
criterion_main!(benches);
