//! Capability-VFS path benchmarks: what the batched RESOLVE, the
//! extent allocator and the client-side capability cache buy.
//!
//! Three legs, all on the virtual clock so "latency" is the modeled
//! per-frame hop cost and frame counts are exact:
//!
//! * **deep-tree** — a depth-8 directory chain straddling two servers.
//!   The per-segment `walk` pays one round-trip per component; the
//!   batched `resolve` pays one per *hop-chain* (two here: the chain
//!   crosses servers once). Reports frames and virtual-time p50/p99
//!   per operation over a mixed-depth workload.
//! * **extent-write** — a 64-block file write against the block
//!   server: one `ALLOC_N` round-trip plus one scatter round-trip,
//!   regardless of block count. Reports frames and disk round-trips.
//! * **cache** — repeat resolution with the capability cache warm:
//!   zero frames, reported as real ns/hit.
//!
//! Besides stdout, the headline numbers go to `BENCH_vfs.json`
//! (override with `BENCH_VFS_OUT`); CI archives the file and gates the
//! deep-tree frame reduction against `crates/bench/vfs_baseline.json`.

use amoeba_block::BlockServer;
use amoeba_block::DiskConfig;
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_dirsvr::{DirClient, DirServer};
use amoeba_flatfs::{BlockFlatFsServer, FlatFsClient};
use amoeba_net::Network;
use amoeba_server::ServiceRunner;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const DEPTH: usize = 8;
const HOP_LATENCY: Duration = Duration::from_millis(1);
const MIXED_OPS: usize = 64;

fn frames(net: &Network) -> u64 {
    net.stats().snapshot().packets_sent
}

fn virtual_nanos(dirs: &DirClient) -> u64 {
    dirs.service()
        .rpc()
        .endpoint()
        .now()
        .since_epoch()
        .as_nanos() as u64
}

/// Builds the depth-8 chain with the first half on server 1 and the
/// second half on server 2; returns the runners, a plain client, the
/// root and the full path.
fn deep_tree(net: &Network) -> (ServiceRunner, ServiceRunner, DirClient, Capability, String) {
    let s1 = ServiceRunner::spawn_open(net, DirServer::new(SchemeKind::OneWay));
    let s2 = ServiceRunner::spawn_open(net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(net, s1.put_port());
    let root = dirs.create_dir_on(s1.put_port()).unwrap();
    let mut current = root;
    let mut segments = Vec::new();
    for i in 0..DEPTH {
        let port = if i < DEPTH / 2 {
            s1.put_port()
        } else {
            s2.put_port()
        };
        let next = dirs.create_dir_on(port).unwrap();
        dirs.enter(&current, &format!("seg{i}"), &next).unwrap();
        segments.push(format!("seg{i}"));
        current = next;
    }
    (s1, s2, dirs, root, segments.join("/"))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct DeepTreeNumbers {
    walk_frames: u64,
    resolve_frames: u64,
    reduction: f64,
    walk_p50_ms: f64,
    walk_p99_ms: f64,
    resolve_p50_ms: f64,
    resolve_p99_ms: f64,
}

/// One timed op at every prefix depth 1..=[`DEPTH`], repeated until
/// [`MIXED_OPS`] samples are in, through `op`; returns sorted virtual
/// latencies.
fn mixed_latencies(
    dirs: &DirClient,
    root: &Capability,
    path: &str,
    op: impl Fn(&DirClient, &Capability, &str),
) -> Vec<u64> {
    let prefixes: Vec<&str> = (1..=DEPTH)
        .map(|d| {
            let end = path
                .match_indices('/')
                .nth(d - 1)
                .map_or(path.len(), |(i, _)| i);
            &path[..end]
        })
        .collect();
    let mut samples = Vec::with_capacity(MIXED_OPS);
    for i in 0..MIXED_OPS {
        let prefix = prefixes[i % prefixes.len()];
        let t0 = virtual_nanos(dirs);
        op(dirs, root, prefix);
        samples.push(virtual_nanos(dirs) - t0);
    }
    samples.sort_unstable();
    samples
}

fn deep_tree_leg() -> DeepTreeNumbers {
    let net = Network::new_virtual();
    net.set_latency(HOP_LATENCY);
    let (s1, s2, dirs, root, path) = deep_tree(&net);

    let before = frames(&net);
    dirs.walk(&root, &path).unwrap();
    let walk_frames = frames(&net) - before;
    let before = frames(&net);
    dirs.resolve(&root, &path).unwrap();
    let resolve_frames = frames(&net) - before;

    let walk = mixed_latencies(&dirs, &root, &path, |d, r, p| {
        d.walk(r, p).unwrap();
    });
    let resolve = mixed_latencies(&dirs, &root, &path, |d, r, p| {
        d.resolve(r, p).unwrap();
    });
    let ms = |ns: u64| ns as f64 / 1e6;
    let numbers = DeepTreeNumbers {
        walk_frames,
        resolve_frames,
        reduction: walk_frames as f64 / resolve_frames.max(1) as f64,
        walk_p50_ms: ms(percentile(&walk, 0.50)),
        walk_p99_ms: ms(percentile(&walk, 0.99)),
        resolve_p50_ms: ms(percentile(&resolve, 0.50)),
        resolve_p99_ms: ms(percentile(&resolve, 0.99)),
    };
    s1.stop();
    s2.stop();
    numbers
}

struct ExtentNumbers {
    blocks: u64,
    frames: u64,
    disk_rtts: u64,
    single_block_frames: u64,
}

fn extent_write_leg() -> ExtentNumbers {
    const BLOCK: u32 = 512;
    const BLOCKS: u64 = 64;
    let net = Network::new_virtual();
    let disk = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: BLOCK,
                capacity_blocks: 256,
            },
            SchemeKind::OneWay,
        ),
    );
    let fs_runner = ServiceRunner::spawn_open(
        &net,
        BlockFlatFsServer::new(&net, disk.put_port(), SchemeKind::Commutative),
    );
    let fs = FlatFsClient::open(&net, fs_runner.put_port());

    let cap = fs.create().unwrap();
    let body = vec![7u8; (BLOCKS * BLOCK as u64) as usize];
    let before = frames(&net);
    fs.write(&cap, 0, &body).unwrap();
    let write_frames = frames(&net) - before;

    let single = fs.create().unwrap();
    let before = frames(&net);
    fs.write(&single, 0, &body[..BLOCK as usize]).unwrap();
    let single_block_frames = frames(&net) - before;

    let numbers = ExtentNumbers {
        blocks: BLOCKS,
        frames: write_frames,
        // Total frames minus the client's own round-trip, in
        // round-trips: how often the file server hit the disk.
        disk_rtts: write_frames.saturating_sub(2) / 2,
        single_block_frames,
    };
    fs_runner.stop();
    disk.stop();
    numbers
}

struct CacheNumbers {
    hits: u64,
    ns_per_hit: f64,
    frames_per_hit: f64,
}

fn cache_leg() -> CacheNumbers {
    const HITS: u64 = 50_000;
    let net = Network::new_virtual();
    let (s1, s2, dirs, root, path) = deep_tree(&net);
    let cached = DirClient::open(&net, s1.put_port()).with_cache(Duration::from_secs(3600));
    cached.resolve(&root, &path).unwrap(); // warm
    drop(dirs);

    let before = frames(&net);
    let t0 = std::time::Instant::now();
    for _ in 0..HITS {
        cached.resolve(&root, &path).unwrap();
    }
    let elapsed = t0.elapsed();
    let numbers = CacheNumbers {
        hits: HITS,
        ns_per_hit: elapsed.as_nanos() as f64 / HITS as f64,
        frames_per_hit: (frames(&net) - before) as f64 / HITS as f64,
    };
    s1.stop();
    s2.stop();
    numbers
}

fn report_headline_numbers() {
    let deep = deep_tree_leg();
    println!(
        "vfs-paths/deep-tree: depth {DEPTH}, walk {} frames vs resolve {} \
         ({:.1}x fewer); virtual p50/p99 walk {:.1}/{:.1} ms, resolve {:.1}/{:.1} ms",
        deep.walk_frames,
        deep.resolve_frames,
        deep.reduction,
        deep.walk_p50_ms,
        deep.walk_p99_ms,
        deep.resolve_p50_ms,
        deep.resolve_p99_ms,
    );
    let extent = extent_write_leg();
    println!(
        "vfs-paths/extent-write: {} blocks in {} frames ({} disk round-trips; \
         single block {} frames)",
        extent.blocks, extent.frames, extent.disk_rtts, extent.single_block_frames,
    );
    let cache = cache_leg();
    println!(
        "vfs-paths/cache: {} hits at {:.0} ns/hit, {:.3} frames/hit",
        cache.hits, cache.ns_per_hit, cache.frames_per_hit,
    );

    let json = format!(
        "{{\n  \"workload\": \"capability VFS paths\",\n  \
         \"hop_latency_ms\": {},\n  \
         \"deep_tree\": {{\n    \"depth\": {DEPTH},\n    \"walk_frames\": {},\n    \
         \"resolve_frames\": {},\n    \"frame_reduction\": {:.2},\n    \
         \"walk_p50_ms\": {:.3},\n    \"walk_p99_ms\": {:.3},\n    \
         \"resolve_p50_ms\": {:.3},\n    \"resolve_p99_ms\": {:.3}\n  }},\n  \
         \"extent_write\": {{\n    \"blocks\": {},\n    \"frames\": {},\n    \
         \"disk_rtts\": {},\n    \"single_block_frames\": {}\n  }},\n  \
         \"cache\": {{\n    \"hits\": {},\n    \"ns_per_hit\": {:.0},\n    \
         \"frames_per_hit\": {:.3}\n  }}\n}}\n",
        HOP_LATENCY.as_millis(),
        deep.walk_frames,
        deep.resolve_frames,
        deep.reduction,
        deep.walk_p50_ms,
        deep.walk_p99_ms,
        deep.resolve_p50_ms,
        deep.resolve_p99_ms,
        extent.blocks,
        extent.frames,
        extent.disk_rtts,
        extent.single_block_frames,
        cache.hits,
        cache.ns_per_hit,
        cache.frames_per_hit,
    );
    let out = std::env::var("BENCH_VFS_OUT").unwrap_or_else(|_| "BENCH_vfs.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("vfs-paths: wrote {out}"),
        Err(e) => println!("vfs-paths: could not write {out}: {e}"),
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "vfs-paths");
    g.sample_size(10);
    g.bench_function("resolve/depth8", |b| {
        let net = Network::new_virtual();
        let (_s1, _s2, dirs, root, path) = deep_tree(&net);
        b.iter(|| dirs.resolve(&root, &path).unwrap())
    });
    g.bench_function("walk/depth8", |b| {
        let net = Network::new_virtual();
        let (_s1, _s2, dirs, root, path) = deep_tree(&net);
        b.iter(|| dirs.walk(&root, &path).unwrap())
    });
    g.finish();
}

fn bench_vfs_paths(c: &mut Criterion) {
    bench_rounds(c);
    report_headline_numbers();
}

criterion_group!(benches, bench_vfs_paths);
criterion_main!(benches);
