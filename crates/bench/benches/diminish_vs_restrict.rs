//! Experiment **E2** — "without going back to the server".
//!
//! Schemes 1 and 2 need a server round trip (STD_RESTRICT) to hand out
//! a weaker capability; scheme 3 diminishes locally. This bench sweeps
//! the simulated network latency and shows the gap growing from "a few
//! microseconds of modexp vs a round trip" at zero latency to orders of
//! magnitude once the wire costs anything — the paper's whole argument
//! for commutative one-way functions.

use amoeba_bench::net_group;
use amoeba_cap::schemes::{CommutativeScheme, ProtectionScheme, SchemeKind};
use amoeba_cap::Rights;
use amoeba_flatfs::{FlatFsClient, FlatFsServer};
use amoeba_net::Network;
use amoeba_server::{ServiceClient, ServiceRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_delegation(c: &mut Criterion) {
    let mut g = net_group(c, "E2/delegate-read-only");
    g.sample_size(10);

    for latency_us in [0u64, 200, 1000] {
        let net = Network::new();
        net.set_latency(Duration::from_micros(latency_us));
        let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
        let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());
        let cap = fs.create().expect("create");
        let scheme = CommutativeScheme::standard();
        let drop = Rights::ALL.without(Rights::READ);

        // Scheme 3: client-side diminish — no traffic at all.
        g.bench_with_input(
            BenchmarkId::new("scheme3-local-diminish", format!("{latency_us}us")),
            &latency_us,
            |b, _| b.iter(|| black_box(scheme.diminish(&cap, drop).unwrap())),
        );

        // Schemes 1/2 path: STD_RESTRICT RPC to the server.
        g.bench_with_input(
            BenchmarkId::new("server-restrict-rpc", format!("{latency_us}us")),
            &latency_us,
            |b, _| b.iter(|| black_box(fs.service().restrict(&cap, Rights::READ).unwrap())),
        );

        runner.stop();
    }
    g.finish();
}

criterion_group!(benches, bench_delegation);
criterion_main!(benches);
