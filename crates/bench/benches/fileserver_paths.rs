//! Experiment **E8** — flat files + directories with transparent
//! multi-server path walks (§3.3–3.4).
//!
//! Path resolution costs one RPC per component; the sweep over depth
//! shows the linear growth, and splitting the directories across two
//! servers costs nothing extra — the distribution really is transparent.

use amoeba_bench::net_group;
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_dirsvr::{DirClient, DirServer};
use amoeba_flatfs::{FlatFsClient, FlatFsServer};
use amoeba_net::Network;
use amoeba_server::ServiceRunner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Builds a chain root/d0/d1/.../d{depth-1} alternating between the
/// given directory servers; returns (root, path).
fn build_chain(
    dirs: &DirClient,
    server_ports: &[amoeba_net::Port],
    depth: usize,
) -> (Capability, String) {
    let root = dirs.create_dir_on(server_ports[0]).unwrap();
    let mut current = root;
    let mut path = String::new();
    for i in 0..depth {
        let next = dirs
            .create_dir_on(server_ports[i % server_ports.len()])
            .unwrap();
        let name = format!("d{i}");
        dirs.enter(&current, &name, &next).unwrap();
        if i > 0 {
            path.push('/');
        }
        path.push_str(&name);
        current = next;
    }
    (root, path)
}

fn bench_path_walks(c: &mut Criterion) {
    let mut g = net_group(c, "E8/path-walk");
    let net = Network::new();
    let dir1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dir2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(&net, dir1.put_port());

    for depth in [1usize, 2, 4, 8] {
        // Single-server chain.
        let (root1, path1) = build_chain(&dirs, &[dir1.put_port()], depth);
        g.bench_with_input(BenchmarkId::new("one-server", depth), &depth, |b, _| {
            b.iter(|| black_box(dirs.walk(&root1, &path1).unwrap()))
        });

        // Alternating across two servers: same client code.
        let (root2, path2) = build_chain(&dirs, &[dir1.put_port(), dir2.put_port()], depth);
        g.bench_with_input(BenchmarkId::new("two-servers", depth), &depth, |b, _| {
            b.iter(|| black_box(dirs.walk(&root2, &path2).unwrap()))
        });
    }
    g.finish();
    dir1.stop();
    dir2.stop();
}

fn bench_file_io(c: &mut Criterion) {
    let mut g = net_group(c, "E8/flatfile-io");
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs = FlatFsClient::open(&net, runner.put_port());

    for size in [1usize << 10, 16 << 10, 64 << 10] {
        let cap = fs.create().unwrap();
        let data = vec![0xABu8; size];
        fs.write(&cap, 0, &data).unwrap();

        g.bench_with_input(BenchmarkId::new("write", size), &size, |b, _| {
            b.iter(|| black_box(fs.write(&cap, 0, &data).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("read", size), &size, |b, _| {
            b.iter(|| black_box(fs.read(&cap, 0, size as u32).unwrap()))
        });
    }
    g.finish();
    runner.stop();
}

fn bench_open_less_access(c: &mut Criterion) {
    // "The server does not have any concept of an 'open' file": first
    // access to a never-before-seen capability costs the same as the
    // thousandth — there is no session state to set up.
    let mut g = net_group(c, "E8/no-open-state");
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::open(&net, runner.put_port());

    let caps: Vec<Capability> = (0..256)
        .map(|i| {
            let cap = fs.create().unwrap();
            fs.write(&cap, 0, format!("file {i}").as_bytes()).unwrap();
            cap
        })
        .collect();

    g.bench_function("first-touch-rotation", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % caps.len();
            black_box(fs.read(&caps[i], 0, 16).unwrap())
        })
    });
    g.bench_function("same-file-repeat", |b| {
        b.iter(|| black_box(fs.read(&caps[0], 0, 16).unwrap()))
    });
    g.finish();
    runner.stop();
}

criterion_group!(
    benches,
    bench_path_walks,
    bench_file_io,
    bench_open_less_access
);
criterion_main!(benches);
