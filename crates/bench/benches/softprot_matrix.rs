//! Experiments **E5 + E6** — §2.4 software protection costs.
//!
//! E5: DES-sealing capabilities with matrix keys, and the payoff of the
//! client/server capability caches the paper prescribes ("To avoid
//! having to run the encryption/decryption algorithm frequently...").
//! E6: the full public-key key-establishment handshake, the price of a
//! machine (re)joining the network.

use amoeba_bench::{bench_rng, cpu_group};
use amoeba_cap::{Capability, ObjectNum, Rights};
use amoeba_crypto::des::Des;
use amoeba_net::{Network, Port};
use amoeba_softprot::{CapSealer, ClientSession, KeyMatrix, ServerBoot};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample_cap(i: u64) -> Capability {
    Capability::new(
        Port::new(0x5EA1).unwrap(),
        ObjectNum::new((i % 1000) as u32).unwrap(),
        Rights::ALL,
        i.wrapping_mul(0x9E37_79B9),
    )
}

fn bench_raw_des(c: &mut Criterion) {
    let mut g = cpu_group(c, "E5/des");
    let des = Des::new(0x0123_4567_89AB_CDEF);
    g.bench_function("key-schedule", |b| {
        b.iter(|| black_box(Des::new(black_box(0x0123_4567_89AB_CDEF))))
    });
    g.bench_function("seal-128bit-capability", |b| {
        b.iter(|| black_box(des.encrypt_u128(black_box(42))))
    });
    g.finish();
}

fn bench_seal_cache_sweep(c: &mut Criterion) {
    // Hit rates 0/50/90/99%: the workload rotates through a working set
    // sized to produce the desired cache behaviour on a warm sealer.
    let mut g = cpu_group(c, "E5/seal-with-cache");
    let net = Network::new();
    let client = net.attach_open();
    let server = net.attach_open();
    let mut rng = bench_rng();
    let matrix = KeyMatrix::random(&[client.id(), server.id()], &mut rng);

    // Cold: every capability fresh (0% hits).
    g.bench_function("hit-rate-0", |b| {
        let sealer = CapSealer::new(matrix.view_for(client.id()));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sealer.seal(&sample_cap(i), server.id()).unwrap())
        })
    });

    // Warm: one hot capability (≈100% hits).
    g.bench_function("hit-rate-100", |b| {
        let sealer = CapSealer::new(matrix.view_for(client.id()));
        let hot = sample_cap(1);
        sealer.seal(&hot, server.id()).unwrap();
        b.iter(|| black_box(sealer.seal(&hot, server.id()).unwrap()))
    });

    // Mixed: 1 hot : 1 cold (≈50%).
    g.bench_function("hit-rate-50", |b| {
        let sealer = CapSealer::new(matrix.view_for(client.id()));
        let hot = sample_cap(1);
        sealer.seal(&hot, server.id()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let cap = if i.is_multiple_of(2) {
                hot
            } else {
                sample_cap(i + 1000)
            };
            black_box(sealer.seal(&cap, server.id()).unwrap())
        })
    });
    g.finish();
}

fn bench_unseal(c: &mut Criterion) {
    let mut g = cpu_group(c, "E5/unseal");
    let net = Network::new();
    let client = net.attach_open();
    let server = net.attach_open();
    let mut rng = bench_rng();
    let matrix = KeyMatrix::random(&[client.id(), server.id()], &mut rng);
    let client_sealer = CapSealer::new(matrix.view_for(client.id()));
    let server_sealer = CapSealer::new(matrix.view_for(server.id()));

    g.bench_function("cold", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let sealed = client_sealer.seal(&sample_cap(i), server.id()).unwrap();
            black_box(server_sealer.unseal(sealed, client.id()).unwrap())
        })
    });
    g.bench_function("cached", |b| {
        let sealed = client_sealer.seal(&sample_cap(1), server.id()).unwrap();
        server_sealer.unseal(sealed, client.id()).unwrap();
        b.iter(|| black_box(server_sealer.unseal(sealed, client.id()).unwrap()))
    });
    g.finish();
}

fn bench_key_establishment(c: &mut Criterion) {
    let mut g = cpu_group(c, "E6/key-establishment");
    let mut rng = bench_rng();
    let port = Port::new(0xB007).unwrap();

    g.bench_function("server-boot-keygen", |b| {
        b.iter(|| black_box(ServerBoot::new(port, &mut rng)))
    });

    let boot = ServerBoot::new(port, &mut rng);
    g.bench_function("full-handshake", |b| {
        b.iter(|| {
            let (session, keyreq) = ClientSession::start(boot.announcement(), &mut rng);
            let (keyrep, _, _) = boot.handle_keyreq(&keyreq, &mut rng).unwrap();
            black_box(session.finish(&keyrep).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_raw_des,
    bench_seal_cache_sweep,
    bench_unseal,
    bench_key_establishment
);
criterion_main!(benches);
