//! Live rebalancing: Zipf-skewed tenant traffic before and after the
//! load-driven shard repack.
//!
//! The experiment reproduces the situation the migration machinery
//! exists for. Sixteen tenants hit a 4-replica elastic metered flat
//! file cluster; tenant popularity is Zipf(s=1.0), and the tenant→shard
//! placement is adversarial: the four hottest tenants' shards all live
//! on replica 0 (61.6% of all traffic through one single-worker
//! machine, which serialises every metered CREATE on a nested bank
//! round-trip at 2 ms per hop). The run measures:
//!
//! 1. **skewed** — the hammer against the pathological placement;
//! 2. the [`Rebalancer`] reads the per-shard load gauges the hammer
//!    left behind and live-migrates the hot shards apart;
//! 3. **rebalanced** — the identical hammer against the new map.
//!
//! LPT repacking caps the hottest machine near the Zipf head's own
//! mass (~29.6% vs 61.6%), so the modelled speedup is ~2.1×. CI gates
//! the measured `speedup` against the committed floor in
//! `crates/bench/rebalance_baseline.json` (1.5×). Headline numbers go
//! to `BENCH_rebalance.json` (override with `BENCH_REBALANCE_OUT`).

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_cluster::{ElasticCluster, Rebalancer};
use amoeba_flatfs::{ops, FlatFsServer, QuotaPolicy};
use amoeba_net::{Network, Port};
use amoeba_rpc::Client;
use amoeba_server::{placement_range, wire, ServiceClient, ServiceRunner, DEFAULT_SHARDS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPLICAS: usize = 4;
const TENANTS: usize = 16;
const CLIENTS: usize = 24;
const OPS_PER_CLIENT: usize = 8;
const HOP_LATENCY: Duration = Duration::from_millis(2);

/// Tenant rank → home shard. Rank r's shard is `(r % 4) * 4 + r / 4`,
/// so ranks 0–3 (61.6% of Zipf(1.0) mass) map to shards 0, 4, 8, 12 —
/// which the initial `shard % replicas` placement all puts on
/// replica 0. The worst case the planner is supposed to fix.
const RANK_TO_SHARD: [usize; TENANTS] = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-tenant cumulative Zipf(s=1.0) thresholds scaled to 2^32.
fn zipf_thresholds() -> [u64; TENANTS] {
    let h: f64 = (1..=TENANTS).map(|k| 1.0 / k as f64).sum();
    let mut acc = 0.0;
    let mut out = [0u64; TENANTS];
    for (r, slot) in out.iter_mut().enumerate() {
        acc += 1.0 / ((r + 1) as f64 * h);
        *slot = (acc * 4_294_967_296.0) as u64;
    }
    out[TENANTS - 1] = 1 << 32; // close the distribution exactly
    out
}

fn draw_tenant(thresholds: &[u64; TENANTS], rng: &mut u64) -> usize {
    let x = splitmix64(rng) & 0xFFFF_FFFF;
    thresholds.iter().position(|&t| x < t).unwrap()
}

struct Rig {
    net: Network,
    _bank_runner: ServiceRunner,
    cluster: Option<ElasticCluster>,
    wallet: Capability,
    /// Tenant rank → a pre-created file on that tenant's home shard
    /// (the capability whose validation is the per-shard load signal).
    anchors: Vec<Capability>,
}

fn shard_of(cap: &Capability) -> usize {
    placement_range(cap.object, DEFAULT_SHARDS, DEFAULT_SHARDS)
}

fn rig() -> Rig {
    let net = Network::new();
    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, bank_port);
    let server_account = bank.open_account().unwrap();
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), 10_000_000)
        .unwrap();
    let cluster = ElasticCluster::spawn_open(&net, REPLICAS, 1, |_| {
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_port),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        )
    });

    // Pin one anchor file per tenant onto its home shard: each
    // replica's table round-robins creates over its own four mintable
    // shards, so a handful of creates at the owner's port is enough to
    // land one on the wanted shard.
    let svc = ServiceClient::open(&net);
    let ports = cluster.shard_ports();
    let anchors = RANK_TO_SHARD
        .iter()
        .map(|&shard| {
            for _ in 0..4 * DEFAULT_SHARDS {
                let params = wire::Writer::new().cap(&wallet).u64(1).finish();
                let body = svc
                    .call_anonymous(ports[shard], ops::CREATE, params)
                    .unwrap();
                let cap = wire::Reader::new(&body).cap().unwrap();
                if shard_of(&cap) == shard {
                    return cap;
                }
            }
            panic!("shard {shard} never minted an anchor");
        })
        .collect();
    Rig {
        net,
        _bank_runner: bank_runner,
        cluster: Some(cluster),
        wallet,
        anchors,
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.net.set_latency(Duration::ZERO);
        if let Some(c) = self.cluster.take() {
            c.stop();
        }
    }
}

/// CLIENTS threads each perform OPS_PER_CLIENT tenant ops: draw a
/// tenant by Zipf, read its anchor (the load signal the rebalancer
/// sees) and pay for a fresh CREATE — both routed at the tenant
/// shard's *current* owner per the shared port snapshot.
fn hammer(rig: &Rig, seed: u64) {
    let ports: Arc<Vec<Port>> = Arc::new(rig.cluster.as_ref().unwrap().shard_ports());
    let thresholds = zipf_thresholds();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let net = rig.net.clone();
            let ports = Arc::clone(&ports);
            let wallet = rig.wallet;
            let anchors = rig.anchors.clone();
            std::thread::spawn(move || {
                let svc = ServiceClient::open(&net);
                let mut rng = seed ^ ((ci as u64) << 32);
                for _ in 0..OPS_PER_CLIENT {
                    let tenant = draw_tenant(&thresholds, &mut rng);
                    let port = ports[RANK_TO_SHARD[tenant]];
                    svc.call_at(
                        port,
                        &anchors[tenant],
                        ops::READ,
                        wire::Writer::new().u64(0).u32(8).finish(),
                    )
                    .unwrap();
                    let params = wire::Writer::new().cap(&wallet).u64(1).finish();
                    let body = svc.call_anonymous(port, ops::CREATE, params).unwrap();
                    wire::Reader::new(&body).cap().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_skewed(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "rebalance");
    g.bench_function("skewed-create", |b| {
        let rig = rig();
        rig.net.set_latency(HOP_LATENCY);
        b.iter(|| hammer(&rig, 0x2EBA_0001));
    });
    g.finish();
}

/// The headline experiment: one rig, the same hammer before and after
/// the live repack; printed and written to `BENCH_rebalance.json`.
fn report_headline_numbers() {
    let rig = rig();
    let cluster = rig.cluster.as_ref().unwrap();

    rig.net.set_latency(HOP_LATENCY);
    let t0 = Instant::now();
    hammer(&rig, 0x2EBA_0001);
    let skewed = t0.elapsed();
    rig.net.set_latency(Duration::ZERO);

    let loads = cluster.shard_loads();
    let rpc = Client::new(rig.net.attach_open());
    let moves = Rebalancer::default()
        .rebalance(cluster, &rpc)
        .expect("live repack");
    let owners = cluster.owners();

    rig.net.set_latency(HOP_LATENCY);
    let t0 = Instant::now();
    hammer(&rig, 0x2EBA_0001);
    let rebalanced = t0.elapsed();
    rig.net.set_latency(Duration::ZERO);

    let speedup = skewed.as_secs_f64() / rebalanced.as_secs_f64();
    let total_ops = CLIENTS * OPS_PER_CLIENT;
    println!(
        "rebalance/zipf-create/{total_ops}: skewed {skewed:?}, \
         rebalanced {rebalanced:?} ({speedup:.2}x, {} shard moves)",
        moves.len()
    );
    println!("rebalance/loads-before: {loads:?}");
    println!("rebalance/owners-after: {owners:?}");

    let fmt_usizes = |v: &[usize]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"workload\": \"zipf-create\",\n  \"tenants\": {TENANTS},\n  \
         \"zipf_s\": 1.0,\n  \"ops\": {total_ops},\n  \"hop_latency_ms\": {},\n  \
         \"skewed_ms\": {:.3},\n  \"rebalanced_ms\": {:.3},\n  \"speedup\": {:.3},\n  \
         \"moves\": {},\n  \"shard_loads_before\": [{}],\n  \"owners_after\": [{}]\n}}\n",
        HOP_LATENCY.as_millis(),
        skewed.as_secs_f64() * 1e3,
        rebalanced.as_secs_f64() * 1e3,
        speedup,
        moves.len(),
        loads
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        fmt_usizes(&owners),
    );
    let out =
        std::env::var("BENCH_REBALANCE_OUT").unwrap_or_else(|_| "BENCH_rebalance.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("rebalance: wrote {out}"),
        Err(e) => println!("rebalance: could not write {out}: {e}"),
    }
}

fn bench_rebalance(c: &mut Criterion) {
    bench_skewed(c);
    report_headline_numbers();
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
