//! Experiment **E11** — remote process creation (§3.1).
//!
//! "By directing the CREATE SEGMENT requests to a memory server on a
//! remote machine, the parent can create the child wherever it wants
//! to, providing a more convenient and efficient interface than the
//! traditional FORK + EXEC." The comparison: build a 3-segment child
//! directly on the target machine vs the FORK+EXEC shape (build
//! locally, then copy every segment to the target).

use amoeba_bench::net_group;
use amoeba_cap::schemes::SchemeKind;
use amoeba_memsvr::{MemClient, MemServer};
use amoeba_net::Network;
use amoeba_server::{ServiceClient, ServiceRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const SEGMENTS: [(u64, usize); 3] = [(4096, 4096), (2048, 2048), (8192, 0)]; // (size, loaded bytes)

fn build_child(mem: &MemClient, payload: &[u8]) -> amoeba_cap::Capability {
    let mut segs = Vec::new();
    for (size, loaded) in SEGMENTS {
        let seg = mem.create_segment(size).unwrap();
        if loaded > 0 {
            mem.write(&seg, 0, &payload[..loaded]).unwrap();
        }
        segs.push(seg);
    }
    let child = mem.make_process(&segs).unwrap();
    mem.start(&child).unwrap();
    mem.kill(&child).unwrap();
    for seg in segs {
        mem.delete_segment(&seg).unwrap();
    }
    child
}

fn bench_direct_vs_copy(c: &mut Criterion) {
    let mut g = net_group(c, "E11/create-3-segment-process");
    g.sample_size(10);
    let payload = vec![0xC0u8; 4096];

    for latency_us in [0u64, 500] {
        let net = Network::new();
        net.set_latency(Duration::from_micros(latency_us));
        let remote_runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::OneWay));
        let local_runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::OneWay));
        let remote = MemClient::with_service(ServiceClient::open(&net), remote_runner.put_port());
        let local = MemClient::with_service(ServiceClient::open(&net), local_runner.put_port());
        // The parent and the "local" memory server share a machine:
        // traffic between them skips the network latency.
        net.colocate(
            local.service().rpc().endpoint().id(),
            local_runner.machine(),
        );

        // Amoeba path: create + load directly on the remote machine.
        g.bench_with_input(
            BenchmarkId::new("direct-remote", format!("{latency_us}us")),
            &latency_us,
            |b, _| b.iter(|| black_box(build_child(&remote, &payload))),
        );

        // FORK+EXEC shape: build the image locally, then copy every
        // segment's contents over the wire to the remote server.
        g.bench_with_input(
            BenchmarkId::new("build-local-then-copy", format!("{latency_us}us")),
            &latency_us,
            |b, _| {
                b.iter(|| {
                    // Local construction.
                    let mut local_segs = Vec::new();
                    for (size, loaded) in SEGMENTS {
                        let seg = local.create_segment(size).unwrap();
                        if loaded > 0 {
                            local.write(&seg, 0, &payload[..loaded]).unwrap();
                        }
                        local_segs.push(seg);
                    }
                    // Copy to the remote machine (read back + rewrite).
                    let mut remote_segs = Vec::new();
                    for (seg, (size, loaded)) in local_segs.iter().zip(SEGMENTS) {
                        let r = remote.create_segment(size).unwrap();
                        if loaded > 0 {
                            let data = local.read(seg, 0, loaded as u32).unwrap();
                            remote.write(&r, 0, &data).unwrap();
                        }
                        remote_segs.push(r);
                    }
                    let child = remote.make_process(&remote_segs).unwrap();
                    remote.start(&child).unwrap();
                    remote.kill(&child).unwrap();
                    for seg in local_segs.iter().chain(remote_segs.iter()) {
                        let _ = local.delete_segment(seg);
                        let _ = remote.delete_segment(seg);
                    }
                    black_box(child)
                })
            },
        );

        remote_runner.stop();
        local_runner.stop();
    }
    g.finish();
}

criterion_group!(benches, bench_direct_vs_copy);
criterion_main!(benches);
