//! Experiment **E10** — the bank server as the quota mechanism (§3.6).
//!
//! Measures raw transfer throughput, currency conversion, and the full
//! pre-paid file-creation path where the *file server* performs a bank
//! transaction on the client's behalf — the paper's "pre-pay for a
//! substantial amount of work" pattern amortises exactly this cost.

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_bench::net_group;
use amoeba_cap::schemes::SchemeKind;
use amoeba_flatfs::{FlatFsClient, FlatFsServer, QuotaPolicy};
use amoeba_net::Network;
use amoeba_server::{ServiceClient, ServiceRunner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const DOLLAR: CurrencyId = CurrencyId(0);
const YEN: CurrencyId = CurrencyId(1);

fn bank_world(net: &Network) -> (ServiceRunner, BankClient, amoeba_cap::Capability) {
    let (server, treasury_rx) = BankServer::new(
        vec![
            Currency::convertible("dollar", 150),
            Currency::convertible("yen", 1),
        ],
        SchemeKind::Commutative,
    );
    let runner = ServiceRunner::spawn_open(net, server);
    let client = BankClient::open(net, runner.put_port());
    let treasury = treasury_rx.recv().expect("treasury");
    (runner, client, treasury)
}

fn bench_transfers(c: &mut Criterion) {
    let mut g = net_group(c, "E10/bank");
    let net = Network::new();
    let (runner, bank, treasury) = bank_world(&net);

    let a = bank.open_account().unwrap();
    let b_acct = bank.open_account().unwrap();
    bank.mint(&treasury, &a, DOLLAR, u64::MAX / 4).unwrap();
    bank.mint(&treasury, &a, YEN, u64::MAX / 4).unwrap();

    g.bench_function("transfer", |b| {
        b.iter(|| {
            let _: () = bank.transfer(&a, &b_acct, DOLLAR, 1).unwrap();
            black_box(())
        })
    });
    g.bench_function("balance-query", |b| {
        b.iter(|| black_box(bank.balance(&a, DOLLAR).unwrap()))
    });
    g.bench_function("convert", |b| {
        b.iter(|| black_box(bank.convert(&a, DOLLAR, YEN, 1).unwrap()))
    });
    g.finish();
    runner.stop();
}

fn bench_paid_file_creation(c: &mut Criterion) {
    // Create-with-prepayment: one client RPC that triggers one
    // server-to-bank RPC. Compare against unmetered creation to see
    // the quota overhead the pre-pay pattern amortises.
    let mut g = net_group(c, "E10/paid-create");
    g.sample_size(20);
    let net = Network::new();
    let (bank_runner, bank, treasury) = bank_world(&net);

    let fs_account = bank.open_account().unwrap();
    let metered = ServiceRunner::spawn_open(
        &net,
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_runner.put_port()),
                server_account: fs_account,
                currency: DOLLAR,
                price_per_kib: 1,
            },
        ),
    );
    let unmetered = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));

    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, DOLLAR, u64::MAX / 2).unwrap();

    let fs_metered = FlatFsClient::with_service(ServiceClient::open(&net), metered.put_port());
    let fs_free = FlatFsClient::with_service(ServiceClient::open(&net), unmetered.put_port());

    g.bench_function("unmetered-create", |b| {
        b.iter(|| black_box(fs_free.create().unwrap()))
    });
    g.bench_function("metered-create-with-bank-rpc", |b| {
        b.iter(|| black_box(fs_metered.create_paid(&wallet, 4).unwrap()))
    });
    g.finish();

    metered.stop();
    unmetered.stop();
    bank_runner.stop();
}

criterion_group!(benches, bench_transfers, bench_paid_file_creation);
criterion_main!(benches);
