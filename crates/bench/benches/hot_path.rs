//! Hot path: what the zero-copy codec buys, per operation.
//!
//! The paper's premise is that sparse-capability checking is cheap
//! enough to run on every message — the F-box is imagined as hardware
//! precisely because `F` sits on the per-packet path. With transport
//! latency virtualised (PR 4), per-message CPU and allocator traffic
//! are the dominant *real* cost of the metered-create hammer, so this
//! bench meters exactly those: for the steady-state workload it
//! reports **ns/op**, **buffer allocs/op** and **one-way-function
//! evals/op**, for three shapes:
//!
//! * **single** — the §3.6 metered create (nested bank payment), every
//!   machine behind an F-box, one frame per request;
//! * **batched** — the same creates shipped 16 to a `BATCH_REQUEST`
//!   frame, server-side fan-out, embedded bank client pipelined;
//! * **cluster** — the creates spread over a 3-replica sharded
//!   placement group (open interfaces; the leg isolates pooling, not
//!   crypto);
//! * **contended** — independent fleets sharing one `BufPool`, at one
//!   thread and at two: per-op hot-lock acquisitions and the 1→2-core
//!   throughput scaling (the lock-free demux and thread-local pool
//!   caches should leave nothing for a second core to wait on).
//!
//! Each shape runs twice: once with [`CodecConfig::legacy`] (fresh
//! allocation per frame, fresh random reply port per transaction,
//! uncached F-boxes — the pre-PR codec) and once with the default
//! zero-copy fast path (pooled buffers, recycled reply ports, memoized
//! F). The wire bytes are identical in both modes; only the CPU-side
//! cost differs. `tests/scale.rs` gates the single-shape ratios at
//! ≥5× (allocs/op) and ≥10× (oneway/op).
//!
//! Besides stdout, the headline numbers go to `BENCH_hotpath.json`
//! (override with `BENCH_HOTPATH_OUT`) so CI can archive the perf
//! trajectory and fail on allocation regressions.

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_bench::{contended_hot_path, hot_path_round, HotPathMeasure, METERED_HOP_LATENCY};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_cluster::{ShardedClient, ShardedCluster};
use amoeba_flatfs::{ops, FlatFsServer, QuotaPolicy};
use amoeba_net::Network;
use amoeba_rpc::{Client, CodecConfig, DemuxPolicy, PipelineConfig, RpcConfig};
use amoeba_server::proto::null_cap;
use amoeba_server::{wire, ServiceClient, ServiceRunner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const WARMUP_OPS: usize = 8;
const MEASURED_OPS: usize = 32;
const BATCH: usize = 16;
const CLUSTER_REPLICAS: usize = 3;

fn patient() -> RpcConfig {
    RpcConfig {
        timeout: Duration::from_secs(60),
        attempts: 2,
    }
}

fn codec_for(legacy: bool) -> CodecConfig {
    if legacy {
        CodecConfig::legacy()
    } else {
        CodecConfig::default()
    }
}

/// The batched shape: metered creates shipped [`BATCH`] to a frame
/// (then batch-destroyed), embedded bank pipelined, every pool shared
/// so allocation counts cover the whole fleet.
fn batched_leg(legacy: bool) -> HotPathMeasure {
    let net = Network::new_virtual();
    let codec = codec_for(legacy);
    let pool = codec.pool.clone();

    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    // The bank serves metered traffic during measurement, so it must
    // ride the leg's codec too — a default-codec bank would quietly
    // run pooled inside the "legacy" leg.
    let bank_runner = ServiceRunner::spawn_workers_with_codec(
        net.attach_open(),
        amoeba_net::Port::new(0xBA2C).expect("port"),
        bank_server,
        1,
        codec.clone(),
    );
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().expect("treasury");
    let bank = BankClient::with_service(
        ServiceClient::with_client(
            Client::with_config(net.attach_open(), patient()).with_codec(codec.clone()),
        ),
        bank_port,
    );
    let server_account = bank.open_account().expect("server account");
    let wallet = bank.open_account().expect("wallet");
    bank.mint(&treasury, &wallet, CurrencyId(0), 1_000_000)
        .expect("mint");

    // The embedded bank client pipelines so the pool workers' payment
    // transfers coalesce (the PR 2 shape), on the shared codec.
    let quota_bank = BankClient::with_service(
        ServiceClient::with_client(
            Client::with_config(net.attach_open(), patient())
                .with_demux_policy(DemuxPolicy {
                    contended_tick: Duration::from_micros(250),
                    idle_tick: DemuxPolicy::DEFAULT_IDLE_TICK,
                })
                .with_pipeline(PipelineConfig {
                    flush_window: Duration::from_millis(10),
                    max_entries: BATCH,
                })
                .with_codec(codec.clone()),
        ),
        bank_port,
    );
    let runner = ServiceRunner::spawn_workers_with_codec(
        net.attach_open(),
        amoeba_net::Port::new(0xB47C).expect("port"),
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: quota_bank,
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
        BATCH,
        codec.clone(),
    );
    let port = runner.put_port();
    let svc = ServiceClient::with_client(
        Client::with_config(net.attach_open(), patient()).with_codec(codec.clone()),
    );
    net.set_latency(METERED_HOP_LATENCY);

    let one_round = |svc: &ServiceClient| {
        let create = wire::Writer::new().cap(&wallet).u64(1).finish();
        let creates = (0..BATCH)
            .map(|_| (null_cap(), ops::CREATE, create.clone()))
            .collect();
        let caps: Vec<Capability> = svc
            .call_batch(port, creates)
            .expect("batched create")
            .into_iter()
            .map(|r| wire::Reader::new(&r.expect("entry")).cap().expect("cap"))
            .collect();
        let destroys = caps
            .iter()
            .map(|cap| (*cap, ops::DESTROY, bytes::Bytes::new()))
            .collect();
        for r in svc.call_batch(port, destroys).expect("batched destroy") {
            r.expect("destroy entry");
        }
    };

    let warm_rounds = WARMUP_OPS.div_ceil(BATCH).max(1);
    let rounds = MEASURED_OPS.div_ceil(BATCH).max(1);
    for _ in 0..warm_rounds {
        one_round(&svc);
    }
    let allocs0 = pool.fresh_allocs();
    let takes0 = pool.takes();
    let locks0 = pool.lock_acquisitions();
    let hot0 = net.hot_path();
    let t0 = std::time::Instant::now();
    for _ in 0..rounds {
        one_round(&svc);
    }
    let elapsed = t0.elapsed();
    let hot = net.hot_path() - hot0;
    let measure = HotPathMeasure {
        ops: (rounds * BATCH) as u64,
        elapsed,
        fresh_allocs: pool.fresh_allocs() - allocs0,
        pool_takes: pool.takes() - takes0,
        oneway_evals: hot.oneway_evals,
        frames: hot.frames_sent,
        hot_locks: pool.lock_acquisitions() - locks0,
    };
    net.set_latency(Duration::ZERO);
    runner.stop();
    bank_runner.stop();
    measure
}

/// The cluster shape: creates spread over a 3-replica sharded group,
/// every replica metering through one shared bank. Open interfaces —
/// the leg isolates what pooling buys under placement routing.
fn cluster_leg(legacy: bool) -> HotPathMeasure {
    let net = Network::new_virtual();
    let codec = codec_for(legacy);
    let pool = codec.pool.clone();

    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    // On the leg's codec, like every other party (see batched_leg).
    let bank_runner = ServiceRunner::spawn_workers_with_codec(
        net.attach_open(),
        amoeba_net::Port::new(0xBA2C).expect("port"),
        bank_server,
        1,
        codec.clone(),
    );
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().expect("treasury");
    let bank = BankClient::with_service(
        ServiceClient::with_client(
            Client::with_config(net.attach_open(), patient()).with_codec(codec.clone()),
        ),
        bank_port,
    );
    let server_account = bank.open_account().expect("server account");
    let wallet = bank.open_account().expect("wallet");
    bank.mint(&treasury, &wallet, CurrencyId(0), 1_000_000)
        .expect("mint");

    let cluster =
        ShardedCluster::spawn_open_with_codec(&net, CLUSTER_REPLICAS, 2, codec.clone(), |_| {
            FlatFsServer::with_quota(
                SchemeKind::OneWay,
                QuotaPolicy {
                    bank: BankClient::with_service(
                        ServiceClient::with_client(
                            Client::with_config(net.attach_open(), patient())
                                .with_codec(codec.clone()),
                        ),
                        bank_port,
                    ),
                    server_account,
                    currency: CurrencyId(0),
                    price_per_kib: 1,
                },
            )
        });
    let client = ShardedClient::new(
        ServiceClient::with_client(
            Client::with_config(net.attach_open(), patient()).with_codec(codec.clone()),
        ),
        cluster.range_ports().to_vec(),
    );
    net.set_latency(METERED_HOP_LATENCY);

    let one_op = |client: &ShardedClient| {
        let params = wire::Writer::new().cap(&wallet).u64(1).finish();
        let body = client
            .call_create(ops::CREATE, params)
            .expect("sharded create");
        let cap = wire::Reader::new(&body).cap().expect("cap");
        client
            .call(&cap, ops::DESTROY, bytes::Bytes::new())
            .expect("sharded destroy");
    };
    for _ in 0..WARMUP_OPS {
        one_op(&client);
    }
    let allocs0 = pool.fresh_allocs();
    let takes0 = pool.takes();
    let locks0 = pool.lock_acquisitions();
    let hot0 = net.hot_path();
    let t0 = std::time::Instant::now();
    for _ in 0..MEASURED_OPS {
        one_op(&client);
    }
    let elapsed = t0.elapsed();
    let hot = net.hot_path() - hot0;
    let measure = HotPathMeasure {
        ops: MEASURED_OPS as u64,
        elapsed,
        fresh_allocs: pool.fresh_allocs() - allocs0,
        pool_takes: pool.takes() - takes0,
        oneway_evals: hot.oneway_evals,
        frames: hot.frames_sent,
        hot_locks: pool.lock_acquisitions() - locks0,
    };
    net.set_latency(Duration::ZERO);
    cluster.stop();
    bank_runner.stop();
    measure
}

/// Reduction factor `legacy/fast` with a floor of 1 on the denominator
/// (a perfect fast path measures zero).
fn reduction(legacy: u64, fast: u64) -> f64 {
    legacy as f64 / fast.max(1) as f64
}

fn leg_json(name: &str, legacy: &HotPathMeasure, fast: &HotPathMeasure) -> String {
    format!(
        "  \"{name}\": {{\n    \"ops\": {},\n    \"ns_per_op\": {:.0},\n    \
         \"allocs_per_op\": {:.3},\n    \"oneway_per_op\": {:.3},\n    \
         \"locks_per_op\": {:.3},\n    \
         \"frames_per_op\": {:.3},\n    \"legacy_ns_per_op\": {:.0},\n    \
         \"legacy_allocs_per_op\": {:.3},\n    \"legacy_oneway_per_op\": {:.3},\n    \
         \"alloc_reduction\": {:.1},\n    \"oneway_reduction\": {:.1}\n  }}",
        fast.ops,
        fast.ns_per_op(),
        fast.allocs_per_op(),
        fast.oneway_per_op(),
        fast.locks_per_op(),
        fast.frames as f64 / fast.ops as f64,
        legacy.ns_per_op(),
        legacy.allocs_per_op(),
        legacy.oneway_per_op(),
        reduction(legacy.fresh_allocs, fast.fresh_allocs),
        reduction(legacy.oneway_evals, fast.oneway_evals),
    )
}

/// The contended-leg JSON block: absolute throughput at one and two
/// fleets, their ratio (the 1→2-core scaling CI gates at ≥1.5× on a
/// 2-core runner), and locks/op under contention.
fn contended_json(one: &HotPathMeasure, two: &HotPathMeasure) -> String {
    format!(
        "  \"contended\": {{\n    \"threads_1_ops_per_sec\": {:.1},\n    \
         \"threads_2_ops_per_sec\": {:.1},\n    \"scaling\": {:.3},\n    \
         \"locks_per_op\": {:.3},\n    \"allocs_per_op\": {:.3}\n  }}",
        one.ops_per_sec(),
        two.ops_per_sec(),
        two.ops_per_sec() / one.ops_per_sec(),
        two.locks_per_op(),
        two.allocs_per_op(),
    )
}

fn print_leg(name: &str, legacy: &HotPathMeasure, fast: &HotPathMeasure) {
    println!(
        "hot-path/{name}: fast {:.0} ns/op, {:.2} allocs/op, {:.2} oneway/op, \
         {:.2} locks/op (legacy {:.0} ns/op, {:.2} allocs/op, {:.2} oneway/op — \
         {:.0}x / {:.0}x fewer)",
        fast.ns_per_op(),
        fast.allocs_per_op(),
        fast.oneway_per_op(),
        fast.locks_per_op(),
        legacy.ns_per_op(),
        legacy.allocs_per_op(),
        legacy.oneway_per_op(),
        reduction(legacy.fresh_allocs, fast.fresh_allocs),
        reduction(legacy.oneway_evals, fast.oneway_evals),
    );
}

fn report_headline_numbers() {
    let single_legacy = hot_path_round(&Network::new_virtual(), true, WARMUP_OPS, MEASURED_OPS);
    let single_fast = hot_path_round(&Network::new_virtual(), false, WARMUP_OPS, MEASURED_OPS);
    print_leg("single", &single_legacy, &single_fast);
    let batched_legacy = batched_leg(true);
    let batched_fast = batched_leg(false);
    print_leg("batched", &batched_legacy, &batched_fast);
    let cluster_legacy = cluster_leg(true);
    let cluster_fast = cluster_leg(false);
    print_leg("cluster", &cluster_legacy, &cluster_fast);

    // The contended leg: identical independent fleets against one
    // shared BufPool, at one thread and at two. On a machine with ≥2
    // cores the second fleet should run on its own core, so the ratio
    // measures how much shared-structure locking steals.
    let contended_1 = contended_hot_path(1, WARMUP_OPS, MEASURED_OPS);
    let contended_2 = contended_hot_path(2, WARMUP_OPS, MEASURED_OPS);
    println!(
        "hot-path/contended: 1 fleet {:.0} ops/s, 2 fleets {:.0} ops/s \
         (scaling {:.2}x, {:.2} locks/op contended)",
        contended_1.ops_per_sec(),
        contended_2.ops_per_sec(),
        contended_2.ops_per_sec() / contended_1.ops_per_sec(),
        contended_2.locks_per_op(),
    );

    let json = format!(
        "{{\n  \"workload\": \"metered-create hot path\",\n  \
         \"hop_latency_ms\": {},\n{},\n{},\n{},\n{}\n}}\n",
        METERED_HOP_LATENCY.as_millis(),
        leg_json("single", &single_legacy, &single_fast),
        leg_json("batched", &batched_legacy, &batched_fast),
        leg_json("cluster", &cluster_legacy, &cluster_fast),
        contended_json(&contended_1, &contended_2),
    );
    let out = std::env::var("BENCH_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("hot-path: wrote {out}"),
        Err(e) => println!("hot-path: could not write {out}: {e}"),
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "hot-path");
    g.sample_size(10);
    g.bench_function("metered-create/fast", |b| {
        b.iter(|| hot_path_round(&Network::new_virtual(), false, 0, MEASURED_OPS))
    });
    g.finish();
}

fn bench_hot_path(c: &mut Criterion) {
    bench_rounds(c);
    report_headline_numbers();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
