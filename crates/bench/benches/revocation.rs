//! Experiment **E4** — revocation by random-number replacement (§2.3).
//!
//! "Although no central record is kept of who has which capabilities, it
//! is easy to revoke existing capabilities" — the cost must be O(1) in
//! the number of outstanding capabilities. The sweep holds 100 vs
//! 10,000 delegated capabilities outstanding: revoke time stays flat,
//! and every outstanding capability subsequently fails validation.

use amoeba_bench::cpu_group;
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::Port;
use amoeba_server::{ObjectTable, ServerError};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table() -> ObjectTable<u32> {
    ObjectTable::with_port(
        SchemeKind::Commutative.instantiate(),
        Port::new(0x4E0).unwrap(),
    )
}

fn bench_revoke_is_constant_time(c: &mut Criterion) {
    let mut g = cpu_group(c, "E4/revoke");
    for outstanding in [100usize, 10_000] {
        let t = table();
        let (_, cap) = t.create(7);
        // Hand out `outstanding` read-only delegations (they live in
        // client address spaces; the server keeps no record — that is
        // the point).
        let delegated: Vec<Capability> = (0..outstanding)
            .map(|_| t.restrict(&cap, Rights::READ).expect("restrict"))
            .collect();

        // The revocation chain: criterion invokes the measurement
        // closure several times (warm-up + samples), and the original
        // `cap` dies at the very first revocation — the current owner
        // capability therefore lives outside the closure.
        let owner = std::cell::Cell::new(cap);
        g.bench_with_input(
            BenchmarkId::from_parameter(outstanding),
            &outstanding,
            |b, _| {
                b.iter(|| {
                    let fresh = t.revoke(&owner.get()).expect("revoke");
                    owner.set(fresh);
                    black_box(fresh)
                });
            },
        );

        // Correctness: every delegation is now dead.
        for d in &delegated {
            assert_eq!(t.validate(d).unwrap_err(), ServerError::Forged);
        }
    }
    g.finish();
}

fn bench_validate_after_revoke(c: &mut Criterion) {
    // The fail path a server takes for every revoked capability that
    // still floats around the system.
    let mut g = cpu_group(c, "E4/validate-revoked");
    for kind in SchemeKind::ALL {
        let t = ObjectTable::<u32>::with_port(kind.instantiate(), Port::new(0x4E1).unwrap());
        let (_, cap) = t.create(1);
        let _fresh = t.revoke(&cap).expect("revoke");
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(t.validate(&cap).is_err()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_revoke_is_constant_time,
    bench_validate_after_revoke
);
criterion_main!(benches);
