//! The million-client swarm: an open-loop latency bench in *modeled*
//! time, on the deterministic simulation executor.
//!
//! The paper's performance story (§4) is measured with a handful of
//! real machines; the question a transaction-layer design actually has
//! to answer is what the latency distribution looks like when a large
//! population shares a small service fleet. Threads cannot answer it —
//! 10⁵ clients do not fit in a process, and wall-clock scheduling
//! noise would drown the distribution anyway. The simulation executor
//! can: every arrival, transmission and reply is an exact event on the
//! virtual timeline, so a single process models a hundred thousand
//! clients against a sharded echo cluster and reads p50/p99/p999
//! straight off the modeled clock.
//!
//! Shape: `SWARM_SHARDS` single-machine echo services, each on its own
//! port; `SWARM_DRIVERS` driver actors, each owning one RPC client
//! endpoint; `SWARM_CLIENTS` logical clients, each contributing one
//! transaction at a seeded arrival time drawn uniformly from the
//! modeled window (~50 µs of window per client, floor 500 ms — an
//! open-loop Poisson-ish offered load, arrivals do not wait for
//! completions). A driver serves its arrival queue serially, so
//! latency = completion − *scheduled arrival* includes driver queueing
//! — the open-loop convention that makes tails honest.
//!
//! The shard pick is uniform by default; set `SWARM_ZIPF` to a
//! positive exponent (e.g. `SWARM_ZIPF=1.0`) to skew the offered load
//! Zipf-style onto the low shards and watch the tail percentiles feel
//! a hot shard. The per-shard offered-load distribution is printed and
//! recorded in the JSON either way.
//!
//! The criterion group times a small-population run for trend
//! tracking; the headline pass runs the full population once and
//! writes `BENCH_swarm.json` (override with `BENCH_SWARM_OUT`):
//! populations, completion counts, modeled p50/p99/p999 µs, modeled vs
//! wall elapsed, and the event-schedule fingerprint (two runs of one
//! seed must produce the same one — CI replays it).

use amoeba_net::{ActorPoll, Histogram, Network, Port, SimExecutor, Timestamp};
use amoeba_rpc::{Client, Completion, RpcConfig, RpcError};
use amoeba_server::proto::{null_cap, Reply, Request, Status};
use amoeba_server::{RequestCtx, Service, SimPump};
use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

const SWARM_SEED: u64 = 0x5AA2_30CF_0000_0001;
/// One-way wire latency: 1 ms, so an uncontended echo RTT is 2 ms.
const WIRE_LATENCY: Duration = Duration::from_millis(1);
/// Modeled window scale: ~50 µs of arrival window per logical client.
const WINDOW_PER_CLIENT: Duration = Duration::from_micros(50);
const MIN_WINDOW: Duration = Duration::from_millis(500);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Cumulative Zipf(`s`) thresholds over `shards` ranks, scaled to
/// 2^32, for mapping a uniform 32-bit draw to a skewed shard pick.
fn zipf_thresholds(shards: usize, s: f64) -> Vec<u64> {
    let h: f64 = (1..=shards).map(|k| (k as f64).powf(-s)).sum();
    let mut acc = 0.0;
    let mut out = vec![0u64; shards];
    for (r, slot) in out.iter_mut().enumerate() {
        acc += ((r + 1) as f64).powf(-s) / h;
        *slot = (acc * 4_294_967_296.0) as u64;
    }
    out[shards - 1] = 1 << 32; // close the distribution exactly
    out
}

/// Replies to every request with an empty body — the swarm measures
/// the transaction layer and the schedule, not a service's work.
struct NopService;

impl Service for NopService {
    fn handle(&self, _req: &Request, _ctx: &RequestCtx) -> Reply {
        Reply::ok(Bytes::new())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shard_port(s: usize) -> Port {
    Port::new(0x5A12_0000 + s as u64).expect("shard port")
}

/// One logical client's scheduled transaction.
#[derive(Clone, Copy)]
struct Arrival {
    at: Timestamp,
    shard: usize,
}

#[derive(Debug, Default)]
struct SwarmTally {
    /// Modeled latencies, µs, one per completed transaction.
    latencies_us: Vec<u64>,
    timeouts: u64,
}

#[derive(Debug)]
struct SwarmReport {
    clients: usize,
    shards: usize,
    drivers: usize,
    completed: u64,
    timeouts: u64,
    sim_elapsed: Duration,
    wall: Duration,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    /// Zipf exponent of the shard pick (0 = uniform, the default).
    zipf_s: f64,
    /// Offered transactions per shard — the skew the exponent
    /// actually produced, for eyeballing hot-shard imbalance.
    shard_load: Vec<u64>,
    /// The same percentiles re-derived from an `amoeba-obs` log-scale
    /// histogram fed the identical latency stream — the cross-check
    /// that bench percentiles and live metrics come from one code
    /// path. Bucketed, so these carry bucket resolution, not exact
    /// sample values.
    hist_p50_us: u64,
    hist_p99_us: u64,
    hist_p999_us: u64,
    events: u64,
    event_hash: u64,
    /// The network's live metrics registry at the end of the run
    /// (client/server counters plus the RPC-layer latency histogram) —
    /// exported as its own JSON document for CI.
    metrics: amoeba_net::MetricsSnapshot,
}

fn percentile(sorted: &[u64], per_mille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * per_mille).div_ceil(1000);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

/// Runs one seeded swarm and returns its report. Deterministic: the
/// same `(seed, clients, shards, drivers)` produces the same event
/// fingerprint and the same percentiles, byte for byte.
fn run_swarm(seed: u64, clients: usize, shards: usize, drivers: usize, zipf_s: f64) -> SwarmReport {
    let wall0 = std::time::Instant::now();
    let net = Network::new_sim(seed);
    net.set_latency(WIRE_LATENCY);
    // Live metrics on: the swarm doubles as the obs layer's scale test
    // (every transaction feeds the latency histogram and counters).
    net.obs().enable();

    let pumps: Vec<Arc<SimPump>> = (0..shards)
        .map(|s| Arc::new(SimPump::bind(net.attach_open(), shard_port(s), NopService)))
        .collect();
    let shard_ports: Vec<Port> = pumps.iter().map(|p| p.put_port()).collect();

    // Seeded open-loop arrival schedule, dealt round-robin to drivers
    // and sorted per driver (a driver serves its queue in time order).
    let window = WINDOW_PER_CLIENT * clients as u32;
    let window = if window < MIN_WINDOW {
        MIN_WINDOW
    } else {
        window
    };
    let mut rng = seed ^ 0x5AA2_A221_7A15_0000;
    // With the knob at 0 (default) the draw stays the historical
    // `% shards` uniform — the seeded event fingerprint CI replays is
    // unchanged. A positive exponent maps the same 64-bit stream
    // through Zipf thresholds instead.
    let zipf = (zipf_s > 0.0).then(|| zipf_thresholds(shards, zipf_s));
    let mut shard_load = vec![0u64; shards];
    let mut queues: Vec<Vec<Arrival>> = vec![Vec::new(); drivers];
    for i in 0..clients {
        let at =
            Timestamp::ZERO + Duration::from_nanos(splitmix64(&mut rng) % window.as_nanos() as u64);
        let draw = splitmix64(&mut rng);
        let shard = match &zipf {
            Some(t) => t
                .iter()
                .position(|&v| (draw & 0xFFFF_FFFF) < v)
                .expect("thresholds close at 2^32"),
            None => (draw % shards as u64) as usize,
        };
        shard_load[shard] += 1;
        queues[i % drivers].push(Arrival { at, shard });
    }
    for q in &mut queues {
        q.sort_unstable_by_key(|a| a.at);
    }

    // The request body is identical for every transaction (the reply
    // port, not the payload, disambiguates) — encode it once.
    let body = {
        let req = Request {
            cap: null_cap(),
            command: 0x5A12,
            params: Bytes::new(),
        };
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        buf.freeze()
    };

    let arena: Vec<Client> = (0..drivers)
        .map(|_| {
            Client::with_config(
                net.attach_open(),
                RpcConfig {
                    timeout: Duration::from_millis(250),
                    attempts: 4,
                },
            )
            .with_rng_seed(splitmix64(&mut rng))
        })
        .collect();

    let tally = Rc::new(RefCell::new(SwarmTally::default()));
    // Fed the exact values the sampler vector records, so the two
    // percentile paths can be cross-checked after the run.
    let hist = Rc::new(Histogram::new());
    let mut exec = SimExecutor::new(&net);
    for pump in &pumps {
        let pump = Arc::clone(pump);
        exec.spawn_daemon(pump.machine(), move || {
            if pump.poll() {
                ActorPoll::Progress
            } else {
                ActorPoll::Idle
            }
        });
    }
    for (d, client) in arena.iter().enumerate() {
        let tally = Rc::clone(&tally);
        let hist = Rc::clone(&hist);
        let queue = std::mem::take(&mut queues[d]);
        let ports = shard_ports.clone();
        let body = body.clone();
        let net = net.clone();
        let mut next = 0usize;
        let mut current: Option<(Completion<'_, Bytes>, Timestamp)> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            if let Some((comp, arrival)) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(raw)) => {
                        let reply = Reply::decode(&raw).expect("echo reply decodes");
                        assert_eq!(reply.status, Status::Ok);
                        let lat = net.now().saturating_duration_since(*arrival);
                        let lat_us = lat.as_micros() as u64;
                        hist.record(lat_us);
                        tally.borrow_mut().latencies_us.push(lat_us);
                        current = None;
                        next += 1;
                    }
                    Some(Err(RpcError::Timeout)) => {
                        // Quiet plan: a timeout here is driver overload,
                        // not loss. Count it and retry the same arrival
                        // (its latency keeps accruing — open loop).
                        tally.borrow_mut().timeouts += 1;
                        let arrival = *arrival;
                        let comp = client.trans_async(ports[queue[next].shard], body.clone());
                        current = Some((comp, arrival));
                    }
                    Some(Err(e)) => panic!("swarm driver {d}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else if next == queue.len() {
                return ActorPoll::Done;
            } else {
                let a = queue[next];
                if net.now() < a.at {
                    return ActorPoll::IdleUntil(a.at);
                }
                let comp = client.trans_async(ports[a.shard], body.clone());
                current = Some((comp, a.at));
            }
        });
    }
    exec.run()
        .unwrap_or_else(|stall| panic!("swarm stalled: {stall}"));
    drop(exec);
    let sim_elapsed = net.now().since_epoch();
    let (event_hash, events) = net.sim_fingerprint();
    let metrics = net.obs().snapshot().expect("obs was enabled");
    drop(arena);

    let mut tally = Rc::try_unwrap(tally).expect("actors dropped").into_inner();
    tally.latencies_us.sort_unstable();
    let hist = Rc::try_unwrap(hist).expect("actors dropped");

    // Cross-check: the histogram uses the same rank formula as the
    // sorted-sample percentile, so the exact sample must fall inside
    // the histogram bucket the same per-mille resolves to — not
    // "close", *inside*. A divergence means the two percentile paths
    // no longer compute the same statistic.
    let cross = |per_mille: u64| -> u64 {
        let exact = percentile(&tally.latencies_us, per_mille);
        let (lo, hi) = hist
            .percentile_bounds(per_mille)
            .expect("histogram saw every completion");
        assert!(
            lo <= exact && (exact < hi || hi == u64::MAX),
            "p{per_mille} cross-check: sampler says {exact} µs but the \
             obs histogram bucket is [{lo}, {hi}) µs"
        );
        hist.percentile(per_mille).unwrap_or(0)
    };
    let hist_p50_us = cross(500);
    let hist_p99_us = cross(990);
    let hist_p999_us = cross(999);

    SwarmReport {
        clients,
        shards,
        drivers,
        completed: tally.latencies_us.len() as u64,
        timeouts: tally.timeouts,
        sim_elapsed,
        wall: wall0.elapsed(),
        p50_us: percentile(&tally.latencies_us, 500),
        p99_us: percentile(&tally.latencies_us, 990),
        p999_us: percentile(&tally.latencies_us, 999),
        zipf_s,
        shard_load,
        hist_p50_us,
        hist_p99_us,
        hist_p999_us,
        events,
        event_hash,
        metrics,
    }
}

fn report_json(r: &SwarmReport, seed: u64) -> String {
    format!(
        "{{\n  \"workload\": \"open-loop swarm vs sharded echo cluster\",\n  \
         \"seed\": {seed},\n  \"clients\": {},\n  \"shards\": {},\n  \
         \"drivers\": {},\n  \"completed\": {},\n  \"timeouts\": {},\n  \
         \"sim_elapsed_ms\": {},\n  \"wall_ms\": {},\n  \"p50_us\": {},\n  \
         \"p99_us\": {},\n  \"p999_us\": {},\n  \"hist_p50_us\": {},\n  \
         \"hist_p99_us\": {},\n  \"hist_p999_us\": {},\n  \"zipf_s\": {},\n  \
         \"shard_load\": [{}],\n  \"events\": {},\n  \
         \"event_hash\": {}\n}}\n",
        r.clients,
        r.shards,
        r.drivers,
        r.completed,
        r.timeouts,
        r.sim_elapsed.as_millis(),
        r.wall.as_millis(),
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.hist_p50_us,
        r.hist_p99_us,
        r.hist_p999_us,
        r.zipf_s,
        r.shard_load
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        r.events,
        r.event_hash,
    )
}

fn report_headline_numbers() {
    let clients = env_usize("SWARM_CLIENTS", 100_000);
    let shards = env_usize("SWARM_SHARDS", 8);
    let drivers = env_usize("SWARM_DRIVERS", 64);
    let zipf_s = env_f64("SWARM_ZIPF", 0.0);
    let r = run_swarm(SWARM_SEED, clients, shards, drivers, zipf_s);
    assert_eq!(
        r.completed, r.clients as u64,
        "every logical client's transaction must complete"
    );
    println!(
        "swarm: {} clients / {} shards / {} drivers (zipf {}) — modeled p50 {} µs, \
         p99 {} µs, p999 {} µs ({} modeled ms in {} wall ms, {} events)",
        r.clients,
        r.shards,
        r.drivers,
        r.zipf_s,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.sim_elapsed.as_millis(),
        r.wall.as_millis(),
        r.events,
    );
    println!("swarm: shard load {:?}", r.shard_load);
    let out = std::env::var("BENCH_SWARM_OUT").unwrap_or_else(|_| "BENCH_swarm.json".into());
    match std::fs::write(&out, report_json(&r, SWARM_SEED)) {
        Ok(()) => println!("swarm: wrote {out}"),
        Err(e) => println!("swarm: could not write {out}: {e}"),
    }
    let metrics_out = std::env::var("BENCH_SWARM_METRICS_OUT")
        .unwrap_or_else(|_| "BENCH_swarm_metrics.json".into());
    match std::fs::write(&metrics_out, r.metrics.to_json()) {
        Ok(()) => println!("swarm: wrote {metrics_out}"),
        Err(e) => println!("swarm: could not write {metrics_out}: {e}"),
    }
}

fn bench_swarm(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "swarm");
    g.sample_size(10);
    // A small population for the timed trend line; the headline run
    // below models the full population once.
    g.bench_function("open-loop/2k-clients", |b| {
        b.iter(|| run_swarm(SWARM_SEED, 2_000, 8, 64, 0.0))
    });
    g.finish();
    report_headline_numbers();
}

criterion_group!(benches, bench_swarm);
criterion_main!(benches);
