//! Experiment **F1b** — the F-box itself: one-way function cost (Purdy
//! 1974 vs SHA-256) and the end-to-end price of port protection
//! (request/reply through F-boxes vs open interfaces).

use amoeba_bench::{cpu_group, net_group, quiet_network};
use amoeba_crypto::oneway::{OneWay, PurdyOneWay, ShaOneWay};
use amoeba_fbox::FBox;
use amoeba_net::{Header, NetworkInterface, Port};
use amoeba_rpc::{Client, RpcConfig, ServerPort};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_oneway_functions(c: &mut Criterion) {
    let mut g = cpu_group(c, "F1/one-way-function");
    let sha = ShaOneWay;
    let purdy = PurdyOneWay::new();
    g.bench_function("sha256", |b| {
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = sha.apply48(black_box(x));
            x
        })
    });
    g.bench_function("purdy", |b| {
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = purdy.apply48(black_box(x));
            x
        })
    });
    g.finish();
}

fn bench_fbox_egress(c: &mut Criterion) {
    let mut g = cpu_group(c, "F1/fbox-egress-transform");
    let fbox = FBox::hardware(ShaOneWay);
    let header = Header::to(Port::new(1).unwrap())
        .with_reply(Port::new(2).unwrap())
        .with_signature(Port::new(3).unwrap());
    g.bench_function("reply+signature", |b| {
        b.iter(|| {
            let mut h = header;
            fbox.egress(&mut h);
            black_box(h)
        })
    });
    g.finish();
}

fn rpc_roundtrip(protected: bool) -> (Client, Port, std::thread::JoinHandle<()>) {
    let net = quiet_network();
    let (server_ep, client_ep) = if protected {
        (
            net.attach(Arc::new(FBox::hardware(ShaOneWay))),
            net.attach(Arc::new(FBox::hardware(ShaOneWay))),
        )
    } else {
        (net.attach_open(), net.attach_open())
    };
    let server = ServerPort::bind(server_ep, Port::new(0x3E2).unwrap());
    let put_port = server.put_port();
    let handle = std::thread::spawn(move || {
        while let Ok(req) = server.next_request_timeout(Duration::from_secs(120)) {
            if &req.payload[..] == b"STOP" {
                server.reply(&req, Bytes::new());
                break;
            }
            server.reply(&req, req.payload.clone());
        }
    });
    let client = Client::with_config(
        client_ep,
        RpcConfig {
            timeout: Duration::from_secs(1),
            attempts: 3,
        },
    );
    (client, put_port, handle)
}

fn bench_rpc_with_and_without_fbox(c: &mut Criterion) {
    let mut g = net_group(c, "F1/request-reply");
    for protected in [false, true] {
        let (client, port, handle) = rpc_roundtrip(protected);
        let label = if protected { "fbox" } else { "open" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &protected, |b, _| {
            b.iter(|| black_box(client.trans(port, Bytes::from_static(b"ping")).unwrap()))
        });
        client.trans(port, Bytes::from_static(b"STOP")).unwrap();
        handle.join().unwrap();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_oneway_functions,
    bench_fbox_egress,
    bench_rpc_with_and_without_fbox
);
criterion_main!(benches);
