//! Experiment **E1** — the cost of the four protection schemes (§2.3).
//!
//! The paper presents the schemes as a cost/functionality ladder:
//! scheme 0 is a bare comparison, scheme 1 pays for a block cipher,
//! scheme 2 for one one-way evaluation, scheme 3 for up to `N` modular
//! exponentiations. This bench regenerates that ladder: mint, validate,
//! and server-side restrict per scheme.

use amoeba_bench::{bench_port, bench_rng, cpu_group, minted};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{ObjectNum, Rights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mint(c: &mut Criterion) {
    let mut g = cpu_group(c, "E1/mint");
    for kind in SchemeKind::ALL {
        let scheme = kind.instantiate();
        let mut rng = bench_rng();
        let secret = scheme.new_secret(&mut rng);
        let obj = ObjectNum::new(1).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(scheme.mint(bench_port(), obj, &secret)))
        });
    }
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut g = cpu_group(c, "E1/validate");
    for kind in SchemeKind::ALL {
        let (scheme, secret, cap) = minted(kind);
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(scheme.validate(&cap, &secret).unwrap()))
        });
    }
    g.finish();
}

fn bench_validate_worst_case_commutative(c: &mut Criterion) {
    // Scheme 3's validate cost grows with the number of *deleted*
    // rights (one F_k application each); show both extremes.
    let mut g = cpu_group(c, "E1/validate-commutative-deleted-rights");
    let (scheme, secret, cap) = minted(SchemeKind::Commutative);
    for deleted in [0u32, 1, 4, 7] {
        let drop = Rights::from_bits(((1u16 << deleted) - 1) as u8);
        let reduced = scheme.diminish(&cap, drop).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(deleted), &deleted, |b, _| {
            b.iter(|| black_box(scheme.validate(&reduced, &secret).unwrap()))
        });
    }
    g.finish();
}

fn bench_restrict(c: &mut Criterion) {
    let mut g = cpu_group(c, "E1/restrict");
    for kind in [
        SchemeKind::Encrypted,
        SchemeKind::OneWay,
        SchemeKind::Commutative,
    ] {
        let (scheme, secret, cap) = minted(kind);
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(scheme.restrict(&cap, Rights::READ, &secret).unwrap()))
        });
    }
    g.finish();
}

fn bench_reject_forgery(c: &mut Criterion) {
    // The fail path matters: servers validate every incoming request.
    let mut g = cpu_group(c, "E1/reject-forgery");
    for kind in SchemeKind::ALL {
        let (scheme, secret, cap) = minted(kind);
        let forged = cap.with_check(cap.check ^ 1);
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(scheme.validate(&forged, &secret).is_err()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mint,
    bench_validate,
    bench_validate_worst_case_commutative,
    bench_restrict,
    bench_reject_forgery
);
criterion_main!(benches);
