//! Experiment **E3** — "the RIGHTS field is not even needed ... its
//! presence merely speeds up the checking" (§2.3, scheme 3).
//!
//! Validation with the plaintext rights field applies exactly the
//! deleted-bit functions; without it the server tries all 2^N deletion
//! masks. The sweep over N shows the exponential gap that justifies
//! spending 8 capability bits on the field.

use amoeba_bench::{bench_port, bench_rng, cpu_group};
use amoeba_cap::schemes::{CommutativeScheme, ProtectionScheme};
use amoeba_cap::{ObjectNum, Rights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_with_vs_without_rights_field(c: &mut Criterion) {
    let mut g = cpu_group(c, "E3/validate");
    let scheme = CommutativeScheme::standard();
    let mut rng = bench_rng();
    let secret = scheme.new_secret(&mut rng);
    let cap = scheme.mint(bench_port(), ObjectNum::new(9).unwrap(), &secret);

    for n in [2usize, 4, 8] {
        // Delete the top half of the first n rights so the brute force
        // has real work to do.
        let drop_mask = ((1u16 << n) - 1) as u8 & 0xAA;
        let reduced = scheme.diminish(&cap, Rights::from_bits(drop_mask)).unwrap();

        g.bench_with_input(BenchmarkId::new("with-rights-field", n), &n, |b, _| {
            b.iter(|| black_box(scheme.validate(&reduced, &secret).unwrap()))
        });

        // Erase the rights field: the server must search.
        let anonymous = reduced.with_rights(Rights::NONE);
        g.bench_with_input(BenchmarkId::new("bruteforce-2^n-masks", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    scheme
                        .validate_bruteforce(&anonymous, &secret, n)
                        .expect("recoverable"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_with_vs_without_rights_field);
criterion_main!(benches);
