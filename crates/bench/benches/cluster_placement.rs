//! Cluster placement: horizontal scaling of the metered-create
//! workload and the cost of transparent failover.
//!
//! Three experiments, all over the §3.6 metered flat file service
//! (every CREATE parks its dispatch worker on a nested bank
//! round-trip) at 2 ms per network hop:
//!
//! * **placement / metered-create / {1,3}** — the same 24-create
//!   hammer against a 1-replica and a 3-replica sharded cluster. The
//!   workload is latency-bound, so throughput scales with machines —
//!   the acceptance bar (checked in `tests/cluster.rs`) is ≥ 2× for
//!   3 replicas.
//! * **failover latency** — with 3 replicas serving one port, halt one
//!   and time the first call that trips over it: the cost is one
//!   attempt timeout plus a retry on a survivor, and every later call
//!   is full speed again. Measured directly, printed, not asserted.
//! * **discovery overhead** — LOCATE broadcast traffic (frames and
//!   wire bytes, from the `broadcast_bytes_sent` counter) as a share
//!   of total traffic for the replicated hammer.
//!
//! Besides stdout, the run writes the headline numbers to
//! `BENCH_cluster.json` (override the path with `BENCH_CLUSTER_OUT`)
//! so CI can archive the perf trajectory. The JSON is written in both
//! smoke and measure modes — the numbers come from direct wall-clock
//! measurement, not the criterion harness.

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_cluster::{ClusterClient, ServiceCluster, ShardedClient, ShardedCluster};
use amoeba_flatfs::{ops, FlatFsServer, QuotaPolicy};
use amoeba_net::Network;
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, RequestCtx, Service, ServiceClient, ServiceRunner};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

const CLIENTS: usize = 12;
const CALLS_PER_CLIENT: usize = 2;
const HOP_LATENCY: Duration = Duration::from_millis(2);

/// A sharded metered flat file cluster plus its bank and one funded
/// wallet.
struct Rig {
    net: Network,
    _bank_runner: ServiceRunner,
    cluster: Option<ShardedCluster>,
    wallet: Capability,
}

fn rig(replicas: usize) -> Rig {
    let net = Network::new();
    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, bank_port);
    let server_account = bank.open_account().unwrap();
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), 10_000_000)
        .unwrap();
    let cluster = ShardedCluster::spawn_open(&net, replicas, 1, |_| {
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::open(&net, bank_port),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        )
    });
    Rig {
        net,
        _bank_runner: bank_runner,
        cluster: Some(cluster),
        wallet,
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.net.set_latency(Duration::ZERO);
        if let Some(c) = self.cluster.take() {
            c.stop();
        }
    }
}

/// CLIENTS threads each perform CALLS_PER_CLIENT pre-paid creates
/// through their own sharded client.
fn hammer(rig: &Rig) {
    let ports = rig.cluster.as_ref().unwrap().range_ports().to_vec();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let net = rig.net.clone();
            let ports = ports.clone();
            let wallet = rig.wallet;
            std::thread::spawn(move || {
                let client = ShardedClient::new(ServiceClient::open(&net), ports);
                for _ in 0..CALLS_PER_CLIENT {
                    let params = wire::Writer::new().cap(&wallet).u64(1).finish();
                    let body = client.call_create(ops::CREATE, params).unwrap();
                    wire::Reader::new(&body).cap().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_placement(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "cluster-placement");
    for replicas in [1usize, 3] {
        g.bench_with_input(
            BenchmarkId::new("metered-create", replicas),
            &replicas,
            |b, &replicas| {
                let rig = rig(replicas);
                rig.net.set_latency(HOP_LATENCY);
                b.iter(|| hammer(&rig));
            },
        );
    }
    g.finish();
}

/// A stateless echo service for the failover measurement.
struct Echo;

impl Service for Echo {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if req.command == 1 {
            Reply::ok(req.params.clone())
        } else {
            Reply::status(Status::BadCommand)
        }
    }
}

/// Returns `(healthy_call, failover_call, recovered_call)` latencies:
/// a warm call with 3 replicas, the first call after one replica is
/// halted (pays the detection timeout + retry), and the next call
/// (back to full speed on the surviving set).
fn measure_failover(net: &Network) -> (Duration, Duration, Duration) {
    let mut cluster = ServiceCluster::spawn_open(net, 3, 1, |_| Echo);
    let port = cluster.put_port();
    let client = ClusterClient::broadcast(net);
    // Resolve until all three replicas answered (a loaded host can
    // miss one gather window).
    while client.replicas(port).len() < 3 {
        client.invalidate(port);
        std::thread::sleep(Duration::from_millis(5));
    }
    net.set_latency(HOP_LATENCY);

    let call = |client: &ClusterClient| {
        let t0 = Instant::now();
        client
            .call_anonymous(port, 1, Bytes::from_static(b"ping"))
            .unwrap();
        t0.elapsed()
    };
    let healthy = call(&client);
    cluster.halt_replica(0);
    // Round-robin: within three calls one trips over the halted
    // replica and pays the failover; keep the worst as the headline.
    let failover = (0..3).map(|_| call(&client)).max().unwrap();
    let recovered = call(&client);
    net.set_latency(Duration::ZERO);
    cluster.stop();
    (healthy, failover, recovered)
}

/// The frames/bytes a replicated hammer puts on the wire, split into
/// discovery (broadcast) and request/reply traffic.
fn measure_discovery(net: &Network) -> (u64, u64, u64, u64) {
    let cluster = ServiceCluster::spawn_open(net, 3, 1, |_| Echo);
    let client = ClusterClient::broadcast(net);
    let before = net.stats().snapshot();
    for i in 0..24u8 {
        client
            .call_anonymous(cluster.put_port(), 1, Bytes::from(vec![i]))
            .unwrap();
    }
    let d = net.stats().snapshot() - before;
    cluster.stop();
    (
        d.broadcasts_sent,
        d.broadcast_bytes_sent,
        d.packets_sent,
        d.bytes_sent,
    )
}

/// Direct wall-clock measurement of the placement speedup (the number
/// the criterion groups above sample, condensed to one comparison),
/// plus the failover and discovery figures; printed and written to
/// `BENCH_cluster.json`.
fn report_headline_numbers() {
    let timed = |replicas: usize| {
        let rig = rig(replicas);
        rig.net.set_latency(HOP_LATENCY);
        let t0 = Instant::now();
        hammer(&rig);
        t0.elapsed()
    };
    let single = timed(1);
    let triple = timed(3);
    let speedup = single.as_secs_f64() / triple.as_secs_f64();

    let net = Network::new();
    let (healthy, failover, recovered) = measure_failover(&net);

    let net = Network::new();
    let (locate_frames, locate_bytes, frames, bytes) = measure_discovery(&net);

    let total = (CLIENTS * CALLS_PER_CLIENT) as f64;
    println!(
        "cluster-placement/metered-create/{total}: 1 replica {single:?}, \
         3 replicas {triple:?} ({speedup:.2}x)",
    );
    println!(
        "cluster-placement/failover: healthy {healthy:?}, \
         first-call-after-halt {failover:?}, recovered {recovered:?}",
    );
    println!(
        "cluster-placement/discovery: {locate_frames} broadcast frames / \
         {locate_bytes} B out of {frames} frames / {bytes} B total",
    );

    let json = format!(
        "{{\n  \"workload\": \"metered-create\",\n  \"creates\": {},\n  \
         \"hop_latency_ms\": {},\n  \"single_replica_ms\": {:.3},\n  \
         \"three_replica_ms\": {:.3},\n  \"speedup\": {:.3},\n  \
         \"failover_healthy_ms\": {:.3},\n  \"failover_first_call_ms\": {:.3},\n  \
         \"failover_recovered_ms\": {:.3},\n  \"discovery_frames\": {},\n  \
         \"discovery_bytes\": {},\n  \"total_frames\": {},\n  \"total_bytes\": {}\n}}\n",
        CLIENTS * CALLS_PER_CLIENT,
        HOP_LATENCY.as_millis(),
        single.as_secs_f64() * 1e3,
        triple.as_secs_f64() * 1e3,
        speedup,
        healthy.as_secs_f64() * 1e3,
        failover.as_secs_f64() * 1e3,
        recovered.as_secs_f64() * 1e3,
        locate_frames,
        locate_bytes,
        frames,
        bytes,
    );
    let out = std::env::var("BENCH_CLUSTER_OUT").unwrap_or_else(|_| "BENCH_cluster.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("cluster-placement: wrote {out}"),
        Err(e) => println!("cluster-placement: could not write {out}: {e}"),
    }
}

fn bench_cluster(c: &mut Criterion) {
    bench_placement(c);
    report_headline_numbers();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
