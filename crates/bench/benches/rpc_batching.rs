//! RPC batching: the amortisation experiment behind `docs/PROTOCOL.md`.
//!
//! The PR-1 dispatch bench showed the per-frame channel hops in
//! `net`/`rpc` dominating the zero-latency profile; this bench measures
//! what batch framing buys back on the same metered-create workload
//! (every CREATE is pre-paid through a nested bank transaction, §3.6):
//!
//! * **batched / metered-create / {1,4,16}** — one `BATCH_REQUEST`
//!   frame carrying N pre-paid CREATEs (then one batched DESTROY round
//!   to refund the quota and keep wallet balances steady). The file
//!   server runs a 4-worker pool, so entries fan out; its embedded bank
//!   client is **pipelined**, so the workers' concurrent payment
//!   transfers coalesce into shared frames too.
//! * **unbatched / metered-create / 16** — the same 16 CREATE+DESTROY
//!   pairs as sequential single-frame transactions (the pre-batching
//!   client behaviour).
//!
//! Besides wall time, the run prints a frames-on-the-wire comparison
//! diffed from the `net` stats counters; the 16-entry batch must beat
//! the unbatched path by ≥ 4× (asserted by `tests/scale.rs`, where the
//! numbers are checked, not just printed).

use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::Capability;
use amoeba_flatfs::{ops, FlatFsClient, FlatFsServer, QuotaPolicy};
use amoeba_net::Network;
use amoeba_rpc::{Client, DemuxPolicy, PipelineConfig, RpcConfig};
use amoeba_server::proto::null_cap;
use amoeba_server::{wire, ServiceClient, ServiceRunner};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const POOL_WORKERS: usize = 4;
const CALLS: usize = 16;
const PREPAY: u64 = 1;

/// A metered file server (4 workers, pipelined embedded bank client),
/// its bank, and a funded wallet.
struct Rig {
    net: Network,
    _bank_runner: ServiceRunner,
    fs_runner: Option<ServiceRunner>,
    fs_port: amoeba_net::Port,
    wallet: Capability,
}

fn rig() -> Rig {
    let net = Network::new();
    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, bank_port);
    let server_account = bank.open_account().unwrap();
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), 1_000_000)
        .unwrap();

    // The server's own bank client is pipelined: payment transfers
    // issued concurrently by the four dispatch workers coalesce into
    // shared wire frames.
    let quota_bank = BankClient::with_service(
        ServiceClient::with_client(
            Client::with_config(
                net.attach_open(),
                RpcConfig {
                    timeout: Duration::from_secs(2),
                    attempts: 3,
                },
            )
            // The workers' coalesced transfers ride one batch frame, so
            // their waiters contend on the shared endpoint; a tighter
            // contended tick keeps demux routing off the critical path.
            .with_demux_policy(DemuxPolicy {
                contended_tick: Duration::from_micros(250),
                idle_tick: DemuxPolicy::DEFAULT_IDLE_TICK,
            })
            .with_pipeline(PipelineConfig {
                flush_window: Duration::from_millis(1),
                max_entries: 16,
            }),
        ),
        bank_port,
    );
    let fs_runner = ServiceRunner::spawn_open_workers(
        &net,
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: quota_bank,
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
        POOL_WORKERS,
    );
    let fs_port = fs_runner.put_port();
    Rig {
        net,
        _bank_runner: bank_runner,
        fs_runner: Some(fs_runner),
        fs_port,
        wallet,
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.net.set_latency(Duration::ZERO);
        if let Some(r) = self.fs_runner.take() {
            r.stop();
        }
    }
}

/// N pre-paid CREATEs in one batch frame, then one batched DESTROY
/// round (refunds keep the wallet steady across iterations).
fn batched_round(rig: &Rig, svc: &ServiceClient, n: usize) {
    let create = wire::Writer::new().cap(&rig.wallet).u64(PREPAY).finish();
    let calls = (0..n)
        .map(|_| (null_cap(), ops::CREATE, create.clone()))
        .collect();
    let caps: Vec<Capability> = svc
        .call_batch(rig.fs_port, calls)
        .unwrap()
        .into_iter()
        .map(|r| wire::Reader::new(&r.unwrap()).cap().unwrap())
        .collect();
    black_box(&caps);
    let destroys = caps
        .into_iter()
        .map(|cap| (cap, ops::DESTROY, Bytes::new()))
        .collect();
    for r in svc.call_batch(rig.fs_port, destroys).unwrap() {
        r.unwrap();
    }
}

/// The same workload as sequential single-frame transactions.
fn unbatched_round(rig: &Rig, fs: &FlatFsClient, n: usize) {
    for _ in 0..n {
        let cap = fs.create_paid(&rig.wallet, PREPAY).unwrap();
        black_box(&cap);
        fs.destroy(&cap).unwrap();
    }
}

fn bench_rpc_batching(c: &mut Criterion) {
    let mut g = amoeba_bench::net_group(c, "rpc-batching");
    for n in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("batched/metered-create", n),
            &n,
            |b, &n| {
                let rig = rig();
                let svc = ServiceClient::open(&rig.net);
                rig.net.set_latency(Duration::from_millis(2));
                b.iter(|| batched_round(&rig, &svc, n));
            },
        );
    }
    g.bench_with_input(
        BenchmarkId::new("unbatched/metered-create", CALLS),
        &CALLS,
        |b, &n| {
            let rig = rig();
            let fs = FlatFsClient::open(&rig.net, rig.fs_port);
            rig.net.set_latency(Duration::from_millis(2));
            b.iter(|| unbatched_round(&rig, &fs, n));
        },
    );
    g.finish();

    // Frames-on-the-wire comparison: the number criterion cannot see.
    // CREATE only (DESTROY refunds would double-count bank traffic the
    // same way on both sides); diffed from the net stats counters.
    let rig = rig();
    let svc = ServiceClient::open(&rig.net);
    let fs = FlatFsClient::open(&rig.net, rig.fs_port);
    rig.net.set_latency(Duration::from_millis(2));

    let before = rig.net.stats().snapshot();
    let mut caps = Vec::new();
    for _ in 0..CALLS {
        caps.push(fs.create_paid(&rig.wallet, PREPAY).unwrap());
    }
    let unbatched = rig.net.stats().snapshot() - before;
    for cap in caps.drain(..) {
        fs.destroy(&cap).unwrap();
    }

    let before = rig.net.stats().snapshot();
    let create = wire::Writer::new().cap(&rig.wallet).u64(PREPAY).finish();
    let calls = (0..CALLS)
        .map(|_| (null_cap(), ops::CREATE, create.clone()))
        .collect();
    let results = svc.call_batch(rig.fs_port, calls).unwrap();
    let batched = rig.net.stats().snapshot() - before;
    for r in results {
        let cap = wire::Reader::new(&r.unwrap()).cap().unwrap();
        fs.destroy(&cap).unwrap();
    }

    println!(
        "rpc-batching/frames-on-the-wire/metered-create/{CALLS}: \
         unbatched={} batched={} ({:.1}x fewer), wire bytes {} vs {}",
        unbatched.packets_sent,
        batched.packets_sent,
        unbatched.packets_sent as f64 / batched.packets_sent.max(1) as f64,
        unbatched.bytes_sent,
        batched.bytes_sent,
    );
}

criterion_group!(benches, bench_rpc_batching);
criterion_main!(benches);
