//! Experiment **E7** — port location by broadcast with caching (§2.2,
//! Mullender–Vitányi match-making).
//!
//! Cold lookups broadcast a LOCATE to every machine and wait for the
//! owner's answer; warm lookups hit the (port, machine) cache. The
//! sweep over machine count shows broadcast cost growing with the
//! network while cache hits stay flat — the case for caching.

use amoeba_bench::net_group;
use amoeba_net::{Network, Port};
use amoeba_rpc::matchmaker::{Matchmaker, RendezvousNode};
use amoeba_rpc::{Locator, ServerPort};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

struct LocateWorld {
    _bystanders: Vec<ServerPort>,
    target_port: Port,
    handles: Vec<std::thread::JoinHandle<()>>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    client: amoeba_net::Endpoint,
}

/// `machines` total machines: one target server, the rest idle servers
/// that still hear (and ignore) every broadcast.
fn world(net: &Network, machines: usize) -> LocateWorld {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();

    // The target: answers LOCATE for its port inside next_request.
    let target = ServerPort::bind(net.attach_open(), Port::new(0x7A46E7).unwrap());
    let target_port = target.put_port();
    {
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match target.next_request_timeout(Duration::from_millis(10)) {
                    Ok(req) => target.reply(&req, Bytes::new()),
                    Err(_) => continue,
                }
            }
        }));
    }

    // Bystanders: servers on other ports that must still process the
    // broadcast frames.
    for i in 0..machines.saturating_sub(2) {
        let server = ServerPort::bind(net.attach_open(), Port::new(0x100000 + i as u64).unwrap());
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = server.next_request_timeout(Duration::from_millis(10));
            }
        }));
    }

    LocateWorld {
        _bystanders: Vec::new(),
        target_port,
        handles,
        stop,
        client: net.attach_open(),
    }
}

fn bench_locate(c: &mut Criterion) {
    let mut g = net_group(c, "E7/locate");
    g.sample_size(10);

    for machines in [4usize, 16, 64] {
        let net = Network::new();
        let w = world(&net, machines);

        // Cold: clear the cache every iteration => one broadcast each.
        g.bench_with_input(
            BenchmarkId::new("cold-broadcast", machines),
            &machines,
            |b, _| {
                let locator = Locator::with_timeout(Duration::from_millis(500));
                b.iter(|| {
                    locator.clear();
                    black_box(locator.locate(&w.client, w.target_port).expect("found"))
                })
            },
        );

        // Warm: pure cache hit.
        g.bench_with_input(
            BenchmarkId::new("warm-cache", machines),
            &machines,
            |b, _| {
                let locator = Locator::with_timeout(Duration::from_millis(500));
                locator.locate(&w.client, w.target_port).expect("primed");
                b.iter(|| black_box(locator.locate(&w.client, w.target_port).expect("hit")))
            },
        );

        w.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in w.handles {
            let _ = h.join();
        }
    }
    g.finish();
}

fn bench_rendezvous_matchmaking(c: &mut Criterion) {
    // The no-broadcast alternative (Mullender–Vitányi): a cold lookup is
    // one unicast query to a hash-selected rendezvous node, independent
    // of the machine count — compare with the broadcast rows above.
    let mut g = net_group(c, "E7/rendezvous");
    g.sample_size(10);

    for machines in [4usize, 16, 64] {
        let net = Network::new();
        // Idle bystander machines (attached, but no broadcast ever
        // reaches them under rendezvous match-making).
        let _bystanders: Vec<_> = (0..machines.saturating_sub(3))
            .map(|_| net.attach_open())
            .collect();
        let node = RendezvousNode::spawn(net.attach_open(), Port::new(0xAA10).unwrap());
        let mm = Matchmaker::new(vec![node.service_port()]);
        let server = net.attach_open();
        let served = Port::new(0x5E21).unwrap();
        mm.post(&server, served);
        let client = net.attach_open();

        g.bench_with_input(
            BenchmarkId::new("cold-unicast", machines),
            &machines,
            |b, _| {
                b.iter(|| {
                    mm.invalidate(served);
                    black_box(mm.locate(&client, served).expect("found"))
                })
            },
        );
        node.stop();
    }
    g.finish();
}

criterion_group!(benches, bench_locate, bench_rendezvous_matchmaking);
criterion_main!(benches);
