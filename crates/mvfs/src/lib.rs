//! The Amoeba **multiversion file server** (§3.5).
//!
//! "Each file consists of a tree of pages ... a user can ask to make a
//! new version of a file, which results in a capability for the new
//! version. The new version acts like it is a page-by-page copy of the
//! original, although in fact, pages are only copied when they are
//! changed. The new version can be modified at will, and then atomically
//! 'committed', thus becoming the new file. A file is thus a sequence of
//! versions. Once a version of a file has been committed, it cannot be
//! modified." (Designed for write-once media.)
//!
//! Commit uses the **optimistic concurrency control** of the cited
//! Mullender–Tanenbaum 1982 report: a version remembers which committed
//! state it was derived from; if another version committed in the
//! meantime, COMMIT answers `Conflict` and the client must re-derive.
//!
//! Copy-on-write is per page via `Arc` sharing; `version_info` exposes
//! how many pages a version still shares with the file head, which the
//! `mvfs_cow` benchmark (experiment E9) reports.
//!
//! # Example
//!
//! ```
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_mvfs::{MvfsClient, MvfsServer};
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
//! let fs = MvfsClient::open(&net, runner.put_port());
//!
//! let file = fs.create_file().unwrap();
//! let v1 = fs.new_version(&file).unwrap();
//! fs.write_page(&v1, 0, b"draft one").unwrap();
//! fs.commit(&v1).unwrap();
//! assert_eq!(fs.read_page(&file, 0).unwrap()[..9], *b"draft one");
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, ObjectNum, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Multiversion-file-server operation codes.
pub mod ops {
    /// Create an empty file; anonymous. Reply: file capability.
    pub const CREATE_FILE: u32 = 1;
    /// Derive a new (uncommitted) version (requires WRITE on the file).
    /// Reply: version capability.
    pub const NEW_VERSION: u32 = 2;
    /// Read one page (file cap: head; version cap: that version).
    /// Params: `u32 page`. Reply: page bytes.
    pub const READ_PAGE: u32 = 3;
    /// Write one page of an uncommitted version. Params: `u32 page`,
    /// bytes (≤ page size).
    pub const WRITE_PAGE: u32 = 4;
    /// Atomically commit a version (requires WRITE). `Conflict` if the
    /// file advanced since the version was derived.
    pub const COMMIT: u32 = 5;
    /// File info. Reply: `u64 committed_versions`, `u32 pages`.
    pub const FILE_INFO: u32 = 6;
    /// Version info. Reply: `u64 base_version`, `u32 committed`,
    /// `u32 pages`, `u32 pages_shared_with_head`.
    pub const VERSION_INFO: u32 = 7;
    /// Destroy a file and its history (requires DELETE).
    pub const DESTROY: u32 = 8;
    /// The server's page size; anonymous. Reply: `u32`.
    pub const PAGE_SIZE: u32 = 9;
}

type Page = Arc<Vec<u8>>;

#[derive(Debug)]
enum MvObject {
    File {
        head: Vec<Page>,
        committed_versions: u64,
    },
    Version {
        parent: ObjectNum,
        pages: Vec<Page>,
        base_version: u64,
        committed: bool,
    },
}

/// Summary of a file, from [`MvfsClient::file_info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileInfo {
    /// How many versions have been committed.
    pub committed_versions: u64,
    /// Pages in the head version.
    pub pages: u32,
}

/// Summary of a version, from [`MvfsClient::version_info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    /// The committed version count this version was derived from.
    pub base_version: u64,
    /// Whether the version has been committed (immutable).
    pub committed: bool,
    /// Pages in this version.
    pub pages: u32,
    /// Pages physically shared with the file's current head (the
    /// copy-on-write payoff).
    pub shared_with_head: u32,
}

/// The multiversion file server.
#[derive(Debug)]
pub struct MvfsServer {
    table: ObjectTable<MvObject>,
    page_size: usize,
}

impl MvfsServer {
    /// A server with 1 KiB pages.
    pub fn new(scheme: SchemeKind) -> MvfsServer {
        Self::with_page_size(scheme, 1024)
    }

    /// A server with explicit page size.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn with_page_size(scheme: SchemeKind, page_size: usize) -> MvfsServer {
        assert!(page_size > 0, "page size must be nonzero");
        MvfsServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            page_size,
        }
    }

    fn new_version(&self, req: &Request) -> Reply {
        // Snapshot the parent head under READ|WRITE (deriving a version
        // is a mutation-intent operation).
        let parent_obj = req.cap.object;
        let snapshot = self
            .table
            .with_object(&req.cap, Rights::WRITE, |obj| match obj {
                MvObject::File {
                    head,
                    committed_versions,
                } => Some((head.clone(), *committed_versions)),
                MvObject::Version { .. } => None,
            });
        let (pages, base_version) = match snapshot {
            Ok(Some(s)) => s,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        let (_, cap) = self.table.create(MvObject::Version {
            parent: parent_obj,
            pages,
            base_version,
            committed: false,
        });
        Reply::ok(wire::Writer::new().cap(&cap).finish())
    }

    fn read_page(&self, req: &Request) -> Reply {
        let Some(page) = wire::Reader::new(&req.params).u32() else {
            return Reply::status(Status::BadRequest);
        };
        let result = self.table.with_object(&req.cap, Rights::READ, |obj| {
            let pages = match obj {
                MvObject::File { head, .. } => head,
                MvObject::Version { pages, .. } => pages,
            };
            pages.get(page as usize).map(|p| Bytes::copy_from_slice(p))
        });
        match result {
            Ok(Some(data)) => Reply::ok(data),
            Ok(None) => Reply::status(Status::OutOfRange),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn write_page(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(page), Some(data)) = (r.u32(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        if data.len() > self.page_size {
            return Reply::status(Status::OutOfRange);
        }
        let page_size = self.page_size;
        let result = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |obj| match obj {
                MvObject::Version {
                    pages, committed, ..
                } => {
                    if *committed {
                        // Write-once: committed versions are immutable.
                        return Some(false);
                    }
                    let idx = page as usize;
                    if idx >= pages.len() {
                        pages.resize_with(idx + 1, || Arc::new(vec![0u8; page_size]));
                    }
                    let mut fresh = vec![0u8; page_size];
                    fresh[..data.len()].copy_from_slice(data);
                    pages[idx] = Arc::new(fresh); // the actual copy-on-write
                    Some(true)
                }
                MvObject::File { .. } => None,
            });
        match result {
            Ok(Some(true)) => Reply::ok(Bytes::new()),
            Ok(Some(false)) => Reply::status(Status::Conflict),
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn commit(&self, req: &Request) -> Reply {
        // Read the version state (must be uncommitted and writable).
        let version = self
            .table
            .with_object(&req.cap, Rights::WRITE, |obj| match obj {
                MvObject::Version {
                    parent,
                    pages,
                    base_version,
                    committed,
                } => Some((*parent, pages.clone(), *base_version, *committed)),
                MvObject::File { .. } => None,
            });
        let (parent, pages, base_version, committed) = match version {
            Ok(Some(v)) => v,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        if committed {
            return Reply::status(Status::Conflict);
        }
        // Optimistic concurrency: install only if nobody else committed
        // since this version was derived.
        let installed = self.table.with_data_mut(parent, |obj| match obj {
            MvObject::File {
                head,
                committed_versions,
            } => {
                if *committed_versions != base_version {
                    false
                } else {
                    *head = pages.clone();
                    *committed_versions += 1;
                    true
                }
            }
            MvObject::Version { .. } => false,
        });
        match installed {
            Some(true) => {
                // Seal the version object.
                let _ = self.table.with_object_mut(&req.cap, Rights::WRITE, |obj| {
                    if let MvObject::Version { committed, .. } = obj {
                        *committed = true;
                    }
                });
                Reply::ok(Bytes::new())
            }
            Some(false) => Reply::status(Status::Conflict),
            None => Reply::status(Status::NoSuchObject), // parent destroyed
        }
    }

    fn file_info(&self, req: &Request) -> Reply {
        let result = self
            .table
            .with_object(&req.cap, Rights::READ, |obj| match obj {
                MvObject::File {
                    head,
                    committed_versions,
                } => Some((*committed_versions, head.len() as u32)),
                MvObject::Version { .. } => None,
            });
        match result {
            Ok(Some((versions, pages))) => {
                Reply::ok(wire::Writer::new().u64(versions).u32(pages).finish())
            }
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn version_info(&self, req: &Request) -> Reply {
        let version = self
            .table
            .with_object(&req.cap, Rights::READ, |obj| match obj {
                MvObject::Version {
                    parent,
                    pages,
                    base_version,
                    committed,
                } => Some((*parent, pages.clone(), *base_version, *committed)),
                MvObject::File { .. } => None,
            });
        let (parent, pages, base_version, committed) = match version {
            Ok(Some(v)) => v,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        let shared = self
            .table
            .with_data(parent, |obj| match obj {
                MvObject::File { head, .. } => pages
                    .iter()
                    .zip(head.iter())
                    .filter(|(a, b)| Arc::ptr_eq(a, b))
                    .count() as u32,
                MvObject::Version { .. } => 0,
            })
            .unwrap_or(0);
        Reply::ok(
            wire::Writer::new()
                .u64(base_version)
                .u32(committed as u32)
                .u32(pages.len() as u32)
                .u32(shared)
                .finish(),
        )
    }

    fn destroy(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(_) => Reply::ok(Bytes::new()),
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for MvfsServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE_FILE => {
                let (_, cap) = self.table.create(MvObject::File {
                    head: Vec::new(),
                    committed_versions: 0,
                });
                Reply::ok(wire::Writer::new().cap(&cap).finish())
            }
            ops::NEW_VERSION => self.new_version(req),
            ops::READ_PAGE => self.read_page(req),
            ops::WRITE_PAGE => self.write_page(req),
            ops::COMMIT => self.commit(req),
            ops::FILE_INFO => self.file_info(req),
            ops::VERSION_INFO => self.version_info(req),
            ops::DESTROY => self.destroy(req),
            ops::PAGE_SIZE => Reply::ok(wire::Writer::new().u32(self.page_size as u32).finish()),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A typed client for the multiversion file server.
#[derive(Debug)]
pub struct MvfsClient {
    svc: ServiceClient,
    port: Port,
    /// The server's page size, learned once and reused — geometry is
    /// immutable, so every later ranged read/write saves a round-trip.
    /// 0 = not yet fetched.
    cached_page_size: AtomicU32,
}

impl MvfsClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> MvfsClient {
        MvfsClient {
            svc: ServiceClient::open(net),
            port,
            cached_page_size: AtomicU32::new(0),
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> MvfsClient {
        MvfsClient {
            svc,
            port,
            cached_page_size: AtomicU32::new(0),
        }
    }

    /// Creates an empty multiversion file.
    ///
    /// # Errors
    /// Transport errors.
    pub fn create_file(&self) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::CREATE_FILE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Derives a new uncommitted version (cheap: pages are shared until
    /// written).
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn new_version(&self, file: &Capability) -> Result<Capability, ClientError> {
        let body = self.svc.call(file, ops::NEW_VERSION, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Reads page `page` (head pages through a file capability, version
    /// pages through a version capability).
    ///
    /// # Errors
    /// `OutOfRange` past the last page.
    pub fn read_page(&self, cap: &Capability, page: u32) -> Result<Vec<u8>, ClientError> {
        let body = self
            .svc
            .call(cap, ops::READ_PAGE, wire::Writer::new().u32(page).finish())?;
        Ok(body.to_vec())
    }

    /// Writes page `page` of an uncommitted version (data padded with
    /// zeros to the page size).
    ///
    /// # Errors
    /// `Conflict` on a committed version; `OutOfRange` if data exceeds
    /// the page size.
    pub fn write_page(
        &self,
        version: &Capability,
        page: u32,
        data: &[u8],
    ) -> Result<(), ClientError> {
        self.svc.call(
            version,
            ops::WRITE_PAGE,
            wire::Writer::new().u32(page).bytes(data).finish(),
        )?;
        Ok(())
    }

    /// Atomically commits the version.
    ///
    /// # Errors
    /// `Conflict` if another version committed first (optimistic
    /// concurrency) or the version was already committed.
    pub fn commit(&self, version: &Capability) -> Result<(), ClientError> {
        self.svc.call(version, ops::COMMIT, Bytes::new())?;
        Ok(())
    }

    /// File summary.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn file_info(&self, file: &Capability) -> Result<FileInfo, ClientError> {
        let body = self.svc.call(file, ops::FILE_INFO, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        match (r.u64(), r.u32()) {
            (Some(committed_versions), Some(pages)) => Ok(FileInfo {
                committed_versions,
                pages,
            }),
            _ => Err(ClientError::Malformed),
        }
    }

    /// Version summary including copy-on-write sharing.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn version_info(&self, version: &Capability) -> Result<VersionInfo, ClientError> {
        let body = self.svc.call(version, ops::VERSION_INFO, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        match (r.u64(), r.u32(), r.u32(), r.u32()) {
            (Some(base_version), Some(committed), Some(pages), Some(shared)) => Ok(VersionInfo {
                base_version,
                committed: committed != 0,
                pages,
                shared_with_head: shared,
            }),
            _ => Err(ClientError::Malformed),
        }
    }

    /// Destroys a file or version object.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn destroy(&self, cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(cap, ops::DESTROY, Bytes::new())?;
        Ok(())
    }

    /// The server's page size in bytes — fetched once, then answered
    /// from a local atomic (page size is fixed server geometry).
    ///
    /// # Errors
    /// Transport errors (first call only).
    pub fn page_size(&self) -> Result<u32, ClientError> {
        let cached = self.cached_page_size.load(Ordering::Acquire);
        if cached != 0 {
            return Ok(cached);
        }
        let body = self
            .svc
            .call_anonymous(self.port, ops::PAGE_SIZE, Bytes::new())?;
        let size = wire::Reader::new(&body)
            .u32()
            .ok_or(ClientError::Malformed)?;
        self.cached_page_size.store(size, Ordering::Release);
        Ok(size)
    }

    /// Convenience: reads `len` bytes at byte `offset`, spanning pages.
    /// Reads past the last page are truncated.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn read_range(
        &self,
        cap: &Capability,
        offset: u64,
        len: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let page_size = self.page_size()? as u64;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let page = (pos / page_size) as u32;
            let within = (pos % page_size) as usize;
            let take = ((page_size as usize - within) as u64).min(end - pos) as usize;
            match self.read_page(cap, page) {
                Ok(data) => out.extend_from_slice(&data[within..within + take]),
                Err(ClientError::Status(Status::OutOfRange)) => break, // past EOF
                Err(e) => return Err(e),
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Convenience: writes `data` at byte `offset` into an uncommitted
    /// version, spanning pages (read-modify-write at the edges).
    ///
    /// # Errors
    /// Rights/validation errors; `Conflict` on a committed version.
    pub fn write_range(
        &self,
        version: &Capability,
        offset: u64,
        data: &[u8],
    ) -> Result<(), ClientError> {
        let page_size = self.page_size()? as usize;
        let mut pos = offset as usize;
        let mut remaining = data;
        while !remaining.is_empty() {
            let page = (pos / page_size) as u32;
            let within = pos % page_size;
            let take = (page_size - within).min(remaining.len());
            let mut buf = match self.read_page(version, page) {
                Ok(existing) => existing,
                Err(ClientError::Status(Status::OutOfRange)) => vec![0u8; page_size],
                Err(e) => return Err(e),
            };
            buf.resize(page_size, 0);
            buf[within..within + take].copy_from_slice(&remaining[..take]);
            self.write_page(version, page, &buf)?;
            pos += take;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup() -> (Network, ServiceRunner, MvfsClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
        let client = MvfsClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn version_commit_becomes_head() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        assert_eq!(fs.file_info(&file).unwrap().committed_versions, 0);
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, b"page zero").unwrap();
        fs.write_page(&v, 2, b"page two").unwrap();
        // Until commit the file head is unchanged.
        assert_eq!(fs.file_info(&file).unwrap().pages, 0);
        fs.commit(&v).unwrap();
        let info = fs.file_info(&file).unwrap();
        assert_eq!(info.committed_versions, 1);
        assert_eq!(info.pages, 3);
        assert_eq!(&fs.read_page(&file, 0).unwrap()[..9], b"page zero");
        // The hole page is zero-filled.
        assert!(fs.read_page(&file, 1).unwrap().iter().all(|&b| b == 0));
        runner.stop();
    }

    #[test]
    fn committed_version_is_immutable() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, b"final").unwrap();
        fs.commit(&v).unwrap();
        assert_eq!(
            fs.write_page(&v, 0, b"sneaky edit").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        assert_eq!(
            fs.commit(&v).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        // But still readable: a version is a durable snapshot.
        assert_eq!(&fs.read_page(&v, 0).unwrap()[..5], b"final");
        runner.stop();
    }

    #[test]
    fn optimistic_concurrency_conflict() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        let v1 = fs.new_version(&file).unwrap();
        let v2 = fs.new_version(&file).unwrap();
        fs.write_page(&v1, 0, b"first writer").unwrap();
        fs.write_page(&v2, 0, b"second writer").unwrap();
        fs.commit(&v1).unwrap();
        // v2 was derived from the same base; it must lose.
        assert_eq!(
            fs.commit(&v2).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        assert_eq!(&fs.read_page(&file, 0).unwrap()[..12], b"first writer");
        // Re-derive and retry: now it works.
        let v3 = fs.new_version(&file).unwrap();
        fs.write_page(&v3, 0, b"second writer").unwrap();
        fs.commit(&v3).unwrap();
        runner.stop();
    }

    #[test]
    fn copy_on_write_shares_untouched_pages() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        // Build a 16-page committed file.
        let v = fs.new_version(&file).unwrap();
        for p in 0..16 {
            fs.write_page(&v, p, format!("page {p}").as_bytes())
                .unwrap();
        }
        fs.commit(&v).unwrap();
        // New version, touch a single page.
        let v2 = fs.new_version(&file).unwrap();
        let before = fs.version_info(&v2).unwrap();
        assert_eq!(before.pages, 16);
        assert_eq!(before.shared_with_head, 16, "all pages shared initially");
        fs.write_page(&v2, 7, b"modified").unwrap();
        let after = fs.version_info(&v2).unwrap();
        assert_eq!(after.shared_with_head, 15, "exactly one page copied");
        runner.stop();
    }

    #[test]
    fn old_version_snapshot_survives_new_commits() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        let v1 = fs.new_version(&file).unwrap();
        fs.write_page(&v1, 0, b"v1 content").unwrap();
        fs.commit(&v1).unwrap();
        let v2 = fs.new_version(&file).unwrap();
        fs.write_page(&v2, 0, b"v2 content").unwrap();
        fs.commit(&v2).unwrap();
        // The v1 capability still reads the old snapshot.
        assert_eq!(&fs.read_page(&v1, 0).unwrap()[..10], b"v1 content");
        assert_eq!(&fs.read_page(&file, 0).unwrap()[..10], b"v2 content");
        runner.stop();
    }

    #[test]
    fn oversized_page_write_rejected() {
        let net = Network::new();
        let runner =
            ServiceRunner::spawn_open(&net, MvfsServer::with_page_size(SchemeKind::Simple, 16));
        let fs = MvfsClient::open(&net, runner.put_port());
        let file = fs.create_file().unwrap();
        let v = fs.new_version(&file).unwrap();
        assert_eq!(
            fs.write_page(&v, 0, &[0u8; 17]).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        runner.stop();
    }

    #[test]
    fn read_only_file_cap_cannot_derive_versions() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        let ro = fs.service().restrict(&file, Rights::READ).unwrap();
        assert_eq!(
            fs.new_version(&ro).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn byte_range_helpers_span_pages() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(
            &net,
            MvfsServer::with_page_size(SchemeKind::Commutative, 64),
        );
        let fs = MvfsClient::open(&net, runner.put_port());
        assert_eq!(fs.page_size().unwrap(), 64);

        let file = fs.create_file().unwrap();
        let v = fs.new_version(&file).unwrap();
        // 200 bytes starting at byte 40: touches pages 0..=3.
        let data: Vec<u8> = (0..200u8).collect();
        fs.write_range(&v, 40, &data).unwrap();
        assert_eq!(fs.read_range(&v, 40, 200).unwrap(), data);
        // Unaligned inner read.
        assert_eq!(fs.read_range(&v, 100, 10).unwrap(), data[60..70]);
        // The write preserved untouched bytes of the first page.
        assert!(fs.read_range(&v, 0, 40).unwrap().iter().all(|&b| b == 0));
        fs.commit(&v).unwrap();
        assert_eq!(fs.read_range(&file, 40, 200).unwrap(), data);
        runner.stop();
    }

    #[test]
    fn page_size_is_fetched_once() {
        let (net, runner, fs) = setup();
        let first = fs.page_size().unwrap();
        let before = net.stats().snapshot().packets_sent;
        assert_eq!(fs.page_size().unwrap(), first);
        assert_eq!(
            net.stats().snapshot().packets_sent,
            before,
            "repeat geometry queries must be answered locally"
        );
        runner.stop();
    }

    #[test]
    fn commit_against_destroyed_file_fails() {
        let (_n, runner, fs) = setup();
        let file = fs.create_file().unwrap();
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, b"orphan").unwrap();
        fs.destroy(&file).unwrap();
        assert_eq!(
            fs.commit(&v).unwrap_err(),
            ClientError::Status(Status::NoSuchObject)
        );
        runner.stop();
    }
}
