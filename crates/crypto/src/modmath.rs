//! Modular arithmetic over `u64` moduli, used by the [Purdy
//! polynomial](crate::purdy), the [commutative one-way
//! functions](crate::commutative) and [small RSA](crate::rsa).
//!
//! All routines use `u128` intermediates, so they are exact for any
//! modulus that fits in 64 bits.

/// Multiplies `a * b mod m` without overflow.
///
/// # Example
/// ```
/// assert_eq!(amoeba_crypto::modmath::mul_mod(u64::MAX - 1, 2, u64::MAX), u64::MAX - 2);
/// ```
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Adds `a + b mod m` without overflow.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 + b as u128) % m as u128) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
///
/// `pow_mod(x, 0, m)` is `1 % m` for any `x`, matching the mathematical
/// convention `x^0 = 1`.
///
/// # Panics
/// Panics if `m == 0`.
///
/// # Example
/// ```
/// // Fermat: 2^(p-1) = 1 mod p for prime p.
/// assert_eq!(amoeba_crypto::modmath::pow_mod(2, 1_000_000_006, 1_000_000_007), 1);
/// ```
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut base = base % m;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Computes the greatest common divisor of `a` and `b`.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the modular inverse of `a` modulo `m`, if it exists.
///
/// Returns `None` when `gcd(a, m) != 1`.
///
/// # Example
/// ```
/// use amoeba_crypto::modmath::{inv_mod, mul_mod};
/// let inv = inv_mod(3, 7).unwrap();
/// assert_eq!(mul_mod(3, inv, 7), 1);
/// assert!(inv_mod(2, 4).is_none());
/// ```
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    // Extended Euclid over signed 128-bit intermediates.
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        let tmp_r = old_r - q * r;
        old_r = r;
        r = tmp_r;
        let tmp_s = old_s - q * s;
        old_s = s;
        s = tmp_s;
    }
    if old_r != 1 {
        return None;
    }
    let m_i = m as i128;
    Some(((old_s % m_i + m_i) % m_i) as u64)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the fixed witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31,
/// 37}` which is known to be sufficient for every 64-bit integer.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the smallest prime `>= n` (wrapping is impossible for inputs
/// below the largest 64-bit prime, which is all we ever use).
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(0, 0, 7), 1);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
        assert_eq!(pow_mod(5, 3, 7), 125 % 7);
        assert_eq!(pow_mod(123, 456, 1), 0);
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn pow_mod_zero_modulus_panics() {
        pow_mod(2, 2, 0);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn inv_mod_cases() {
        assert_eq!(inv_mod(1, 2), Some(1));
        assert_eq!(inv_mod(3, 7), Some(5));
        assert_eq!(inv_mod(10, 17), Some(12));
        assert_eq!(inv_mod(6, 9), None);
    }

    #[test]
    fn primality_known_values() {
        let primes = [2u64, 3, 5, 7, 61, 2_147_483_647, 0x1FFF_FFFF_FFFF_FFFF];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        // 2^61 - 1 is a Mersenne prime.
        assert!(is_prime((1u64 << 61) - 1));
        let composites = [0u64, 1, 4, 561, 1_373_653, 25_326_001, 3_215_031_751];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn next_prime_cases() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
    }

    proptest! {
        #[test]
        fn mul_mod_matches_u128(a: u64, b: u64, m in 1u64..) {
            prop_assert_eq!(mul_mod(a, b, m) as u128, (a as u128 * b as u128) % m as u128);
        }

        #[test]
        fn pow_mod_matches_iterated_multiplication(base: u64, exp in 0u64..64, m in 2u64..) {
            let mut acc = 1u64;
            for _ in 0..exp {
                acc = mul_mod(acc, base % m, m);
            }
            prop_assert_eq!(pow_mod(base, exp, m), acc);
        }

        #[test]
        fn inverse_really_inverts(a in 1u64.., m in 2u64..) {
            if let Some(inv) = inv_mod(a % m, m) {
                prop_assert_eq!(mul_mod(a % m, inv, m), 1);
            } else {
                prop_assert!(gcd(a % m, m) != 1);
            }
        }

        #[test]
        fn fermat_holds_for_next_prime(n in 3u64..1u64 << 40, a in 2u64..1000) {
            let p = next_prime(n);
            if a % p != 0 {
                prop_assert_eq!(pow_mod(a, p - 1, p), 1);
            }
        }
    }
}
