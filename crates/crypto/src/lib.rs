//! From-scratch cryptographic primitives for the Amoeba sparse-capability
//! reproduction.
//!
//! The 1986 paper relies on a small set of unusual primitives that no
//! off-the-shelf crate provides in the required shapes:
//!
//! * a **public one-way function** `F` over 48-bit port numbers
//!   (`P = F(G)`, §2.2 of the paper) — provided both as the historically
//!   cited [Purdy polynomial](purdy) and as a modern
//!   [SHA-256-based](oneway::ShaOneWay) construction;
//! * a **56-bit block cipher** for protection *scheme 1*, which encrypts
//!   the concatenated `RIGHTS‖RANDOM` field of a capability as a single
//!   56-bit value ([`feistel`]);
//! * a family of **commutative one-way functions** for protection
//!   *scheme 3*, letting clients delete rights without a server round
//!   trip ([`commutative`]);
//! * **DES**, the "conventional" cipher the paper names for the software
//!   key-matrix scheme of §2.4 ([`des`]);
//! * a **public-key system** for the key-establishment handshake of §2.4
//!   ([`rsa`] — simulation-scale, *not* secure).
//!
//! Everything here is deterministic, dependency-free (apart from `rand`
//! for key generation) and extensively tested against published vectors
//! where they exist (SHA-256, DES).
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::oneway::{OneWay, ShaOneWay};
//!
//! let f = ShaOneWay::default();
//! let get_port = 0x1234_5678_9abc_u64; // server's secret
//! let put_port = f.apply48(get_port);  // published
//! assert_ne!(get_port, put_port);
//! // Applying F again does not recover the get-port.
//! assert_ne!(f.apply48(put_port), get_port);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commutative;
pub mod des;
pub mod feistel;
pub mod modmath;
pub mod oneway;
pub mod purdy;
pub mod rsa;
pub mod sha256;

pub use commutative::CommutativeOwfFamily;
pub use des::{Des, TripleDes};
pub use feistel::Feistel56;
pub use oneway::{OneWay, PurdyOneWay, ShaOneWay};
pub use sha256::Sha256;
