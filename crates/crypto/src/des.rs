//! A complete from-scratch DES implementation (FIPS 46-3).
//!
//! §2.4 of the paper protects capabilities without F-boxes by encrypting
//! them with "conventional (e.g., DES) encryption keys" selected from a
//! (source machine, destination machine) key matrix. This module provides
//! exactly that cipher, verified against published known-answer vectors.
//!
//! DES is, of course, not a secure cipher by modern standards; it is
//! reproduced here because the paper names it and because its 64-bit
//! block conveniently covers half of a 128-bit Amoeba capability.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::des::Des;
//!
//! let des = Des::new(0x133457799BBCDFF1);
//! let ciphertext = des.encrypt_block(0x0123456789ABCDEF);
//! assert_eq!(ciphertext, 0x85E813540F0AB405);
//! assert_eq!(des.decrypt_block(ciphertext), 0x0123456789ABCDEF);
//! ```

/// Initial permutation.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (inverse of IP).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion from 32 to 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (key schedule input, drops parity bits).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 -> 48 bits per round key).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-shift amounts for the key schedule.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight DES S-boxes.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a DES bit permutation table. Bit 1 in the table is the MSB of
/// the `width`-bit input value.
fn permute(value: u64, width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (value >> (width - pos as u32)) & 1;
    }
    out
}

/// A DES instance with a fixed key schedule.
///
/// Parity bits (the low bit of each key byte) are ignored, as the
/// standard specifies.
#[derive(Debug, Clone)]
pub struct Des {
    round_keys: [u64; 16],
}

impl Des {
    /// Builds the 16-round key schedule from a 64-bit key.
    pub fn new(key: u64) -> Self {
        let mut round_keys = [0u64; 16];
        let permuted = permute(key, 64, &PC1);
        let mut c = (permuted >> 28) & 0x0FFF_FFFF;
        let mut d = permuted & 0x0FFF_FFFF;
        for round in 0..16 {
            let s = SHIFTS[round] as u32;
            c = ((c << s) | (c >> (28 - s))) & 0x0FFF_FFFF;
            d = ((d << s) | (d >> (28 - s))) & 0x0FFF_FFFF;
            round_keys[round] = permute((c << 28) | d, 56, &PC2);
        }
        Des { round_keys }
    }

    /// Creates a DES instance from 8 key bytes (big-endian).
    pub fn from_key_bytes(key: [u8; 8]) -> Self {
        Self::new(u64::from_be_bytes(key))
    }

    /// The Feistel round function: expand, mix key, S-boxes, permute.
    fn f(r: u32, k: u64) -> u32 {
        let expanded = permute(r as u64, 32, &E) ^ k;
        let mut out = 0u32;
        for (i, sbox) in SBOX.iter().enumerate() {
            let chunk = ((expanded >> (42 - 6 * i)) & 0x3F) as usize;
            // Row = outer bits, column = inner 4 bits.
            let row = ((chunk & 0x20) >> 4) | (chunk & 1);
            let col = (chunk >> 1) & 0xF;
            out = (out << 4) | sbox[(row << 4) | col] as u32;
        }
        permute(out as u64, 32, &P) as u32
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let permuted = permute(block, 64, &IP);
        let mut l = (permuted >> 32) as u32;
        let mut r = permuted as u32;
        for round in 0..16 {
            let k = if decrypt {
                self.round_keys[15 - round]
            } else {
                self.round_keys[round]
            };
            let next_r = l ^ Self::f(r, k);
            l = r;
            r = next_r;
        }
        // Final swap, then FP.
        let preoutput = ((r as u64) << 32) | l as u64;
        permute(preoutput, 64, &FP)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }

    /// Encrypts a 128-bit value (e.g. an encoded Amoeba capability) as
    /// two blocks in CBC order with a zero IV: `c0 = E(p0)`,
    /// `c1 = E(p1 XOR c0)`.
    ///
    /// The chaining matters: it makes the second half's ciphertext depend
    /// on the first, so splicing halves of two encrypted capabilities
    /// yields garbage.
    pub fn encrypt_u128(&self, value: u128) -> u128 {
        let p0 = (value >> 64) as u64;
        let p1 = value as u64;
        let c0 = self.encrypt_block(p0);
        let c1 = self.encrypt_block(p1 ^ c0);
        ((c0 as u128) << 64) | c1 as u128
    }

    /// Inverse of [`Des::encrypt_u128`].
    pub fn decrypt_u128(&self, value: u128) -> u128 {
        let c0 = (value >> 64) as u64;
        let c1 = value as u64;
        let p0 = self.decrypt_block(c0);
        let p1 = self.decrypt_block(c1) ^ c0;
        ((p0 as u128) << 64) | p1 as u128
    }
}

impl Des {
    /// Encrypts arbitrary bytes in CBC mode with PKCS#5-style padding.
    ///
    /// Used for §2.4's optional *data* encryption ("The data need not be
    /// encrypted, although that is also possible if needed") and for the
    /// link-level encryption alternative. The IV is prepended to the
    /// ciphertext.
    pub fn encrypt_cbc(&self, data: &[u8], iv: u64) -> Vec<u8> {
        let pad = 8 - (data.len() % 8);
        let mut padded = Vec::with_capacity(data.len() + pad);
        padded.extend_from_slice(data);
        padded.extend(std::iter::repeat_n(pad as u8, pad));

        let mut out = Vec::with_capacity(8 + padded.len());
        out.extend_from_slice(&iv.to_be_bytes());
        let mut prev = iv;
        for chunk in padded.chunks(8) {
            let block = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            let ct = self.encrypt_block(block ^ prev);
            out.extend_from_slice(&ct.to_be_bytes());
            prev = ct;
        }
        out
    }

    /// Inverse of [`Des::encrypt_cbc`]. Returns `None` for malformed
    /// input (wrong length, bad padding) — e.g. ciphertext produced
    /// under a different key.
    pub fn decrypt_cbc(&self, data: &[u8]) -> Option<Vec<u8>> {
        if data.len() < 16 || !data.len().is_multiple_of(8) {
            return None;
        }
        let mut prev = u64::from_be_bytes(data[..8].try_into().ok()?);
        let mut out = Vec::with_capacity(data.len() - 8);
        for chunk in data[8..].chunks(8) {
            let ct = u64::from_be_bytes(chunk.try_into().ok()?);
            let pt = self.decrypt_block(ct) ^ prev;
            out.extend_from_slice(&pt.to_be_bytes());
            prev = ct;
        }
        let pad = *out.last()? as usize;
        if pad == 0 || pad > 8 || pad > out.len() {
            return None;
        }
        if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
            return None;
        }
        out.truncate(out.len() - pad);
        Some(out)
    }
}

/// Triple DES in EDE mode: `C = E_k1(D_k2(E_k3(P)))`.
///
/// Included as the natural 1980s strengthening of the §2.4 key matrix —
/// the matrix entries simply become key triples; nothing else in the
/// software-protection design changes (which is the point).
#[derive(Debug, Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Three-key EDE.
    pub fn new(k1: u64, k2: u64, k3: u64) -> TripleDes {
        TripleDes {
            k1: Des::new(k1),
            k2: Des::new(k2),
            k3: Des::new(k3),
        }
    }

    /// Two-key variant (`k3 = k1`), the common 1980s deployment.
    pub fn two_key(k1: u64, k2: u64) -> TripleDes {
        Self::new(k1, k2, k1)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        self.k1
            .encrypt_block(self.k2.decrypt_block(self.k3.encrypt_block(block)))
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        self.k3
            .decrypt_block(self.k2.encrypt_block(self.k1.decrypt_block(block)))
    }

    /// Encrypts a 128-bit value as two chained blocks (see
    /// [`Des::encrypt_u128`]).
    pub fn encrypt_u128(&self, value: u128) -> u128 {
        let p0 = (value >> 64) as u64;
        let p1 = value as u64;
        let c0 = self.encrypt_block(p0);
        let c1 = self.encrypt_block(p1 ^ c0);
        ((c0 as u128) << 64) | c1 as u128
    }

    /// Inverse of [`TripleDes::encrypt_u128`].
    pub fn decrypt_u128(&self, value: u128) -> u128 {
        let c0 = (value >> 64) as u64;
        let c1 = value as u64;
        let p0 = self.decrypt_block(c0);
        let p1 = self.decrypt_block(c1) ^ c0;
        ((p0 as u128) << 64) | p1 as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_answer_classic_worked_example() {
        // The widely published worked example (e.g. Grabbe's DES tutorial).
        let des = Des::new(0x133457799BBCDFF1);
        assert_eq!(des.encrypt_block(0x0123456789ABCDEF), 0x85E813540F0AB405);
    }

    #[test]
    fn known_answer_second_vector() {
        let des = Des::new(0x0E329232EA6D0D73);
        assert_eq!(des.encrypt_block(0x8787878787878787), 0x0000000000000000);
        assert_eq!(des.decrypt_block(0), 0x8787878787878787);
    }

    #[test]
    fn parity_bits_are_ignored() {
        // Flipping the low (parity) bit of each key byte must not change
        // the key schedule.
        let a = Des::new(0x0123456789ABCDEF);
        let b = Des::new(0x0123456789ABCDEF ^ 0x0101010101010101);
        assert_eq!(
            a.encrypt_block(0xDEADBEEF01020304),
            b.encrypt_block(0xDEADBEEF01020304)
        );
    }

    #[test]
    fn weak_key_is_involution() {
        // All-zeros (after parity) is one of the four DES weak keys:
        // encryption equals decryption.
        let des = Des::new(0x0101010101010101);
        let p = 0x1122334455667788;
        assert_eq!(des.decrypt_block(des.decrypt_block(p)), p);
        assert_eq!(des.encrypt_block(des.encrypt_block(p)), p);
    }

    #[test]
    fn from_key_bytes_matches_u64() {
        let k = 0x133457799BBCDFF1u64;
        let a = Des::new(k);
        let b = Des::from_key_bytes(k.to_be_bytes());
        assert_eq!(a.encrypt_block(42), b.encrypt_block(42));
    }

    #[test]
    fn u128_halves_are_chained() {
        let des = Des::new(0xA5A5A5A5A5A5A5A5);
        let a = des.encrypt_u128(0x0000_0000_0000_0001_0000_0000_0000_0002);
        let b = des.encrypt_u128(0x0000_0000_0000_0003_0000_0000_0000_0002);
        // Same second plaintext half, different first half: both halves
        // of the ciphertext must differ.
        assert_ne!(a >> 64, b >> 64);
        assert_ne!(a as u64, b as u64);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let des = Des::new(0xA5A5_5A5A_1234_5678);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 100] {
            let data: Vec<u8> = (0..len as u8).collect();
            let ct = des.encrypt_cbc(&data, 0x1111_2222_3333_4444);
            assert_eq!(des.decrypt_cbc(&ct).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn cbc_identical_blocks_produce_different_ciphertext() {
        // The reason for CBC over ECB: repeated plaintext blocks must
        // not leak through as repeated ciphertext blocks.
        let des = Des::new(0x1357_9BDF_0246_8ACE);
        let data = [0x42u8; 32]; // four identical blocks
        let ct = des.encrypt_cbc(&data, 7);
        let blocks: Vec<&[u8]> = ct[8..].chunks(8).collect();
        assert_ne!(blocks[0], blocks[1]);
        assert_ne!(blocks[1], blocks[2]);
    }

    #[test]
    fn cbc_wrong_key_or_tampering_detected() {
        let a = Des::new(1);
        let b = Des::new(2);
        let ct = a.encrypt_cbc(b"link-level traffic", 9);
        // Wrong key: padding check almost surely fails; if it happens to
        // pass, the bytes differ.
        match b.decrypt_cbc(&ct) {
            None => {}
            Some(got) => assert_ne!(got, b"link-level traffic"),
        }
        assert_eq!(a.decrypt_cbc(&ct[..ct.len() - 1]), None, "truncated");
        assert_eq!(a.decrypt_cbc(&[1, 2, 3]), None, "too short");
    }

    #[test]
    fn triple_des_with_equal_keys_degenerates_to_des() {
        // E_k(D_k(E_k(P))) = E_k(P): the standard compatibility property.
        let k = 0x133457799BBCDFF1;
        let des = Des::new(k);
        let tdes = TripleDes::new(k, k, k);
        for p in [0u64, 0x0123456789ABCDEF, u64::MAX] {
            assert_eq!(tdes.encrypt_block(p), des.encrypt_block(p));
        }
    }

    #[test]
    fn triple_des_two_key_matches_three_key_form() {
        let a = TripleDes::two_key(0x1111111111111111, 0x2222222222222222);
        let b = TripleDes::new(0x1111111111111111, 0x2222222222222222, 0x1111111111111111);
        assert_eq!(a.encrypt_block(42), b.encrypt_block(42));
    }

    #[test]
    fn triple_des_distinct_keys_differ_from_single_des() {
        let tdes = TripleDes::new(0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x89ABCDEF01234567);
        let des = Des::new(0x0123456789ABCDEF);
        assert_ne!(tdes.encrypt_block(7), des.encrypt_block(7));
    }

    proptest! {
        #[test]
        fn triple_des_roundtrip(k1: u64, k2: u64, k3: u64, block: u64) {
            let tdes = TripleDes::new(k1, k2, k3);
            prop_assert_eq!(tdes.decrypt_block(tdes.encrypt_block(block)), block);
        }

        #[test]
        fn triple_des_u128_roundtrip(k1: u64, k2: u64, value: u128) {
            let tdes = TripleDes::two_key(k1, k2);
            prop_assert_eq!(tdes.decrypt_u128(tdes.encrypt_u128(value)), value);
        }

        #[test]
        fn block_roundtrip(key: u64, block: u64) {
            let des = Des::new(key);
            prop_assert_eq!(des.decrypt_block(des.encrypt_block(block)), block);
        }

        #[test]
        fn u128_roundtrip(key: u64, value: u128) {
            let des = Des::new(key);
            prop_assert_eq!(des.decrypt_u128(des.encrypt_u128(value)), value);
        }

        #[test]
        fn different_keys_give_different_ciphertexts(k1: u64, k2: u64, block: u64) {
            // Mask out parity bits before comparing keys.
            if (k1 & !0x0101010101010101) != (k2 & !0x0101010101010101) {
                let d1 = Des::new(k1);
                let d2 = Des::new(k2);
                // Not a theorem, but a collision would be a 2^-64 event;
                // failure here almost surely means a key-schedule bug.
                prop_assert_ne!(d1.encrypt_block(block), d2.encrypt_block(block));
            }
        }

        #[test]
        fn encryption_is_a_permutation(key: u64, b1: u64, b2: u64) {
            if b1 != b2 {
                let des = Des::new(key);
                prop_assert_ne!(des.encrypt_block(b1), des.encrypt_block(b2));
            }
        }
    }
}
