//! Purdy's polynomial one-way function (CACM 1974).
//!
//! The paper's port scheme needs a **publicly known one-way function**
//! `F` with `P = F(G)`; it cites exactly the 1970s constructions of
//! Wilkes, Purdy, and Evans et al. Purdy's is the concrete one: a sparse
//! high-degree polynomial over a prime field,
//!
//! ```text
//! f(x) = x^n0 + a1·x^n1 + a2·x^3 + a3·x^2 + a4·x + a5   (mod p)
//! ```
//!
//! with `p = 2^64 − 59` (Purdy used this prime in the original
//! paper), `n0 = 2^24 + 17`, `n1 = 2^24 + 3`. Evaluating the polynomial
//! is a few dozen modular multiplications; inverting it requires root
//! finding of a degree-16-million polynomial, which was infeasible in
//! 1974 and is still expensive enough to be a faithful stand-in for the
//! hardware F-box.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::purdy::Purdy;
//!
//! let f = Purdy::standard();
//! let g = 0x0000_1234_5678_9abc_u64;
//! let p1 = f.eval(g);
//! let p2 = f.eval(g);
//! assert_eq!(p1, p2, "public function is deterministic");
//! assert_ne!(p1, g);
//! ```

use crate::modmath::{add_mod, mul_mod, pow_mod};

/// The prime modulus Purdy proposed: `2^64 − 59`.
pub const PURDY_PRIME: u64 = u64::MAX - 58;

/// Exponent of the leading term: `2^24 + 17`.
pub const N0: u64 = (1 << 24) + 17;
/// Exponent of the second term: `2^24 + 3`.
pub const N1: u64 = (1 << 24) + 3;

/// A Purdy polynomial `x^n0 + a1·x^n1 + a2·x^3 + a3·x^2 + a4·x + a5 (mod p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Purdy {
    p: u64,
    coeffs: [u64; 5],
}

impl Purdy {
    /// The fixed, publicly known instance used for Amoeba ports.
    ///
    /// The coefficients are arbitrary odd constants; they are *public*
    /// (one-wayness rests on the polynomial structure, not on secret
    /// coefficients), so fixing them loses nothing.
    pub fn standard() -> Self {
        Purdy {
            p: PURDY_PRIME,
            coeffs: [
                0x5DEECE66D_u64,
                0x2545F4914F6CDD1D,
                0x27BB2EE687B0B0FD,
                0x369DEA0F31A53F85,
                0x9E3779B97F4A7C15,
            ],
        }
    }

    /// Builds a custom instance (mainly for tests).
    ///
    /// # Panics
    /// Panics if `p < 2`.
    pub fn with_coefficients(p: u64, coeffs: [u64; 5]) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        Purdy { p, coeffs }
    }

    /// Evaluates the polynomial at `x`.
    pub fn eval(&self, x: u64) -> u64 {
        let p = self.p;
        let x = x % p;
        let x2 = mul_mod(x, x, p);
        let x3 = mul_mod(x2, x, p);
        let mut acc = pow_mod(x, N0, p);
        acc = add_mod(acc, mul_mod(self.coeffs[0], pow_mod(x, N1, p), p), p);
        acc = add_mod(acc, mul_mod(self.coeffs[1], x3, p), p);
        acc = add_mod(acc, mul_mod(self.coeffs[2], x2, p), p);
        acc = add_mod(acc, mul_mod(self.coeffs[3], x, p), p);
        add_mod(acc, self.coeffs[4], p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn prime_modulus_is_prime() {
        assert!(crate::modmath::is_prime(PURDY_PRIME));
    }

    #[test]
    fn deterministic() {
        let f = Purdy::standard();
        assert_eq!(f.eval(12345), f.eval(12345));
    }

    #[test]
    fn zero_maps_to_constant_term() {
        let f = Purdy::standard();
        assert_eq!(f.eval(0), 0x9E3779B97F4A7C15 % PURDY_PRIME);
    }

    #[test]
    fn small_field_exhaustive_distribution() {
        // Over a tiny field we can check the polynomial is far from
        // constant and hits many values.
        let f = Purdy::with_coefficients(251, [3, 5, 7, 11, 13]);
        let outputs: HashSet<u64> = (0..251).map(|x| f.eval(x)).collect();
        assert!(
            outputs.len() > 100,
            "only {} distinct outputs",
            outputs.len()
        );
    }

    #[test]
    #[should_panic(expected = "modulus must be at least 2")]
    fn tiny_modulus_rejected() {
        Purdy::with_coefficients(1, [0; 5]);
    }

    proptest! {
        #[test]
        fn output_in_field(x: u64) {
            prop_assert!(Purdy::standard().eval(x) < PURDY_PRIME);
        }

        #[test]
        fn reduction_consistency(x: u64) {
            // eval(x) == eval(x mod p) — inputs are reduced first.
            let f = Purdy::standard();
            prop_assert_eq!(f.eval(x), f.eval(x % PURDY_PRIME));
        }

        #[test]
        fn no_accidental_fixed_points_among_random_inputs(x in 1u64..1 << 48) {
            // A fixed point would let an intruder GET on a put-port.
            // Statistically there are a handful in the whole field, but a
            // random 48-bit input hitting one is a ~2^-16 per-case event;
            // observing it consistently would indicate a bug.
            let f = Purdy::standard();
            if f.eval(x) == x {
                // Accept with evidence: re-evaluate to confirm determinism
                // rather than flakiness.
                prop_assert_eq!(f.eval(x), x);
            }
        }

        #[test]
        fn distinct_inputs_rarely_collide(a in 0u64..1 << 48, b in 0u64..1 << 48) {
            let f = Purdy::standard();
            if a != b {
                prop_assert_ne!(f.eval(a), f.eval(b));
            }
        }
    }
}
