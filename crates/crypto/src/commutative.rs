//! Commutative one-way functions for capability protection *scheme 3*.
//!
//! The third algorithm of §2.3 needs "a set of N commutative one-way
//! functions, F0, F1, ..., FN−1 corresponding to the N rights present in
//! the RIGHTS field". A client deletes right `k` from a capability *by
//! itself*, with no server round trip, by replacing the check field `R`
//! with `F_k(R)`; the server later re-applies the functions for every
//! cleared rights bit and compares.
//!
//! The classic realisation (and the one in Mullender's 1985 thesis this
//! paper cites) is fixed-exponent modular exponentiation:
//!
//! ```text
//! F_k(x) = x^{e_k}  mod p
//! ```
//!
//! These commute because `(x^a)^b = (x^b)^a = x^{ab}`, and inverting any
//! one of them is the discrete-logarithm/root problem in `GF(p)`.
//! We use the largest 48-bit prime, `p = 2^48 − 59`, so every value fits
//! the 48-bit check field of Fig 2, and odd prime exponents `e_k` with
//! `gcd(e_k, p−1) = 1` so each `F_k` permutes the field (necessary so
//! distinct rights masks keep distinct check values).
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::commutative::CommutativeOwfFamily;
//!
//! let fam = CommutativeOwfFamily::standard();
//! let r = 0x1234_5678_9abc % fam.modulus();
//! // Deleting right 0 then 3 equals deleting 3 then 0 — commutativity.
//! assert_eq!(fam.apply(3, fam.apply(0, r)), fam.apply(0, fam.apply(3, r)));
//! // And both equal the mask application.
//! assert_eq!(fam.apply_mask(0b0000_1001, r), fam.apply(3, fam.apply(0, r)));
//! ```

use crate::modmath::{gcd, pow_mod};
use rand::Rng;

/// The largest prime below 2^48: `2^48 − 59`. All check-field values
/// live in `GF(p)` and therefore fit the capability's 48-bit slot.
pub const P48: u64 = (1u64 << 48) - 59;

/// Number of rights bits, hence functions, in the standard family.
pub const NUM_RIGHTS: usize = 8;

/// Fixed public exponents for the standard family, one per rights bit.
///
/// Each is an odd prime coprime to `P48 − 1` (verified by
/// [`CommutativeOwfFamily::new`] and by tests).
const STANDARD_EXPONENTS: [u64; NUM_RIGHTS] =
    [65537, 65539, 65543, 65551, 65557, 65563, 65579, 65581];

/// A family of `N` commutative one-way functions over `GF(p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutativeOwfFamily {
    p: u64,
    exponents: Vec<u64>,
}

impl CommutativeOwfFamily {
    /// The publicly known 8-function family used by Amoeba capabilities.
    pub fn standard() -> Self {
        Self::new(P48, STANDARD_EXPONENTS.to_vec())
    }

    /// Builds a family over prime `p` with the given exponents.
    ///
    /// # Panics
    /// Panics if `p` is not prime, or any exponent shares a factor with
    /// `p − 1` (such an `F_k` would not be a permutation and different
    /// rights masks could collide).
    pub fn new(p: u64, exponents: Vec<u64>) -> Self {
        assert!(crate::modmath::is_prime(p), "modulus must be prime");
        for &e in &exponents {
            assert!(
                gcd(e, p - 1) == 1,
                "exponent {e} is not coprime to p-1; F_k would not permute GF(p)"
            );
        }
        CommutativeOwfFamily { p, exponents }
    }

    /// The field modulus; check values must be in `[0, modulus)`.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Number of functions (= number of rights bits supported).
    pub fn len(&self) -> usize {
        self.exponents.len()
    }

    /// Whether the family is empty (it never is for [`standard`]).
    ///
    /// [`standard`]: CommutativeOwfFamily::standard
    pub fn is_empty(&self) -> bool {
        self.exponents.is_empty()
    }

    /// Applies `F_k` to `x`.
    ///
    /// # Panics
    /// Panics if `k >= self.len()`.
    pub fn apply(&self, k: usize, x: u64) -> u64 {
        pow_mod(x % self.p, self.exponents[k], self.p)
    }

    /// Applies `F_k` for every set bit `k` of `mask` (order irrelevant by
    /// commutativity). Bits at or above [`len`](Self::len) are ignored.
    pub fn apply_mask(&self, mask: u8, x: u64) -> u64 {
        let mut acc = x % self.p;
        for (k, &e) in self.exponents.iter().enumerate() {
            if mask & (1 << k) != 0 {
                acc = pow_mod(acc, e, self.p);
            }
        }
        acc
    }

    /// Draws a check value suitable as a per-object random number:
    /// uniform in `[2, p − 1)`, avoiding the fixed points 0 and 1 and
    /// the order-2 element `p − 1`.
    pub fn random_element<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(2..self.p - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn p48_is_prime_and_48_bits() {
        assert!(crate::modmath::is_prime(P48));
        const { assert!(P48 < (1 << 48)) };
        assert_eq!(crate::modmath::next_prime(P48), P48);
    }

    #[test]
    fn standard_exponents_are_valid() {
        for e in STANDARD_EXPONENTS {
            assert!(crate::modmath::is_prime(e), "{e} not prime");
            assert_eq!(gcd(e, P48 - 1), 1, "{e} shares a factor with p-1");
        }
        // Construction itself re-checks.
        let fam = CommutativeOwfFamily::standard();
        assert_eq!(fam.len(), NUM_RIGHTS);
        assert!(!fam.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_modulus_rejected() {
        CommutativeOwfFamily::new(1 << 48, vec![3]);
    }

    #[test]
    #[should_panic(expected = "not coprime")]
    fn bad_exponent_rejected() {
        // 2 divides p-1 for every odd prime p.
        CommutativeOwfFamily::new(P48, vec![2]);
    }

    #[test]
    fn apply_mask_empty_mask_is_identity() {
        let fam = CommutativeOwfFamily::standard();
        assert_eq!(fam.apply_mask(0, 424242), 424242);
    }

    #[test]
    fn random_element_avoids_degenerate_values() {
        let fam = CommutativeOwfFamily::standard();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = fam.random_element(&mut rng);
            assert!((2..P48 - 1).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn pairwise_commutativity(i in 0usize..NUM_RIGHTS, j in 0usize..NUM_RIGHTS, x in 2u64..P48) {
            let fam = CommutativeOwfFamily::standard();
            prop_assert_eq!(fam.apply(i, fam.apply(j, x)), fam.apply(j, fam.apply(i, x)));
        }

        #[test]
        fn mask_application_order_independent(mask: u8, x in 2u64..P48, seed: u64) {
            // Apply the bits of `mask` one at a time in a random order and
            // compare with apply_mask.
            use rand::seq::SliceRandom;
            let fam = CommutativeOwfFamily::standard();
            let mut bits: Vec<usize> = (0..NUM_RIGHTS).filter(|k| mask & (1 << k) != 0).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            bits.shuffle(&mut rng);
            let mut acc = x;
            for k in bits {
                acc = fam.apply(k, acc);
            }
            prop_assert_eq!(acc, fam.apply_mask(mask, x));
        }

        #[test]
        fn each_function_is_a_permutation(k in 0usize..NUM_RIGHTS, a in 2u64..P48, b in 2u64..P48) {
            let fam = CommutativeOwfFamily::standard();
            if a != b {
                prop_assert_ne!(fam.apply(k, a), fam.apply(k, b));
            }
        }

        #[test]
        fn distinct_masks_give_distinct_values(m1: u8, m2: u8, x in 2u64..P48 - 1) {
            // Because each F_k permutes GF(p) and exponents are distinct
            // primes, different subsets give different composite exponents
            // mod p-1 and (for x of high order) different values. We test
            // the practical property on random x.
            let fam = CommutativeOwfFamily::standard();
            if m1 != m2 {
                // Exclude x of low multiplicative order by checking a
                // collision is at least *detected consistently*.
                let v1 = fam.apply_mask(m1, x);
                let v2 = fam.apply_mask(m2, x);
                if v1 == v2 {
                    // Extremely unlikely; flag loudly.
                    prop_assert!(false, "mask collision for x={x}: {m1:#x} vs {m2:#x}");
                }
            }
        }

        #[test]
        fn applying_is_one_way_ish(k in 0usize..NUM_RIGHTS, x in 2u64..P48) {
            // Cheap sanity: F_k has no trivial structure like F(x)=x.
            let fam = CommutativeOwfFamily::standard();
            let y = fam.apply(k, x);
            // x^e == x only for elements whose order divides e-1; random
            // hits are vanishingly rare.
            prop_assert_ne!(y, 0);
            prop_assert!(y < P48);
        }
    }
}
