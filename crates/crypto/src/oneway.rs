//! The public one-way function `F` used for ports and for capability
//! protection *scheme 2*.
//!
//! §2.2: "Each port is really a pair of ports, P and G, related by:
//! `P = F(G)`, where `F` is a (publicly-known) one-way function performed
//! by the F-box."
//!
//! Two interchangeable implementations are provided behind the
//! [`OneWay`] trait:
//!
//! * [`PurdyOneWay`] — the historically cited construction
//!   ([`crate::purdy`]), truncated to 48 bits;
//! * [`ShaOneWay`] — SHA-256 truncated to 48 bits, the modern choice.
//!
//! The F-box, the RPC layer and capability scheme 2 are all generic over
//! this trait, so the two can be compared directly (bench `fbox_ports`).

use crate::purdy::Purdy;
use crate::sha256::Sha256;

/// Mask selecting the low 48 bits — the width of an Amoeba port and of
/// the capability check field.
pub const MASK48: u64 = (1 << 48) - 1;

/// A publicly known one-way function over 48-bit values.
///
/// Implementations must be pure: the same input always produces the same
/// output, on every machine (clients, servers and F-boxes all evaluate
/// the *same* public function).
pub trait OneWay: Send + Sync + std::fmt::Debug {
    /// Applies the one-way function, producing a 48-bit value.
    fn apply48(&self, x: u64) -> u64;
}

/// SHA-256-based one-way function: `F(x) = SHA256("amoeba-port" ‖ x)`
/// truncated to 48 bits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShaOneWay;

impl OneWay for ShaOneWay {
    fn apply48(&self, x: u64) -> u64 {
        let mut input = [0u8; 19];
        input[..11].copy_from_slice(b"amoeba-port");
        input[11..].copy_from_slice(&x.to_be_bytes());
        Sha256::digest_u64(&input) & MASK48
    }
}

/// Purdy-polynomial one-way function truncated to 48 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurdyOneWay {
    poly: Purdy,
}

impl Default for PurdyOneWay {
    fn default() -> Self {
        PurdyOneWay {
            poly: Purdy::standard(),
        }
    }
}

impl PurdyOneWay {
    /// Creates the standard public instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OneWay for PurdyOneWay {
    fn apply48(&self, x: u64) -> u64 {
        self.poly.eval(x) & MASK48
    }
}

/// Applies `F` through a shared reference — lets `Arc<dyn OneWay>` and
/// concrete types be used uniformly.
impl<T: OneWay + ?Sized> OneWay for std::sync::Arc<T> {
    fn apply48(&self, x: u64) -> u64 {
        (**self).apply48(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn sha_oneway_outputs_48_bits() {
        let f = ShaOneWay;
        for x in [0u64, 1, MASK48, u64::MAX] {
            assert!(f.apply48(x) <= MASK48);
        }
    }

    #[test]
    fn purdy_oneway_outputs_48_bits() {
        let f = PurdyOneWay::new();
        for x in [0u64, 1, MASK48, u64::MAX] {
            assert!(f.apply48(x) <= MASK48);
        }
    }

    #[test]
    fn implementations_differ() {
        // They are different functions; agreeing on a random point would
        // be a 2^-48 coincidence.
        let sha = ShaOneWay;
        let purdy = PurdyOneWay::new();
        assert_ne!(sha.apply48(123456789), purdy.apply48(123456789));
    }

    #[test]
    fn arc_dispatch_matches_concrete() {
        let concrete = ShaOneWay;
        let arced: Arc<dyn OneWay> = Arc::new(ShaOneWay);
        assert_eq!(concrete.apply48(42), arced.apply48(42));
    }

    #[test]
    fn no_small_cycles_from_random_start() {
        // Applying F repeatedly must not return to the start quickly;
        // a short cycle would let an intruder search for G given P.
        let f = ShaOneWay;
        let start = 0xABCDEF012345 & MASK48;
        let mut x = start;
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            x = f.apply48(x);
            assert!(seen.insert(x), "cycle detected");
            assert_ne!(x, start, "returned to start");
        }
    }

    proptest! {
        #[test]
        fn deterministic(x: u64) {
            prop_assert_eq!(ShaOneWay.apply48(x), ShaOneWay.apply48(x));
            let p = PurdyOneWay::new();
            prop_assert_eq!(p.apply48(x), p.apply48(x));
        }

        #[test]
        fn distinct_inputs_distinct_outputs(a in 0u64..=MASK48, b in 0u64..=MASK48) {
            if a != b {
                prop_assert_ne!(ShaOneWay.apply48(a), ShaOneWay.apply48(b));
            }
        }

        #[test]
        fn f_of_p_is_not_g(g in 0u64..=MASK48) {
            // The paper: "An intruder doing GET(P) will simply cause his
            // F-box to listen to the (useless) port F(P)" — F(F(G)) must
            // not be F-related back to G.
            let f = ShaOneWay;
            let p = f.apply48(g);
            prop_assert_ne!(f.apply48(p), g);
        }
    }
}
