//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! SHA-256 is the workhorse behind the modern [`ShaOneWay`] port
//! function, the round function of the [56-bit Feistel
//! cipher](crate::feistel), and key derivation in the
//! [software-protection key matrix](crate::des). It is verified against
//! the FIPS 180-4 / NIST test vectors in this module's tests.
//!
//! [`ShaOneWay`]: crate::oneway::ShaOneWay
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//! assert_eq!(Sha256::hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
//! ```

/// Streaming SHA-256 hasher.
///
/// Construct with [`Sha256::new`], feed data with [`Sha256::update`], and
/// finish with [`Sha256::finalize`]. For one-shot hashing use
/// [`Sha256::digest`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update_padding();
        let mut length = [0u8; 8];
        length.copy_from_slice(&bit_len.to_be_bytes());
        self.buffer[56..64].copy_from_slice(&length);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        for b in &mut self.buffer[self.buffer_len + 1..] {
            *b = 0;
        }
        if self.buffer_len + 1 > 56 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; 64];
        }
        self.buffer_len = 0;
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes `data` and returns the first 8 bytes as a big-endian `u64`.
    ///
    /// This is the building block for the port-sized one-way functions.
    pub fn digest_u64(data: &[u8]) -> u64 {
        let d = Self::digest(data);
        u64::from_be_bytes(d[..8].try_into().expect("8-byte slice"))
    }

    /// Renders a digest as lowercase hex, for tests and debugging.
    pub fn hex(digest: &[u8; 32]) -> String {
        let mut s = String::with_capacity(64);
        for b in digest {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[track_caller]
    fn assert_digest(input: &[u8], expected_hex: &str) {
        assert_eq!(Sha256::hex(&Sha256::digest(input)), expected_hex);
    }

    #[test]
    fn nist_vector_empty() {
        assert_digest(
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_digest(
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_digest(
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        );
    }

    #[test]
    fn nist_vector_896_bits() {
        assert_digest(
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let input = vec![b'a'; 1_000_000];
        let digest = Sha256::digest(&input);
        assert_eq!(
            Sha256::hex(&digest),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn nist_monte_carlo_checkpoint() {
        // The SHAVS Monte Carlo construction: seed, then
        // MD[i] = SHA256(MD[i-3] || MD[i-2] || MD[i-1]) for 1000 rounds
        // per checkpoint. Rather than carrying the full NIST response
        // file, we assert the *self-consistency* property the MCT
        // exercises (long dependent chains hit every compression-path
        // corner) plus determinism of the final state.
        let seed = Sha256::digest(b"amoeba mct seed");
        let mut md = [seed, seed, seed];
        for _ in 0..1000 {
            let mut h = Sha256::new();
            h.update(&md[0]);
            h.update(&md[1]);
            h.update(&md[2]);
            let next = h.finalize();
            md = [md[1], md[2], next];
        }
        // Two independent replays agree bit for bit.
        let mut md2 = [seed, seed, seed];
        for _ in 0..1000 {
            let mut h = Sha256::new();
            h.update(&md2[0]);
            h.update(&md2[1]);
            h.update(&md2[2]);
            let next = h.finalize();
            md2 = [md2[1], md2[2], next];
        }
        assert_eq!(md, md2);
        // And the chain did not collapse to a fixed point.
        assert_ne!(md[2], seed);
        assert_ne!(md[2], md[1]);
    }

    #[test]
    fn streaming_matches_one_shot_for_odd_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one_shot = Sha256::digest(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 127, 999] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths_hash_without_panic() {
        // 55/56/63/64 bytes straddle the padding boundaries.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xAB; len];
            let d1 = Sha256::digest(&data);
            let d2 = Sha256::digest(&data);
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn digest_u64_is_prefix_of_digest() {
        let d = Sha256::digest(b"amoeba");
        let x = Sha256::digest_u64(b"amoeba");
        assert_eq!(x.to_be_bytes(), d[..8]);
    }

    proptest! {
        #[test]
        fn split_point_never_matters(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha256::digest(&data));
        }

        #[test]
        fn distinct_short_inputs_do_not_collide(a in proptest::collection::vec(any::<u8>(), 0..32),
                                                b in proptest::collection::vec(any::<u8>(), 0..32)) {
            if a != b {
                prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
            }
        }
    }
}
