//! Small RSA for the §2.4 key-establishment handshake.
//!
//! When F-boxes are absent, a freshly booted server proves its identity
//! and establishes conventional (DES) keys using "public-key encryption
//! [Diffie and Hellman 1976]": the client encrypts a fresh conventional
//! key with the server's public key; the server replies encrypted with
//! "the inverse of F's public key" — i.e. an RSA signature.
//!
//! This module implements textbook RSA over 64-bit moduli (`u128`
//! arithmetic, 32-bit primes). **That is simulation scale, not a secure
//! key size** — the reproduction needs the protocol *shape* (encrypt to
//! public key, sign with private key), not 2048-bit security; see
//! DESIGN.md §2 for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::rsa::KeyPair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let kp = KeyPair::generate(&mut rng);
//! let secret = b"des key material";
//! let ct = kp.public().encrypt_bytes(secret);
//! assert_eq!(kp.decrypt_bytes(&ct).unwrap(), secret);
//! ```

use crate::modmath::{gcd, inv_mod, is_prime, pow_mod};
use rand::Rng;

/// The conventional public exponent.
pub const E: u64 = 65537;

/// Errors returned by RSA operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsaError {
    /// A ciphertext chunk was not smaller than the modulus.
    ChunkOutOfRange,
    /// The ciphertext byte length is not a multiple of the chunk size.
    MalformedCiphertext,
    /// A decrypted chunk exceeded the plaintext chunk range (corrupt or
    /// mismatched key).
    CorruptPlaintext,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::ChunkOutOfRange => write!(f, "ciphertext chunk out of range for modulus"),
            RsaError::MalformedCiphertext => write!(f, "ciphertext length is not a chunk multiple"),
            RsaError::CorruptPlaintext => write!(f, "decrypted chunk out of plaintext range"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    n: u64,
    e: u64,
}

/// Plaintext chunks are 4 bytes (so they are always `< n`, since `n` has
/// at least 62 bits); ciphertext chunks are 8 bytes.
const PLAIN_CHUNK: usize = 4;
const CIPHER_CHUNK: usize = 8;

impl PublicKey {
    /// Reconstructs a public key from its modulus, using the standard
    /// exponent [`E`] (how announcements carry keys on the wire).
    pub fn from_parts(n: u64) -> PublicKey {
        PublicKey { n, e: E }
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.n
    }

    /// Encrypts a single value `m < n`.
    pub fn encrypt_value(&self, m: u64) -> Result<u64, RsaError> {
        if m >= self.n {
            return Err(RsaError::ChunkOutOfRange);
        }
        Ok(pow_mod(m, self.e, self.n))
    }

    /// Encrypts arbitrary bytes, 4 plaintext bytes per 8-byte ciphertext
    /// chunk. A length prefix chunk preserves exact length.
    pub fn encrypt_bytes(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity((data.len() / PLAIN_CHUNK + 2) * CIPHER_CHUNK);
        // Prefix: the data length, encrypted like any other chunk.
        let chunks: Vec<u64> = std::iter::once(data.len() as u64)
            .chain(data.chunks(PLAIN_CHUNK).map(|c| {
                let mut buf = [0u8; PLAIN_CHUNK];
                buf[..c.len()].copy_from_slice(c);
                u32::from_be_bytes(buf) as u64
            }))
            .collect();
        for m in chunks {
            // length prefix may exceed u32 range only for absurd inputs;
            // data length is bounded well below n.
            let c = pow_mod(m, self.e, self.n);
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Verifies a signature: recovers `sig^e mod n` and compares with the
    /// (48-bit-truncated) SHA-256 digest of `data`.
    pub fn verify(&self, data: &[u8], signature: u64) -> bool {
        let digest = crate::sha256::Sha256::digest_u64(data) % self.n;
        pow_mod(signature % self.n, self.e, self.n) == digest
    }
}

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    d: u64,
}

impl KeyPair {
    /// Generates a key pair from two random 32-bit primes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let p = random_prime_32(rng);
            let q = random_prime_32(rng);
            if p == q {
                continue;
            }
            let n = p * q; // both < 2^32, so n < 2^64, no overflow
            let phi = (p - 1) * (q - 1);
            if gcd(E, phi) != 1 {
                continue;
            }
            let d = inv_mod(E, phi).expect("e invertible since gcd checked");
            return KeyPair {
                public: PublicKey { n, e: E },
                d,
            };
        }
    }

    /// The public half, safe to publish.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Decrypts a single value.
    pub fn decrypt_value(&self, c: u64) -> Result<u64, RsaError> {
        if c >= self.public.n {
            return Err(RsaError::ChunkOutOfRange);
        }
        Ok(pow_mod(c, self.d, self.public.n))
    }

    /// Inverse of [`PublicKey::encrypt_bytes`].
    ///
    /// # Errors
    /// Returns an error if the ciphertext is malformed or was produced
    /// under a different key.
    pub fn decrypt_bytes(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        if !ciphertext.len().is_multiple_of(CIPHER_CHUNK) || ciphertext.is_empty() {
            return Err(RsaError::MalformedCiphertext);
        }
        let mut chunks = ciphertext.chunks(CIPHER_CHUNK).map(|c| {
            let v = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
            self.decrypt_value(v)
        });
        let len = chunks.next().expect("nonempty")? as usize;
        // The length prefix is attacker-influenced (wrong key => garbage):
        // bound it by what the remaining chunks can actually carry before
        // allocating anything.
        let max_len = (ciphertext.len() / CIPHER_CHUNK - 1) * PLAIN_CHUNK;
        if len > max_len {
            return Err(RsaError::CorruptPlaintext);
        }
        let mut out = Vec::with_capacity(len);
        for chunk in chunks {
            let m = chunk?;
            if m > u32::MAX as u64 {
                return Err(RsaError::CorruptPlaintext);
            }
            out.extend_from_slice(&(m as u32).to_be_bytes());
        }
        if len > out.len() {
            return Err(RsaError::CorruptPlaintext);
        }
        out.truncate(len);
        Ok(out)
    }

    /// Signs `data`: `SHA256(data)^d mod n` (truncated digest).
    pub fn sign(&self, data: &[u8]) -> u64 {
        let digest = crate::sha256::Sha256::digest_u64(data) % self.public.n;
        pow_mod(digest, self.d, self.public.n)
    }
}

fn random_prime_32<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    loop {
        // Force the top and bottom bits: full 32-bit size and odd.
        let candidate = (rng.gen::<u32>() | 0x8000_0001) as u64;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> KeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        KeyPair::generate(&mut rng)
    }

    #[test]
    fn value_roundtrip() {
        let kp = keypair(1);
        for m in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = kp.public().encrypt_value(m).unwrap();
            assert_eq!(kp.decrypt_value(c).unwrap(), m);
        }
    }

    #[test]
    fn value_out_of_range_rejected() {
        let kp = keypair(2);
        assert_eq!(
            kp.public().encrypt_value(u64::MAX),
            Err(RsaError::ChunkOutOfRange)
        );
    }

    #[test]
    fn bytes_roundtrip_various_lengths() {
        let kp = keypair(3);
        for len in [0usize, 1, 3, 4, 5, 8, 16, 17, 100] {
            let data: Vec<u8> = (0..len as u8).collect();
            let ct = kp.public().encrypt_bytes(&data);
            assert_eq!(kp.decrypt_bytes(&ct).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let kp = keypair(4);
        assert_eq!(kp.decrypt_bytes(&[]), Err(RsaError::MalformedCiphertext));
        assert_eq!(
            kp.decrypt_bytes(&[1, 2, 3]),
            Err(RsaError::MalformedCiphertext)
        );
    }

    #[test]
    fn wrong_key_fails_cleanly() {
        let kp1 = keypair(5);
        let kp2 = keypair(6);
        let ct = kp1.public().encrypt_bytes(b"attack at dawn, in guilders");
        // Decrypting with the wrong key must error or produce different
        // bytes; it must never panic.
        if let Ok(got) = kp2.decrypt_bytes(&ct) {
            assert_ne!(got, b"attack at dawn, in guilders")
        }
    }

    #[test]
    fn signature_verifies_and_tampering_detected() {
        let kp = keypair(7);
        let sig = kp.sign(b"i am the file server");
        assert!(kp.public().verify(b"i am the file server", sig));
        assert!(!kp.public().verify(b"i am an impostor", sig));
        assert!(!kp.public().verify(b"i am the file server", sig ^ 1));
    }

    #[test]
    fn signature_from_other_key_rejected() {
        let kp1 = keypair(8);
        let kp2 = keypair(9);
        let sig = kp2.sign(b"hello");
        assert!(!kp1.public().verify(b"hello", sig));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip_random_data(seed: u64, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let kp = keypair(seed);
            let ct = kp.public().encrypt_bytes(&data);
            prop_assert_eq!(kp.decrypt_bytes(&ct).unwrap(), data);
        }

        #[test]
        fn sign_verify_random(seed: u64, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let kp = keypair(seed);
            prop_assert!(kp.public().verify(&data, kp.sign(&data)));
        }
    }
}
