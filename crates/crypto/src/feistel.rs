//! A 56-bit block cipher for capability protection *scheme 1*.
//!
//! Scheme 1 of the paper (§2.3) treats the concatenated `RIGHTS` (8 bits)
//! and `RANDOM` (48 bits) fields of a capability as **one 56-bit number**
//! and encrypts it under a per-object key. The paper explicitly warns:
//!
//! > Clearly, an encryption function that mixes the bits thoroughly is
//! > required to ensure that tampering with the Rights Field also affects
//! > the known constant. EXCLUSIVE-OR'ing a constant with the
//! > concatenated RIGHTS and RANDOM fields will not do.
//!
//! No standard cipher has a 56-bit block, so we build one the textbook
//! way: a balanced Feistel network over two 28-bit halves whose round
//! function is keyed SHA-256 (a Luby–Rackoff construction). Eight rounds
//! give thorough mixing — every output bit depends on every input bit.
//!
//! The deliberately broken [`XorCipher`] implements the construction the
//! paper warns against; the capability crate's tests use it to
//! *demonstrate the forgery attack* and show why mixing is required.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::feistel::{Block56, Cipher56, Feistel56};
//!
//! let cipher = Feistel56::new(0xDEAD_BEEF_CAFE);
//! let plain = Block56::new(0x00FF_EE55_1234_u64).unwrap();
//! let ct = cipher.encrypt(plain);
//! assert_ne!(ct, plain);
//! assert_eq!(cipher.decrypt(ct), plain);
//! ```

use crate::sha256::Sha256;

/// Number of Feistel rounds. Four are enough for Luby–Rackoff security;
/// eight add margin at negligible cost.
const ROUNDS: usize = 8;

const MASK28: u64 = (1 << 28) - 1;
/// Mask selecting the low 56 bits of a `u64`.
pub const MASK56: u64 = (1 << 56) - 1;

/// A value known to fit in 56 bits — the width of the concatenated
/// `RIGHTS‖RANDOM` capability field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Block56(u64);

impl Block56 {
    /// Wraps a value, returning `None` if it does not fit in 56 bits.
    pub fn new(value: u64) -> Option<Self> {
        (value <= MASK56).then_some(Block56(value))
    }

    /// Wraps a value, truncating it to 56 bits.
    pub fn truncate(value: u64) -> Self {
        Block56(value & MASK56)
    }

    /// Builds the block from the 8-bit rights byte and 48-bit check field
    /// of a capability, as scheme 1 requires: `rights ‖ check`.
    pub fn from_rights_check(rights: u8, check48: u64) -> Self {
        Block56(((rights as u64) << 48) | (check48 & ((1 << 48) - 1)))
    }

    /// Splits the block back into (rights, check) parts.
    pub fn into_rights_check(self) -> (u8, u64) {
        ((self.0 >> 48) as u8, self.0 & ((1 << 48) - 1))
    }

    /// The raw 56-bit value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Trait for 56-bit block ciphers usable by capability scheme 1.
///
/// Implemented by the real [`Feistel56`] and by the deliberately broken
/// [`XorCipher`] used in negative tests.
pub trait Cipher56: std::fmt::Debug {
    /// Encrypts one block.
    fn encrypt(&self, block: Block56) -> Block56;
    /// Decrypts one block.
    fn decrypt(&self, block: Block56) -> Block56;
}

/// An 8-round balanced Feistel cipher over 28+28 bits with a keyed
/// SHA-256 round function.
#[derive(Debug, Clone)]
pub struct Feistel56 {
    round_keys: [u64; ROUNDS],
}

impl Feistel56 {
    /// Derives per-round subkeys from a key (any 64-bit value; in the
    /// capability server this is the per-object random number).
    pub fn new(key: u64) -> Self {
        let mut round_keys = [0u64; ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            let mut input = Vec::with_capacity(16);
            input.extend_from_slice(&key.to_be_bytes());
            input.extend_from_slice(b"feistel");
            input.push(i as u8);
            *rk = Sha256::digest_u64(&input);
        }
        Feistel56 { round_keys }
    }

    /// The round function: 28 bits -> 28 bits, keyed.
    fn f(half: u64, round_key: u64) -> u64 {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&half.to_be_bytes());
        input[8..].copy_from_slice(&round_key.to_be_bytes());
        Sha256::digest_u64(&input) & MASK28
    }
}

impl Cipher56 for Feistel56 {
    fn encrypt(&self, block: Block56) -> Block56 {
        let mut l = (block.0 >> 28) & MASK28;
        let mut r = block.0 & MASK28;
        for rk in self.round_keys {
            let next_r = l ^ Self::f(r, rk);
            l = r;
            r = next_r;
        }
        // Undo the last swap so decryption can run the same loop.
        Block56((r << 28) | l)
    }

    fn decrypt(&self, block: Block56) -> Block56 {
        let mut l = (block.0 >> 28) & MASK28;
        let mut r = block.0 & MASK28;
        for rk in self.round_keys.iter().rev() {
            let next_r = l ^ Self::f(r, *rk);
            l = r;
            r = next_r;
        }
        Block56((r << 28) | l)
    }
}

/// The construction the paper warns about: plain XOR with a constant.
///
/// XOR does not mix bits across positions, so a client holding one valid
/// scheme-1 capability can flip rights bits in the ciphertext and the
/// change never propagates into the known-constant part — the forgery
/// validates. Exists **only** so tests can demonstrate that attack;
/// never use it for protection.
#[derive(Debug, Clone)]
pub struct XorCipher {
    key: u64,
}

impl XorCipher {
    /// Creates the (insecure) cipher.
    pub fn new(key: u64) -> Self {
        XorCipher { key: key & MASK56 }
    }
}

impl Cipher56 for XorCipher {
    fn encrypt(&self, block: Block56) -> Block56 {
        Block56(block.0 ^ self.key)
    }

    fn decrypt(&self, block: Block56) -> Block56 {
        Block56(block.0 ^ self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block56_rejects_oversized() {
        assert!(Block56::new(MASK56).is_some());
        assert!(Block56::new(MASK56 + 1).is_none());
        assert_eq!(Block56::truncate(u64::MAX).value(), MASK56);
    }

    #[test]
    fn rights_check_split_roundtrip() {
        let b = Block56::from_rights_check(0xA5, 0x123456789ABC);
        assert_eq!(b.into_rights_check(), (0xA5, 0x123456789ABC));
    }

    #[test]
    fn encrypt_changes_value_and_decrypt_restores() {
        let cipher = Feistel56::new(7);
        let p = Block56::new(0x0102_0304_0506).unwrap();
        let c = cipher.encrypt(p);
        assert_ne!(c, p);
        assert_eq!(cipher.decrypt(c), p);
    }

    #[test]
    fn avalanche_flipping_one_rights_bit_changes_many_output_bits() {
        let cipher = Feistel56::new(0x1234);
        let a = Block56::from_rights_check(0b0000_0001, 0);
        let b = Block56::from_rights_check(0b0000_0011, 0);
        let diff = (cipher.encrypt(a).value() ^ cipher.encrypt(b).value()).count_ones();
        // Thorough mixing: expect ~28 differing bits; require at least 10.
        assert!(diff >= 10, "only {diff} bits differ — cipher is not mixing");
    }

    #[test]
    fn xor_cipher_demonstrates_the_papers_warning() {
        // With the XOR "cipher", flipping a rights bit in the ciphertext
        // flips exactly that bit in the plaintext: the known constant is
        // untouched and the forgery would validate.
        let cipher = XorCipher::new(0xCAFE_BABE_F00D);
        let genuine = Block56::from_rights_check(0xFF, 0); // constant = 0
        let ct = cipher.encrypt(genuine);
        let tampered_ct = Block56::truncate(ct.value() ^ (1 << 48)); // flip rights bit 0
        let (rights, constant) = cipher.decrypt(tampered_ct).into_rights_check();
        assert_eq!(constant, 0, "constant must survive — that is the attack");
        assert_eq!(rights, 0xFE);
    }

    #[test]
    fn feistel_defeats_the_xor_attack() {
        let cipher = Feistel56::new(0xCAFE_BABE_F00D);
        let genuine = Block56::from_rights_check(0xFF, 0);
        let ct = cipher.encrypt(genuine);
        let tampered_ct = Block56::truncate(ct.value() ^ (1 << 48));
        let (_, constant) = cipher.decrypt(tampered_ct).into_rights_check();
        assert_ne!(constant, 0, "tampering must destroy the known constant");
    }

    proptest! {
        #[test]
        fn roundtrip(key: u64, v in 0u64..=MASK56) {
            let cipher = Feistel56::new(key);
            let b = Block56::new(v).unwrap();
            prop_assert_eq!(cipher.decrypt(cipher.encrypt(b)), b);
        }

        #[test]
        fn permutation(key: u64, v1 in 0u64..=MASK56, v2 in 0u64..=MASK56) {
            if v1 != v2 {
                let cipher = Feistel56::new(key);
                prop_assert_ne!(
                    cipher.encrypt(Block56::new(v1).unwrap()),
                    cipher.encrypt(Block56::new(v2).unwrap())
                );
            }
        }

        #[test]
        fn output_stays_in_56_bits(key: u64, v in 0u64..=MASK56) {
            let cipher = Feistel56::new(key);
            prop_assert!(cipher.encrypt(Block56::new(v).unwrap()).value() <= MASK56);
        }

        #[test]
        fn ciphertext_tampering_corrupts_constant(key: u64, rights: u8, bit in 0u32..56) {
            // For any key and rights byte, flipping any single ciphertext
            // bit must disturb the known constant (48 zero bits) on
            // decryption. A 2^-48 accident is possible in principle but
            // will not occur in practice.
            let cipher = Feistel56::new(key);
            let ct = cipher.encrypt(Block56::from_rights_check(rights, 0));
            let tampered = Block56::truncate(ct.value() ^ (1 << bit));
            let (_, constant) = cipher.decrypt(tampered).into_rights_check();
            prop_assert_ne!(constant, 0);
        }
    }
}
