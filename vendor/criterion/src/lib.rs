//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the `amoeba-bench` targets use, with two
//! execution modes:
//!
//! * **`cargo bench`** (cargo passes `--bench`): every benchmark is
//!   warmed up, then timed over its configured measurement window, and
//!   a `name ... mean ± stddev (N iters)` line is printed.
//! * **`cargo test`** (no `--bench` flag): every benchmark body runs
//!   exactly once as a smoke test so the suite stays fast.
//!
//! No plotting, no statistics beyond mean/stddev, no saved baselines —
//! the numbers land on stdout, which is what the repository's bench
//! trajectory records.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for the measurement marker types.
pub mod measurement {
    /// Wall-clock time measurement (the only one implemented).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Forces the compiler to treat a value as used.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    /// (mean_ns, stddev_ns, iters) of the last run, if measured.
    result: Option<(f64, f64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// One iteration only (`cargo test`).
    Smoke,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up window elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: batched samples sized so each batch is ~1/50 of
        // the measurement window.
        let target_batches = 50u64;
        let batch_iters = ((self.measurement.as_secs_f64() / target_batches as f64) / per_iter)
            .ceil()
            .max(1.0) as u64;
        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        let mut total_iters: u64 = 0;
        while measure_start.elapsed() < self.measurement || samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch_iters as f64);
            total_iters += batch_iters;
            if samples.len() > 5000 {
                break;
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        self.result = Some((mean, var.sqrt(), total_iters));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples (accepted for API compatibility; the
    /// harness sizes batches from the measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            mode: self.criterion.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        self.criterion.report(&full, &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes bench targets with `--bench`; under `cargo
        // test` that flag is absent and we only smoke-run each body.
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--bench") {
            Mode::Measure
        } else {
            Mode::Smoke
        };
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Begins a configuration-sharing benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            result: None,
        };
        f(&mut b);
        let name = name.to_string();
        self.report(&name, &b, None);
        self
    }

    fn report(&self, name: &str, b: &Bencher, throughput: Option<Throughput>) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        match (self.mode, b.result) {
            (Mode::Smoke, _) => println!("bench {name}: ok (smoke)"),
            (Mode::Measure, Some((mean, sd, iters))) => {
                let mut line = format!(
                    "{name:<60} {:>12} ± {:<10} ({iters} iters)",
                    fmt_ns(mean),
                    fmt_ns(sd)
                );
                if let Some(Throughput::Bytes(bytes)) = throughput {
                    let gib_s = bytes as f64 / mean; // bytes per ns == GB/s
                    line.push_str(&format!("  {gib_s:.3} GB/s"));
                }
                if let Some(Throughput::Elements(n)) = throughput {
                    let meps = n as f64 * 1e3 / mean; // elements per µs
                    line.push_str(&format!("  {meps:.3} elem/µs"));
                }
                println!("{line}");
            }
            (Mode::Measure, None) => println!("bench {name}: no measurement recorded"),
        }
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("counted", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_records_mean() {
        let mut c = Criterion {
            mode: Mode::Measure,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.warm_up_time(Duration::from_millis(5));
        g.measurement_time(Duration::from_millis(20));
        g.bench_function("spin", |b| b.iter(|| black_box(3u64.wrapping_mul(7))));
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
