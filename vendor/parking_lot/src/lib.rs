//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the tiny slice of parking_lot's API this workspace uses —
//! non-poisoning `Mutex`, `RwLock` and `Condvar` built on `std::sync`.
//! Poisoning is neutralised by unwrapping into the inner guard: a
//! panicked holder does not wedge every later acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
