//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset this workspace uses: an
//! **unbounded MPMC channel** with blocking, deadline and non-blocking
//! receives. Unlike `std::sync::mpsc`, receivers are cloneable and
//! `Sync`, which is what lets N dispatch workers drain one server
//! port's queue concurrently.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable and usable from many threads at
    /// once (each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error from [`Sender::send`]: all receivers are gone; the message
    /// comes back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`]: the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from the deadline/timeout receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one blocked receiver.
        ///
        /// # Errors
        /// [`SendError`] if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] if the channel is empty and all senders are
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives or `deadline` passes.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] on expiry,
        /// [`RecvTimeoutError::Disconnected`] if all senders are gone.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        /// As for [`recv_deadline`](Self::recv_deadline).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Takes an already-queued message without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(20));
            tx.send(7u32).unwrap();
            assert_eq!(t.join().unwrap(), Ok(7));
        }

        #[test]
        fn deadline_expires() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_deadline(t0 + Duration::from_millis(30)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(30));
        }

        #[test]
        fn dropping_senders_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn dropping_receivers_fails_send() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_each_message_delivered_once() {
            let (tx, rx) = unbounded::<u32>();
            let n = 1000u32;
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|t| t.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn disconnected_wakes_blocked_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let t = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }
    }
}
