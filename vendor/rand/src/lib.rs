//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Implements exactly what this workspace calls: `RngCore`,
//! `SeedableRng::{seed_from_u64, from_entropy}`, `Rng::{gen,
//! gen_range}`, `rngs::StdRng`, `thread_rng` and
//! `seq::SliceRandom::shuffle`. The generator is **xoshiro256++**
//! seeded through SplitMix64 — statistically strong and fast, which is
//! all the simulation and the sparse-capability check fields need.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of every random number generator.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    u64 => next_u64, i64 => next_u64, usize => next_u64,
                    isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift rejection sampling.
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, bound)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed (SplitMix64
    /// expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from environmental entropy (time, thread
    /// identity and a global counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// One 64-bit word of OS-backed entropy. `RandomState` keys are drawn
/// by the standard library from the operating system's secure source
/// (and differ per instance), so hashing through a fresh instance
/// yields an unguessable word — unlike timestamps, which an adversary
/// who knows the process start time can enumerate. The counter and
/// time are mixed in only to separate calls, not as the secret.
fn entropy_word(salt: u64) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(salt);
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    h.write_u128(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0),
    );
    h.finish()
}

fn entropy_seed() -> u64 {
    entropy_word(0x5EED)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: **xoshiro256++**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }

        fn from_entropy() -> StdRng {
            // All 256 bits of state come from independent OS-seeded
            // entropy words: ports and per-object secrets drawn from
            // this generator must be unguessable, which a single
            // time-derived 64-bit seed would not provide.
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                *lane = super::entropy_word(0xE817_0B00 + i as u64) | 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    /// A freshly entropy-seeded generator per handle (stand-in for
    /// rand's thread-local generator).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> ThreadRng {
            ThreadRng {
                inner: StdRng::from_entropy(),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

/// An entropy-seeded generator handle.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// `rand::prelude` look-alike.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn dyn_rngcore_usable() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        assert_ne!(dyn_rng.next_u64(), 0);
    }

    #[test]
    fn entropy_seeds_differ() {
        let mut a = rngs::StdRng::from_entropy();
        let mut b = rngs::StdRng::from_entropy();
        // Not a strict guarantee, but collisions would mean the counter
        // mixing is broken.
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }
}
