//! Offline stand-in for the `bytes` crate.
//!
//! Provides the slice of the `bytes` API this workspace uses: a cheaply
//! cloneable, sliceable immutable byte buffer ([`Bytes`]) and a growable
//! builder ([`BytesMut`]). Cloning and slicing never copy the payload —
//! they share one allocation behind an `Arc`, which is the property the
//! simulated network relies on when fanning a packet out to many
//! machines.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The underlying bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        let full = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        };
        &full[self.start..self.end]
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        let b = m.freeze();
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"xy");
        let b = Bytes::copy_from_slice(b"xy");
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"xy\"");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn bad_slice_panics() {
        Bytes::from_static(b"abc").slice(2..9);
    }
}
