//! Offline stand-in for the `bytes` crate.
//!
//! Provides the slice of the `bytes` API this workspace uses: a cheaply
//! cloneable, sliceable immutable byte buffer ([`Bytes`]) and a growable
//! builder ([`BytesMut`]). Cloning, slicing and [`Bytes::split_to`]
//! never copy the payload — they share one allocation behind an `Arc`,
//! which is the property the simulated network relies on when fanning a
//! packet out to many machines and the RPC codec relies on for
//! zero-copy frame decode.
//!
//! Because this shim is the single place the workspace allocates payload
//! buffers, it doubles as the hot-path allocation probe: every fresh
//! backing-store allocation (and every growth reallocation) bumps a
//! process-wide counter readable via [`stats::buffer_allocs`], and the
//! buffer-pool recycling entry points ([`Bytes::try_reclaim`],
//! [`BytesMut::from_recycled`]) bump [`stats::buffer_reuses`] instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Process-wide counters of payload-buffer allocations and reuses.
///
/// `buffer_allocs` counts fresh heap allocations (and growth
/// reallocations) of **backing storage** performed by this crate;
/// `buffer_reuses` counts buffers resurrected through the recycling
/// entry points without touching the allocator. Deliberately out of
/// scope: the small `Arc` control block `freeze()` creates per frame
/// (and `try_reclaim` frees) — the metric is payload-buffer traffic,
/// the O(len) allocations whose count scales with body size and frame
/// rate, not total allocator call volume. Benchmarks diff these
/// around a workload; per-instance accounting (immune to concurrent
/// tests) lives in `amoeba_net::BufPool`.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BUFFER_REUSES: AtomicU64 = AtomicU64::new(0);

    /// Cumulative fresh backing-store allocations since process start.
    pub fn buffer_allocs() -> u64 {
        BUFFER_ALLOCS.load(Ordering::Relaxed)
    }

    /// Cumulative recycled-buffer reuses since process start.
    pub fn buffer_reuses() -> u64 {
        BUFFER_REUSES.load(Ordering::Relaxed)
    }

    pub(crate) fn note_alloc() {
        BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reuse() {
        BUFFER_REUSES.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if !data.is_empty() {
            stats::note_alloc();
        }
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Both halves share the original storage — O(1), no copy.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            repr: self.repr.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// The underlying bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        let full = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        };
        &full[self.start..self.end]
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Whether this buffer is backed by `'static` borrowed data (so
    /// its storage can never be reclaimed for reuse). Lets buffer
    /// pools drop such handles immediately instead of parking them in
    /// a retry queue forever.
    pub fn is_static(&self) -> bool {
        matches!(self.repr, Repr::Static(_))
    }

    /// Whether two handles alias the **same backing allocation**
    /// (regardless of their ranges). Buffer pools use this to park at
    /// most one handle per allocation: two parked siblings would hold
    /// each other's refcount above one forever, making both
    /// unreclaimable.
    pub fn shares_storage(&self, other: &Bytes) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Shared(a), Repr::Shared(b)) => Arc::ptr_eq(a, b),
            (Repr::Static(a), Repr::Static(b)) => std::ptr::eq(a.as_ptr(), b.as_ptr()),
            _ => false,
        }
    }

    /// Reclaims the backing storage for reuse if this handle is the
    /// **only** owner (no clones or slices alive anywhere): returns the
    /// whole backing `Vec` (capacity intact, contents unspecified) on
    /// success, or gives the handle back unchanged when the storage is
    /// still shared or static. This is the buffer-pool recycling hook —
    /// a pool parks sent frames here and resurrects their allocations
    /// once every receiver has dropped its zero-copy slices.
    ///
    /// # Errors
    /// Returns `Err(self)` when the storage is shared or static.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        match self.repr {
            Repr::Static(_) => Err(self),
            Repr::Shared(arc) => Arc::try_unwrap(arc).map_err(|arc| Bytes {
                repr: Repr::Shared(arc),
                start: self.start,
                end: self.end,
            }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        if capacity > 0 {
            stats::note_alloc();
        }
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Wraps storage reclaimed from [`Bytes::try_reclaim`]: the vector
    /// is cleared but keeps its capacity, and no allocation (or alloc
    /// count) happens. The buffer-pool fast path.
    pub fn from_recycled(mut storage: Vec<u8>) -> BytesMut {
        storage.clear();
        stats::note_reuse();
        BytesMut { buf: storage }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        // A growth reallocation is a fresh backing-store allocation as
        // far as the hot-path probe is concerned.
        if self.buf.len() + data.len() > self.buf.capacity() {
            stats::note_alloc();
        }
        self.buf.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Empties the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        let b = m.freeze();
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"xy");
        let b = Bytes::copy_from_slice(b"xy");
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"xy\"");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn bad_slice_panics() {
        Bytes::from_static(b"abc").slice(2..9);
    }

    /// Pins the zero-copy contract with pointer equality: `clone`,
    /// `slice` and `split_to` must all alias the original backing
    /// storage, never copy it. If this test fails, every "O(1) decode"
    /// claim in the RPC codec is silently void.
    #[test]
    fn clone_slice_and_split_share_backing_storage() {
        let original = Bytes::from(vec![10, 11, 12, 13, 14, 15]);
        let base = &original[0];

        let cloned = original.clone();
        assert!(std::ptr::eq(base, &cloned[0]), "clone copied the payload");

        let sliced = original.slice(2..5);
        assert!(
            std::ptr::eq(&original[2], &sliced[0]),
            "slice copied the payload"
        );

        let mut tail = original.clone();
        let head = tail.split_to(3);
        assert!(std::ptr::eq(base, &head[0]), "split_to copied the head");
        assert!(
            std::ptr::eq(&original[3], &tail[0]),
            "split_to copied the tail"
        );
        assert_eq!(&head[..], &[10, 11, 12]);
        assert_eq!(&tail[..], &[13, 14, 15]);

        // Nested re-slicing still aliases the one allocation.
        let nested = sliced.slice(1..);
        assert!(std::ptr::eq(&original[3], &nested[0]));
    }

    #[test]
    fn split_to_consumes_and_respects_bounds() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        let head = b.split_to(0);
        assert!(head.is_empty());
        let head = b.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        Bytes::from_static(b"ab").split_to(3);
    }

    #[test]
    fn shares_storage_is_allocation_identity_not_content_equality() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let same_alloc_clone = a.clone();
        let same_alloc_slice = a.slice(1..3);
        let equal_content = Bytes::from(vec![1, 2, 3, 4]);
        assert!(a.shares_storage(&same_alloc_clone));
        assert!(a.shares_storage(&same_alloc_slice));
        assert!(!a.shares_storage(&equal_content));
        let s = Bytes::from_static(b"st");
        assert!(s.shares_storage(&s.clone()));
        assert!(!s.shares_storage(&a));
    }

    #[test]
    fn try_reclaim_only_succeeds_for_unique_owners() {
        let b = Bytes::from(vec![7u8; 32]);
        let clone = b.clone();
        // Shared: both handles alive, reclamation must fail and hand
        // the Bytes back intact.
        let b = b.try_reclaim().expect_err("shared storage reclaimed");
        assert_eq!(&b[..], &[7u8; 32]);
        drop(clone);
        // Unique again: the backing Vec comes back, capacity intact.
        let v = b.try_reclaim().expect("unique storage must reclaim");
        assert!(v.capacity() >= 32);
        // Static storage is never reclaimable.
        assert!(Bytes::from_static(b"s").try_reclaim().is_err());
    }

    #[test]
    fn recycled_bytesmut_reuses_without_reallocating() {
        let v = Bytes::from(vec![1u8; 64]).try_reclaim().unwrap();
        // Counters are process-global; concurrent tests may bump them,
        // so assert monotone growth of reuses, not exact values.
        let reuses_before = stats::buffer_reuses();
        let mut m = BytesMut::from_recycled(v);
        assert!(m.is_empty());
        let cap = m.capacity();
        assert!(cap >= 64);
        m.extend_from_slice(&[9u8; 32]); // fits: no growth
        assert_eq!(m.capacity(), cap, "in-capacity append must not grow");
        assert!(stats::buffer_reuses() > reuses_before);
        assert_eq!(&m.freeze()[..], &[9u8; 32]);
    }
}
