//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with range / tuple / `Just` / `prop_map` /
//! `prop_oneof!` / `collection::vec` combinators, `any::<T>()` for the
//! integer primitives, and the `proptest!` / `prop_assert*!` /
//! `prop_assume!` macros. Each test case draws from a **deterministic
//! per-case RNG** (seeded from the case index), so failures reproduce
//! across runs. There is no shrinking: a failing case reports its case
//! number and message and panics as-is.

#![forbid(unsafe_code)]

/// Test-case configuration and failure plumbing.
pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    /// A deterministic RNG for case number `case` (reproducible runs).
    pub fn rng_for_case(case: u64) -> TestRng {
        TestRng::seed_from_u64(
            case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x5052_4F50_5445_5354),
        )
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A boxed sampling function (used by `prop_oneof!`).
    pub type BoxedSample<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Boxes any strategy into a uniform closure form.
    pub fn boxed_sample<S: Strategy + 'static>(s: S) -> BoxedSample<S::Value> {
        Box::new(move |rng| s.sample(rng))
    }

    /// Uniformly picks one of several strategies per draw.
    pub struct Union<T> {
        options: Vec<BoxedSample<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedSample<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            (self.options[i])(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, bool, f64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    /// A strategy generating unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            SizeRange {
                min: lo,
                max: hi + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test] fn` over many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases as u64 {
                let mut __prop_rng = $crate::test_runner::rng_for_case(__case);
                $crate::__prop_bind!(__prop_rng; $($params)*);
                let __result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:ident in $strat:expr) => {
        let $p = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $p:ident in $strat:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
    ($rng:ident; $p:ident : $ty:ty) => {
        let $p: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $p:ident : $ty:ty, $($rest:tt)*) => {
        let $p: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

/// Uniformly picks one of the given strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_sample($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Asserts two values are different inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::test_runner::rng_for_case(0);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(0u32..=5), &mut rng);
            assert!(w <= 5);
            let open = Strategy::sample(&(u64::MAX - 1..), &mut rng);
            assert!(open >= u64::MAX - 1);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::rng_for_case(1);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::test_runner::rng_for_case(2);
        let s = prop_oneof![(0u8..10).prop_map(|v| v as u32), Just(99u32),];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v < 10 || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just, "union never picked the second branch");
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case(c);
                Strategy::sample(&(0u64..1000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case(c);
                Strategy::sample(&(0u64..1000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, y: u8, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(x != 55);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x, "x={} v.len()={} y={}", x, v.len(), y);
        }
    }
}
